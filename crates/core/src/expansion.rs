//! The expansion of a CAR schema (§3.1 of the paper).
//!
//! The expansion `S̄` of a schema `S` consists of
//!
//! * the **consistent compound classes** `C̄ ⊆ C` — complete class-membership
//!   types whose induced truth assignment realizes the isa formula of every
//!   member class;
//! * the **consistent compound attributes** `⟨C̄₁, C̄₂⟩_A` — pairs of compound
//!   classes compatible with every attribute-type constraint on `A` and
//!   `inv A` carried by their member classes;
//! * the **consistent compound relations** `⟨U₁:C̄₁, …, U_K:C̄_K⟩_R` — role
//!   tuples of compound classes satisfying every role-clause of `R`;
//! * the merged cardinality-constraint sets `Natt` and `Nrel`, obtained by
//!   taking the *largest* lower bound and *smallest* upper bound over the
//!   member classes of each compound class (`umax`/`vmin`, `xmax`/`ymin`).
//!
//! Compound extensions are pairwise disjoint in every interpretation, which
//! is what later allows one unknown per compound object in the disequation
//! system (§3.2).
//!
//! Two size optimizations relative to a literal reading of Definition 3.1
//! are applied (and justified in `DESIGN.md`): the empty compound class is
//! omitted, and compound attributes/relations none of whose endpoints carry
//! any constraint on the attribute/relation are omitted — their unknowns
//! would occur in no disequation.

use crate::bitset::BitSet;
use crate::budget::{Budget, Item, ResourceExhausted};
use crate::ids::{AttrId, RelId};
use crate::par::{self, Budget as SizeBudget};
use crate::syntax::{AttRef, Card, Schema};
use std::collections::HashMap;
use std::fmt;
use std::num::NonZeroUsize;

/// Index of a compound class within an [`Expansion`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CcId(pub(crate) u32);

impl CcId {
    /// Dense index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A consistent compound attribute `⟨C̄₁, C̄₂⟩_A`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompoundAttr {
    /// The attribute `A`.
    pub attr: AttrId,
    /// The compound class of the pair's first components.
    pub source: CcId,
    /// The compound classes the pair's second components may belong to.
    ///
    /// A singleton when the target carries a *nontrivial* inverse bound
    /// for `A` (those targets need per-target count resolution). Targets
    /// with no inverse count constraint are interchangeable from the
    /// source's perspective — the disequations only see the sum — so all
    /// of them share one link variable, which collapses the quadratic
    /// per-pair blow-up on schemas with typed but otherwise
    /// inverse-unconstrained attributes.
    pub targets: Vec<CcId>,
}

impl CompoundAttr {
    /// `true` iff this link variable resolves a single target type.
    #[must_use]
    pub fn is_singleton(&self) -> bool {
        self.targets.len() == 1
    }
}

/// A consistent compound relation `⟨U₁:C̄₁, …, U_K:C̄_K⟩_R`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompoundRel {
    /// The relation `R`.
    pub rel: RelId,
    /// One compound class per role, in role-declaration order.
    pub components: Vec<CcId>,
}

/// One merged attribute-cardinality constraint `C̄ ⇒ att : (umax, vmin)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NattEntry {
    /// The constrained compound class.
    pub cc: CcId,
    /// The attribute or inverse attribute.
    pub att: AttRef,
    /// The merged bound.
    pub card: Card,
}

/// One merged participation constraint `C̄ ⇒ R[U_k] : (xmax, ymin)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NrelEntry {
    /// The constrained compound class.
    pub cc: CcId,
    /// The relation.
    pub rel: RelId,
    /// Position of the constrained role in the relation's declaration.
    pub role_pos: usize,
    /// The merged bound.
    pub card: Card,
}

/// Size limits guarding expansion construction (the expansion is worst-case
/// exponential; callers choose how much to allow).
#[derive(Debug, Clone, Copy)]
pub struct ExpansionLimits {
    /// Maximum number of compound classes accepted as input.
    pub max_compound_classes: usize,
    /// Maximum number of compound attributes built.
    pub max_compound_attrs: usize,
    /// Maximum number of compound relations built.
    pub max_compound_rels: usize,
}

impl Default for ExpansionLimits {
    fn default() -> ExpansionLimits {
        ExpansionLimits {
            max_compound_classes: 1 << 20,
            max_compound_attrs: 1 << 22,
            max_compound_rels: 1 << 22,
        }
    }
}

/// The expansion exceeded a size limit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpansionTooLarge {
    /// Which component overflowed.
    pub what: &'static str,
    /// The limit that was hit.
    pub limit: usize,
}

impl fmt::Display for ExpansionTooLarge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expansion too large: more than {} {}", self.limit, self.what)
    }
}

impl std::error::Error for ExpansionTooLarge {}

/// Why a governed build stopped early: a size limit was exceeded, or the
/// caller's [`Budget`] ran out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A [`ExpansionLimits`] size limit was exceeded.
    TooLarge(ExpansionTooLarge),
    /// The caller's resource budget was exhausted.
    Exhausted(ResourceExhausted),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::TooLarge(e) => e.fmt(f),
            BuildError::Exhausted(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<ExpansionTooLarge> for BuildError {
    fn from(e: ExpansionTooLarge) -> BuildError {
        BuildError::TooLarge(e)
    }
}

impl From<ResourceExhausted> for BuildError {
    fn from(e: ResourceExhausted) -> BuildError {
        BuildError::Exhausted(e)
    }
}

/// Unwraps a [`BuildError`] produced under an unbounded budget, which can
/// only ever be a size-limit overflow.
pub(crate) fn expect_too_large(e: BuildError) -> ExpansionTooLarge {
    match e {
        BuildError::TooLarge(e) => e,
        BuildError::Exhausted(_) => unreachable!("unbounded budget cannot exhaust"),
    }
}

/// `true` iff the compound class is consistent w.r.t. the schema: every
/// member class's isa formula is realized by the induced assignment.
#[must_use]
pub fn cc_consistent(schema: &Schema, cc: &BitSet) -> bool {
    cc.iter().all(|c| {
        schema
            .class_def(crate::ids::ClassId::from_index(c))
            .isa
            .realized_by(cc)
    })
}

/// Merged cardinality bound for `att` over the member classes of `cc`:
/// `Some((umax, vmin))` if at least one member constrains `att`.
#[must_use]
pub fn merged_att_card(schema: &Schema, cc: &BitSet, att: AttRef) -> Option<Card> {
    let mut merged: Option<Card> = None;
    for c in cc.iter() {
        if let Some(spec) = schema.attr_spec(crate::ids::ClassId::from_index(c), att) {
            merged = Some(match merged {
                None => spec.card,
                Some(m) => m.merge(&spec.card),
            });
        }
    }
    merged
}

/// Merged participation bound for `rel[role_pos]` over the member classes
/// of `cc`.
#[must_use]
pub fn merged_part_card(
    schema: &Schema,
    cc: &BitSet,
    rel: RelId,
    role_pos: usize,
) -> Option<Card> {
    let role = schema.rel_def(rel).roles[role_pos];
    let mut merged: Option<Card> = None;
    for c in cc.iter() {
        for part in &schema.class_def(crate::ids::ClassId::from_index(c)).participations {
            if part.rel == rel && part.role == role {
                merged = Some(match merged {
                    None => part.card,
                    Some(m) => m.merge(&part.card),
                });
            }
        }
    }
    merged
}

/// `true` iff `⟨cc1, cc2⟩_A` is a consistent compound attribute: `cc2`
/// realizes the filler type of every `A`-specification of `cc1`'s members,
/// and `cc1` realizes the filler type of every `inv A`-specification of
/// `cc2`'s members. (Both compound classes are assumed consistent.)
#[must_use]
pub fn compound_attr_consistent(
    schema: &Schema,
    attr: AttrId,
    cc1: &BitSet,
    cc2: &BitSet,
) -> bool {
    for c in cc1.iter() {
        if let Some(spec) =
            schema.attr_spec(crate::ids::ClassId::from_index(c), AttRef::Direct(attr))
        {
            if !spec.ty.realized_by(cc2) {
                return false;
            }
        }
    }
    for c in cc2.iter() {
        if let Some(spec) =
            schema.attr_spec(crate::ids::ClassId::from_index(c), AttRef::Inverse(attr))
        {
            if !spec.ty.realized_by(cc1) {
                return false;
            }
        }
    }
    true
}

/// `true` iff the role assignment satisfies every role-clause of the
/// relation: each clause has at least one literal `(U_ki : F_i)` whose
/// component realizes `F_i`.
#[must_use]
pub fn compound_rel_consistent(schema: &Schema, rel: RelId, components: &[&BitSet]) -> bool {
    let def = schema.rel_def(rel);
    debug_assert_eq!(components.len(), def.arity());
    def.constraints.iter().all(|clause| {
        clause.literals.iter().any(|lit| {
            def.role_position(lit.role)
                .is_some_and(|pos| lit.formula.realized_by(components[pos]))
        })
    })
}

/// The expansion `S̄` of a schema (Definition 3.1), built from a given set
/// of consistent compound classes (produced by one of the enumeration
/// strategies in [`crate::enumerate`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Expansion {
    compound_classes: Vec<BitSet>,
    compound_attrs: Vec<CompoundAttr>,
    compound_rels: Vec<CompoundRel>,
    natt: Vec<NattEntry>,
    nrel: Vec<NrelEntry>,
    /// For each attribute: compound-attr indices grouped by source cc.
    attr_by_source: HashMap<(AttrId, CcId), Vec<usize>>,
    /// For each attribute: compound-attr indices grouped by target cc.
    attr_by_target: HashMap<(AttrId, CcId), Vec<usize>>,
    /// Compound-rel indices grouped by (relation, role position, cc).
    rel_by_role: HashMap<(RelId, usize, CcId), Vec<usize>>,
}

impl Expansion {
    /// Builds the expansion from consistent compound classes.
    ///
    /// # Errors
    /// Returns [`ExpansionTooLarge`] if a size limit is exceeded.
    ///
    /// # Panics
    /// In debug builds, panics if some input compound class is
    /// inconsistent or empty.
    pub fn build(
        schema: &Schema,
        compound_classes: Vec<BitSet>,
        limits: &ExpansionLimits,
    ) -> Result<Expansion, ExpansionTooLarge> {
        Expansion::build_serial(schema, compound_classes, limits, &Budget::unbounded())
            .map_err(expect_too_large)
    }

    /// Builds the expansion under a resource [`Budget`]: the construction
    /// polls the budget once per candidate examined (serial path; the
    /// parallel path checkpoints more coarsely, per work unit) and charges
    /// every materialized compound object against the memory quota.
    ///
    /// # Errors
    /// [`BuildError::TooLarge`] exactly as [`Expansion::build`], or
    /// [`BuildError::Exhausted`] as soon as the budget runs out.
    pub fn build_governed(
        schema: &Schema,
        compound_classes: Vec<BitSet>,
        limits: &ExpansionLimits,
        threads: NonZeroUsize,
        budget: &Budget,
    ) -> Result<Expansion, BuildError> {
        if threads.get() == 1 {
            Expansion::build_serial(schema, compound_classes, limits, budget)
        } else {
            Expansion::build_par(schema, compound_classes, limits, threads, budget)
        }
    }

    fn build_serial(
        schema: &Schema,
        compound_classes: Vec<BitSet>,
        limits: &ExpansionLimits,
        budget: &Budget,
    ) -> Result<Expansion, BuildError> {
        if compound_classes.len() > limits.max_compound_classes {
            return Err(ExpansionTooLarge {
                what: "compound classes",
                limit: limits.max_compound_classes,
            }
            .into());
        }
        debug_assert!(compound_classes.iter().all(|cc| !cc.is_empty()));
        debug_assert!(compound_classes.iter().all(|cc| cc_consistent(schema, cc)));

        // Prefilter: a compound class whose merged bound has
        // `umax > vmin` (e.g. one member demands an attribute the other
        // forbids) is empty in every interpretation by Lemma 3.2 (B)/(C);
        // dropping it here keeps its — often numerous — compound
        // attributes and relations out of the disequation system.
        let mut kept: Vec<BitSet> = Vec::with_capacity(compound_classes.len());
        for cc in compound_classes {
            budget.checkpoint()?;
            let attrs_ok = schema.symbols().attr_ids().all(|a| {
                merged_att_card(schema, &cc, AttRef::Direct(a)).is_none_or(|c| c.is_valid())
                    && merged_att_card(schema, &cc, AttRef::Inverse(a))
                        .is_none_or(|c| c.is_valid())
            });
            let parts_ok = schema.relations().all(|(rel, def)| {
                (0..def.arity())
                    .all(|pos| merged_part_card(schema, &cc, rel, pos).is_none_or(|c| c.is_valid()))
            });
            if attrs_ok && parts_ok {
                kept.push(cc);
            }
        }
        let compound_classes = kept;

        let ccs = &compound_classes;
        let cc_ids: Vec<CcId> = (0..ccs.len()).map(|i| CcId(i as u32)).collect();

        // ---- Natt and per-attribute relevance -------------------------
        // Only *nontrivial* merged bounds (positive minimum or finite
        // maximum) generate disequations; trivial `(0, ∞)` specifications
        // still type their fillers, but that is a constraint on which
        // link types may be nonempty, not on counts — enforced lazily
        // (see `implication::implies_filler_type`) instead of
        // materializing the — often quadratic — set of unconstrained
        // compound attributes.
        let nontrivial = |card: &Card| card.min > 0 || card.max.is_some();
        let mut natt = Vec::new();
        // relevant_src[attr] = ccs with a nontrivial Direct(attr) bound.
        let mut relevant_src: HashMap<AttrId, Vec<CcId>> = HashMap::new();
        let mut relevant_tgt: HashMap<AttrId, Vec<CcId>> = HashMap::new();
        for attr_id in schema.symbols().attr_ids() {
            for (&cc_id, cc) in cc_ids.iter().zip(ccs) {
                budget.checkpoint()?;
                if let Some(card) = merged_att_card(schema, cc, AttRef::Direct(attr_id))
                    .filter(&nontrivial)
                {
                    relevant_src.entry(attr_id).or_default().push(cc_id);
                    natt.push(NattEntry { cc: cc_id, att: AttRef::Direct(attr_id), card });
                }
                if let Some(card) = merged_att_card(schema, cc, AttRef::Inverse(attr_id))
                    .filter(&nontrivial)
                {
                    relevant_tgt.entry(attr_id).or_default().push(cc_id);
                    natt.push(NattEntry { cc: cc_id, att: AttRef::Inverse(attr_id), card });
                }
            }
        }

        // ---- Compound attributes --------------------------------------
        let mut compound_attrs: Vec<CompoundAttr> = Vec::new();
        let mut attr_by_source: HashMap<(AttrId, CcId), Vec<usize>> = HashMap::new();
        // Indexes only singleton links (per-target resolution): inverse
        // sums and inverse-side queries never involve grouped targets,
        // which by construction carry no inverse bound.
        let mut attr_by_target: HashMap<(AttrId, CcId), Vec<usize>> = HashMap::new();
        for attr_id in schema.symbols().attr_ids() {
            let srcs = relevant_src.get(&attr_id).cloned().unwrap_or_default();
            let tgts = relevant_tgt.get(&attr_id).cloned().unwrap_or_default();
            let mut push = |source: CcId,
                            targets: Vec<CcId>,
                            index_target: bool,
                            compound_attrs: &mut Vec<CompoundAttr>|
             -> Result<(), BuildError> {
                if targets.is_empty() {
                    return Ok(());
                }
                if compound_attrs.len() >= limits.max_compound_attrs {
                    return Err(ExpansionTooLarge {
                        what: "compound attributes",
                        limit: limits.max_compound_attrs,
                    }
                    .into());
                }
                budget.charge(Item::CompoundAttr, 1)?;
                let idx = compound_attrs.len();
                if index_target {
                    debug_assert_eq!(targets.len(), 1);
                    attr_by_target.entry((attr_id, targets[0])).or_default().push(idx);
                }
                attr_by_source.entry((attr_id, source)).or_default().push(idx);
                compound_attrs.push(CompoundAttr { attr: attr_id, source, targets });
                Ok(())
            };
            let consistent = |source: CcId, target: CcId| {
                compound_attr_consistent(
                    schema,
                    attr_id,
                    &ccs[source.index()],
                    &ccs[target.index()],
                )
            };
            // Links with a count-constrained source: per-target variables
            // for inverse-constrained targets, one shared variable for all
            // interchangeable (inverse-unconstrained) targets.
            for &source in &srcs {
                let mut group: Vec<CcId> = Vec::new();
                for &target in &cc_ids {
                    budget.checkpoint()?;
                    if !consistent(source, target) {
                        continue;
                    }
                    if tgts.contains(&target) {
                        push(source, vec![target], true, &mut compound_attrs)?;
                    } else {
                        group.push(target);
                    }
                }
                push(source, group, false, &mut compound_attrs)?;
            }
            // ...plus per-target links with a count-constrained target and
            // count-unconstrained source (the constrained-source links are
            // already in).
            for &target in &tgts {
                for &source in &cc_ids {
                    budget.checkpoint()?;
                    if srcs.contains(&source) || !consistent(source, target) {
                        continue;
                    }
                    push(source, vec![target], true, &mut compound_attrs)?;
                }
            }
        }

        // ---- Nrel and compound relations -------------------------------
        let mut nrel = Vec::new();
        let mut constrained_rels: Vec<RelId> = Vec::new();
        for (rel, def) in schema.relations() {
            let mut any = false;
            for role_pos in 0..def.arity() {
                for (&cc_id, cc) in cc_ids.iter().zip(ccs) {
                    budget.checkpoint()?;
                    if let Some(card) =
                        merged_part_card(schema, cc, rel, role_pos).filter(&nontrivial)
                    {
                        nrel.push(NrelEntry { cc: cc_id, rel, role_pos, card });
                        any = true;
                    }
                }
            }
            if any {
                constrained_rels.push(rel);
            }
        }

        let mut compound_rels = Vec::new();
        let mut rel_by_role: HashMap<(RelId, usize, CcId), Vec<usize>> = HashMap::new();
        for &rel in &constrained_rels {
            let def = schema.rel_def(rel);
            let arity = def.arity();
            // Per-role candidate filtering through unit role-clauses.
            let mut candidates: Vec<Vec<CcId>> = Vec::with_capacity(arity);
            for role_pos in 0..arity {
                let role = def.roles[role_pos];
                let unit_formulas: Vec<_> = def
                    .constraints
                    .iter()
                    .filter(|c| c.is_unit() && c.literals[0].role == role)
                    .map(|c| &c.literals[0].formula)
                    .collect();
                let cands: Vec<CcId> = cc_ids
                    .iter()
                    .copied()
                    .filter(|&id| {
                        unit_formulas.iter().all(|f| f.realized_by(&ccs[id.index()]))
                    })
                    .collect();
                candidates.push(cands);
            }
            let non_unit: Vec<_> =
                def.constraints.iter().filter(|c| !c.is_unit()).collect();

            // Depth-first product over the per-role candidates.
            let mut stack: Vec<CcId> = Vec::with_capacity(arity);
            build_rel_tuples(
                schema,
                rel,
                &candidates,
                &non_unit,
                ccs,
                &mut stack,
                &mut compound_rels,
                &mut rel_by_role,
                limits,
                budget,
            )?;
        }

        Ok(Expansion {
            compound_classes,
            compound_attrs,
            compound_rels,
            natt,
            nrel,
            attr_by_source,
            attr_by_target,
            rel_by_role,
        })
    }

    /// Builds the expansion using up to `threads` scoped workers.
    ///
    /// The independent units — per-compound-class prefilter checks,
    /// per-`(attribute, endpoint)` link construction, per-first-component
    /// relation-tuple blocks — run in parallel; their outputs are merged
    /// in the serial traversal order, and the size limits are enforced
    /// through a shared [`Budget`] whose exhaustion verdict depends only
    /// on totals. The result (including the [`ExpansionTooLarge`] error
    /// cases) is therefore identical to [`Expansion::build`] for every
    /// thread count; `threads = 1` runs the serial code directly.
    ///
    /// # Errors
    /// Exactly as [`Expansion::build`].
    pub fn build_with_threads(
        schema: &Schema,
        compound_classes: Vec<BitSet>,
        limits: &ExpansionLimits,
        threads: NonZeroUsize,
    ) -> Result<Expansion, ExpansionTooLarge> {
        Expansion::build_governed(schema, compound_classes, limits, threads, &Budget::unbounded())
            .map_err(expect_too_large)
    }

    fn build_par(
        schema: &Schema,
        compound_classes: Vec<BitSet>,
        limits: &ExpansionLimits,
        threads: NonZeroUsize,
        budget: &Budget,
    ) -> Result<Expansion, BuildError> {
        if compound_classes.len() > limits.max_compound_classes {
            return Err(ExpansionTooLarge {
                what: "compound classes",
                limit: limits.max_compound_classes,
            }
            .into());
        }
        debug_assert!(compound_classes.iter().all(|cc| !cc.is_empty()));
        debug_assert!(compound_classes.iter().all(|cc| cc_consistent(schema, cc)));

        // Prefilter (see `build`): per-candidate predicate, chunked.
        let keep = |cc: &BitSet| {
            let attrs_ok = schema.symbols().attr_ids().all(|a| {
                merged_att_card(schema, cc, AttRef::Direct(a)).is_none_or(|c| c.is_valid())
                    && merged_att_card(schema, cc, AttRef::Inverse(a))
                        .is_none_or(|c| c.is_valid())
            });
            let parts_ok = schema.relations().all(|(rel, def)| {
                (0..def.arity())
                    .all(|pos| merged_part_card(schema, cc, rel, pos).is_none_or(|c| c.is_valid()))
            });
            attrs_ok && parts_ok
        };
        let chunks = par::chunk_ranges(compound_classes.len(), threads.get() * 4);
        let kept_parts: Vec<Result<Vec<BitSet>, ResourceExhausted>> =
            par::parallel_map(threads, chunks.len(), |ci| {
                let mut kept = Vec::new();
                for cc in &compound_classes[chunks[ci].clone()] {
                    budget.checkpoint()?;
                    if keep(cc) {
                        kept.push(cc.clone());
                    }
                }
                Ok(kept)
            });
        let mut compound_classes: Vec<BitSet> = Vec::new();
        for part in kept_parts {
            compound_classes.extend(part?);
        }

        let ccs = &compound_classes;
        let cc_ids: Vec<CcId> = (0..ccs.len()).map(|i| CcId(i as u32)).collect();
        let nontrivial = |card: &Card| card.min > 0 || card.max.is_some();

        // ---- Natt and per-attribute relevance (parallel per attribute,
        // merged in attribute order = serial order) --------------------
        let attr_ids: Vec<AttrId> = schema.symbols().attr_ids().collect();
        type NattPart = (Vec<NattEntry>, Vec<CcId>, Vec<CcId>);
        let natt_parts: Vec<Result<NattPart, ResourceExhausted>> =
            par::parallel_map(threads, attr_ids.len(), |ai| {
                let attr_id = attr_ids[ai];
                let mut part = Vec::new();
                let mut srcs: Vec<CcId> = Vec::new();
                let mut tgts: Vec<CcId> = Vec::new();
                for (&cc_id, cc) in cc_ids.iter().zip(ccs) {
                    budget.checkpoint()?;
                    if let Some(card) =
                        merged_att_card(schema, cc, AttRef::Direct(attr_id)).filter(&nontrivial)
                    {
                        srcs.push(cc_id);
                        part.push(NattEntry { cc: cc_id, att: AttRef::Direct(attr_id), card });
                    }
                    if let Some(card) =
                        merged_att_card(schema, cc, AttRef::Inverse(attr_id)).filter(&nontrivial)
                    {
                        tgts.push(cc_id);
                        part.push(NattEntry { cc: cc_id, att: AttRef::Inverse(attr_id), card });
                    }
                }
                Ok((part, srcs, tgts))
            });
        let mut natt = Vec::new();
        let mut relevant_src: HashMap<AttrId, Vec<CcId>> = HashMap::new();
        let mut relevant_tgt: HashMap<AttrId, Vec<CcId>> = HashMap::new();
        for (ai, part) in natt_parts.into_iter().enumerate() {
            let (part, srcs, tgts) = part?;
            natt.extend(part);
            if !srcs.is_empty() {
                relevant_src.insert(attr_ids[ai], srcs);
            }
            if !tgts.is_empty() {
                relevant_tgt.insert(attr_ids[ai], tgts);
            }
        }

        // ---- Compound attributes (parallel per endpoint, merged in the
        // serial task order with a shared budget) ----------------------
        #[derive(Clone, Copy)]
        enum AttrTask {
            /// One count-constrained source: its singleton + grouped links.
            Src(AttrId, CcId),
            /// One count-constrained target: its unconstrained-source links.
            Tgt(AttrId, CcId),
        }
        let empty_ccs: Vec<CcId> = Vec::new();
        let mut tasks: Vec<AttrTask> = Vec::new();
        for &attr_id in &attr_ids {
            for &s in relevant_src.get(&attr_id).unwrap_or(&empty_ccs) {
                tasks.push(AttrTask::Src(attr_id, s));
            }
            for &t in relevant_tgt.get(&attr_id).unwrap_or(&empty_ccs) {
                tasks.push(AttrTask::Tgt(attr_id, t));
            }
        }
        let attr_budget = SizeBudget::new(limits.max_compound_attrs);
        let attrs_too_large = || ExpansionTooLarge {
            what: "compound attributes",
            limit: limits.max_compound_attrs,
        };
        type AttrLinks = Vec<(CcId, Vec<CcId>, bool)>; // (source, targets, index_target)
        let attr_parts: Vec<Result<AttrLinks, BuildError>> =
            par::parallel_map(threads, tasks.len(), |ti| {
                let consistent = |source: CcId, target: CcId| {
                    compound_attr_consistent(
                        schema,
                        match tasks[ti] {
                            AttrTask::Src(a, _) | AttrTask::Tgt(a, _) => a,
                        },
                        &ccs[source.index()],
                        &ccs[target.index()],
                    )
                };
                let mut links: AttrLinks = Vec::new();
                match tasks[ti] {
                    AttrTask::Src(attr_id, source) => {
                        let tgts = relevant_tgt.get(&attr_id).unwrap_or(&empty_ccs);
                        let mut group: Vec<CcId> = Vec::new();
                        for &target in &cc_ids {
                            budget.checkpoint()?;
                            if !consistent(source, target) {
                                continue;
                            }
                            if tgts.contains(&target) {
                                if !attr_budget.take() {
                                    return Err(attrs_too_large().into());
                                }
                                budget.charge(Item::CompoundAttr, 1)?;
                                links.push((source, vec![target], true));
                            } else {
                                group.push(target);
                            }
                        }
                        if !group.is_empty() {
                            if !attr_budget.take() {
                                return Err(attrs_too_large().into());
                            }
                            budget.charge(Item::CompoundAttr, 1)?;
                            links.push((source, group, false));
                        }
                    }
                    AttrTask::Tgt(attr_id, target) => {
                        let srcs = relevant_src.get(&attr_id).unwrap_or(&empty_ccs);
                        for &source in &cc_ids {
                            budget.checkpoint()?;
                            if srcs.contains(&source) || !consistent(source, target) {
                                continue;
                            }
                            if !attr_budget.take() {
                                return Err(attrs_too_large().into());
                            }
                            budget.charge(Item::CompoundAttr, 1)?;
                            links.push((source, vec![target], true));
                        }
                    }
                }
                Ok(links)
            });
        let mut compound_attrs: Vec<CompoundAttr> = Vec::new();
        let mut attr_by_source: HashMap<(AttrId, CcId), Vec<usize>> = HashMap::new();
        let mut attr_by_target: HashMap<(AttrId, CcId), Vec<usize>> = HashMap::new();
        for (task, part) in tasks.iter().zip(attr_parts) {
            let attr_id = match *task {
                AttrTask::Src(a, _) | AttrTask::Tgt(a, _) => a,
            };
            for (source, targets, index_target) in part? {
                if compound_attrs.len() >= limits.max_compound_attrs {
                    return Err(attrs_too_large().into());
                }
                let idx = compound_attrs.len();
                if index_target {
                    debug_assert_eq!(targets.len(), 1);
                    attr_by_target.entry((attr_id, targets[0])).or_default().push(idx);
                }
                attr_by_source.entry((attr_id, source)).or_default().push(idx);
                compound_attrs.push(CompoundAttr { attr: attr_id, source, targets });
            }
        }

        // ---- Nrel (parallel per relation, merged in relation order) ---
        let rels: Vec<RelId> = schema.relations().map(|(rel, _)| rel).collect();
        let nrel_parts: Vec<Result<Vec<NrelEntry>, ResourceExhausted>> =
            par::parallel_map(threads, rels.len(), |ri| {
                let rel = rels[ri];
                let def = schema.rel_def(rel);
                let mut part = Vec::new();
                for role_pos in 0..def.arity() {
                    for (&cc_id, cc) in cc_ids.iter().zip(ccs) {
                        budget.checkpoint()?;
                        if let Some(card) =
                            merged_part_card(schema, cc, rel, role_pos).filter(&nontrivial)
                        {
                            part.push(NrelEntry { cc: cc_id, rel, role_pos, card });
                        }
                    }
                }
                Ok(part)
            });
        let mut nrel = Vec::new();
        let mut constrained_rels: Vec<RelId> = Vec::new();
        for (ri, part) in nrel_parts.into_iter().enumerate() {
            let part = part?;
            if !part.is_empty() {
                constrained_rels.push(rels[ri]);
            }
            nrel.extend(part);
        }

        // ---- Compound relations (parallel per first-component block) --
        let rel_budget = SizeBudget::new(limits.max_compound_rels);
        let mut compound_rels: Vec<CompoundRel> = Vec::new();
        let mut rel_by_role: HashMap<(RelId, usize, CcId), Vec<usize>> = HashMap::new();
        for &rel in &constrained_rels {
            let def = schema.rel_def(rel);
            let arity = def.arity();
            let mut candidates: Vec<Vec<CcId>> = Vec::with_capacity(arity);
            for role_pos in 0..arity {
                let role = def.roles[role_pos];
                let unit_formulas: Vec<_> = def
                    .constraints
                    .iter()
                    .filter(|c| c.is_unit() && c.literals[0].role == role)
                    .map(|c| &c.literals[0].formula)
                    .collect();
                let cands: Vec<CcId> = cc_ids
                    .iter()
                    .copied()
                    .filter(|&id| {
                        unit_formulas.iter().all(|f| f.realized_by(&ccs[id.index()]))
                    })
                    .collect();
                candidates.push(cands);
            }
            let non_unit: Vec<_> =
                def.constraints.iter().filter(|c| !c.is_unit()).collect();

            let first = &candidates[0];
            let blocks = par::chunk_ranges(first.len(), threads.get() * 4);
            let tuple_parts: Vec<Result<Vec<Vec<CcId>>, BuildError>> =
                par::parallel_map(threads, blocks.len(), |bi| {
                    let mut tuples: Vec<Vec<CcId>> = Vec::new();
                    for &c0 in &first[blocks[bi].clone()] {
                        let mut stack = vec![c0];
                        collect_rel_tuples(
                            schema,
                            rel,
                            &candidates,
                            &non_unit,
                            ccs,
                            &mut stack,
                            &mut tuples,
                            &rel_budget,
                            limits.max_compound_rels,
                            budget,
                        )?;
                    }
                    Ok(tuples)
                });
            for part in tuple_parts {
                for components in part? {
                    if compound_rels.len() >= limits.max_compound_rels {
                        return Err(ExpansionTooLarge {
                            what: "compound relations",
                            limit: limits.max_compound_rels,
                        }
                        .into());
                    }
                    let idx = compound_rels.len();
                    for (role_pos, &cc) in components.iter().enumerate() {
                        rel_by_role.entry((rel, role_pos, cc)).or_default().push(idx);
                    }
                    compound_rels.push(CompoundRel { rel, components });
                }
            }
        }

        Ok(Expansion {
            compound_classes,
            compound_attrs,
            compound_rels,
            natt,
            nrel,
            attr_by_source,
            attr_by_target,
            rel_by_role,
        })
    }

    /// The consistent compound classes, in input order.
    #[must_use]
    pub fn compound_classes(&self) -> &[BitSet] {
        &self.compound_classes
    }

    /// The compound class with a given id.
    #[must_use]
    pub fn compound_class(&self, id: CcId) -> &BitSet {
        &self.compound_classes[id.index()]
    }

    /// Ids of all compound classes.
    pub fn cc_ids(&self) -> impl Iterator<Item = CcId> {
        (0..self.compound_classes.len() as u32).map(CcId)
    }

    /// Ids of the compound classes containing a given class.
    pub fn ccs_containing(
        &self,
        class: crate::ids::ClassId,
    ) -> impl Iterator<Item = CcId> + '_ {
        self.cc_ids()
            .filter(move |id| self.compound_classes[id.index()].contains(class.index()))
    }

    /// The consistent, constrained compound attributes.
    #[must_use]
    pub fn compound_attrs(&self) -> &[CompoundAttr] {
        &self.compound_attrs
    }

    /// The consistent, constrained compound relations.
    #[must_use]
    pub fn compound_rels(&self) -> &[CompoundRel] {
        &self.compound_rels
    }

    /// The merged attribute-cardinality constraints `Natt`.
    #[must_use]
    pub fn natt(&self) -> &[NattEntry] {
        &self.natt
    }

    /// The merged participation constraints `Nrel`.
    #[must_use]
    pub fn nrel(&self) -> &[NrelEntry] {
        &self.nrel
    }

    /// Indices (into [`Self::compound_attrs`]) of the compound attributes
    /// of `attr` whose source is `cc`.
    #[must_use]
    pub fn attrs_with_source(&self, attr: AttrId, cc: CcId) -> &[usize] {
        self.attr_by_source.get(&(attr, cc)).map_or(&[], Vec::as_slice)
    }

    /// Indices of the compound attributes of `attr` whose target is `cc`.
    #[must_use]
    pub fn attrs_with_target(&self, attr: AttrId, cc: CcId) -> &[usize] {
        self.attr_by_target.get(&(attr, cc)).map_or(&[], Vec::as_slice)
    }

    /// Indices (into [`Self::compound_rels`]) of the compound relations of
    /// `rel` whose `role_pos` component is `cc`.
    #[must_use]
    pub fn rels_with_component(&self, rel: RelId, role_pos: usize, cc: CcId) -> &[usize] {
        self.rel_by_role.get(&(rel, role_pos, cc)).map_or(&[], Vec::as_slice)
    }

    /// Total number of unknowns the disequation system will have.
    #[must_use]
    pub fn num_unknowns(&self) -> usize {
        self.compound_classes.len() + self.compound_attrs.len() + self.compound_rels.len()
    }
}

#[allow(clippy::too_many_arguments)]
fn build_rel_tuples(
    schema: &Schema,
    rel: RelId,
    candidates: &[Vec<CcId>],
    non_unit: &[&crate::syntax::RoleClause],
    ccs: &[BitSet],
    stack: &mut Vec<CcId>,
    out: &mut Vec<CompoundRel>,
    rel_by_role: &mut HashMap<(RelId, usize, CcId), Vec<usize>>,
    limits: &ExpansionLimits,
    budget: &Budget,
) -> Result<(), BuildError> {
    if stack.len() == candidates.len() {
        budget.checkpoint()?;
        let components: Vec<&BitSet> = stack.iter().map(|id| &ccs[id.index()]).collect();
        // Unit clauses are pre-filtered; check the disjunctive ones.
        let def = schema.rel_def(rel);
        let ok = non_unit.iter().all(|clause| {
            clause.literals.iter().any(|lit| {
                def.role_position(lit.role)
                    .is_some_and(|pos| lit.formula.realized_by(components[pos]))
            })
        });
        if ok {
            if out.len() >= limits.max_compound_rels {
                return Err(ExpansionTooLarge {
                    what: "compound relations",
                    limit: limits.max_compound_rels,
                }
                .into());
            }
            budget.charge(Item::CompoundRel, 1)?;
            let idx = out.len();
            out.push(CompoundRel { rel, components: stack.clone() });
            for (role_pos, &cc) in stack.iter().enumerate() {
                rel_by_role.entry((rel, role_pos, cc)).or_default().push(idx);
            }
        }
        return Ok(());
    }
    let depth = stack.len();
    for &cand in &candidates[depth] {
        stack.push(cand);
        build_rel_tuples(
            schema, rel, candidates, non_unit, ccs, stack, out, rel_by_role, limits, budget,
        )?;
        stack.pop();
    }
    Ok(())
}

/// Worker-side variant of [`build_rel_tuples`]: collects accepted tuples
/// (in depth-first order) instead of assigning indices, and draws from a
/// shared [`SizeBudget`] so the limit verdict matches the serial path.
#[allow(clippy::too_many_arguments)]
fn collect_rel_tuples(
    schema: &Schema,
    rel: RelId,
    candidates: &[Vec<CcId>],
    non_unit: &[&crate::syntax::RoleClause],
    ccs: &[BitSet],
    stack: &mut Vec<CcId>,
    out: &mut Vec<Vec<CcId>>,
    size_budget: &SizeBudget,
    limit: usize,
    budget: &Budget,
) -> Result<(), BuildError> {
    if stack.len() == candidates.len() {
        budget.checkpoint()?;
        let components: Vec<&BitSet> = stack.iter().map(|id| &ccs[id.index()]).collect();
        let def = schema.rel_def(rel);
        let ok = non_unit.iter().all(|clause| {
            clause.literals.iter().any(|lit| {
                def.role_position(lit.role)
                    .is_some_and(|pos| lit.formula.realized_by(components[pos]))
            })
        });
        if ok {
            if !size_budget.take() {
                return Err(ExpansionTooLarge { what: "compound relations", limit }.into());
            }
            budget.charge(Item::CompoundRel, 1)?;
            out.push(stack.clone());
        }
        return Ok(());
    }
    let depth = stack.len();
    for &cand in &candidates[depth] {
        stack.push(cand);
        collect_rel_tuples(
            schema, rel, candidates, non_unit, ccs, stack, out, size_budget, limit, budget,
        )?;
        stack.pop();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate;
    use crate::syntax::{ClassFormula, RoleClause, RoleLiteral, SchemaBuilder};

    fn university() -> Schema {
        let mut b = SchemaBuilder::new();
        let person = b.class("Person");
        let professor = b.class("Professor");
        let student = b.class("Student");
        let course = b.class("Course");
        let taught_by = b.attribute("taught_by");
        let enrollment = b.relation("Enrollment", ["enrolled_in", "enrolls"]);
        let enrolled_in = b.role("enrolled_in");
        let enrolls = b.role("enrolls");
        b.define_class(professor).isa(ClassFormula::class(person)).finish();
        b.define_class(student)
            .isa(ClassFormula::class(person).and(ClassFormula::neg_class(professor)))
            .participates(enrollment, enrolls, Card::new(1, 6))
            .finish();
        b.define_class(course)
            .isa(ClassFormula::neg_class(person))
            .attr(
                AttRef::Direct(taught_by),
                Card::exactly(1),
                ClassFormula::class(professor),
            )
            .participates(enrollment, enrolled_in, Card::new(5, 100))
            .finish();
        b.relation_constraint(
            enrollment,
            RoleClause::new(vec![RoleLiteral {
                role: enrolled_in,
                formula: ClassFormula::class(course),
            }]),
        );
        b.relation_constraint(
            enrollment,
            RoleClause::new(vec![RoleLiteral {
                role: enrolls,
                formula: ClassFormula::class(student),
            }]),
        );
        b.build().unwrap()
    }

    fn all_consistent(schema: &Schema) -> Vec<BitSet> {
        enumerate::naive(schema, usize::MAX).unwrap()
    }

    #[test]
    fn cc_consistency_follows_isa() {
        let s = university();
        let n = s.num_classes();
        let person = s.class_id("Person").unwrap().index();
        let professor = s.class_id("Professor").unwrap().index();
        let student = s.class_id("Student").unwrap().index();
        let course = s.class_id("Course").unwrap().index();
        assert!(cc_consistent(&s, &BitSet::from_iter(n, [person])));
        assert!(cc_consistent(&s, &BitSet::from_iter(n, [person, professor])));
        // Professor without Person: inconsistent.
        assert!(!cc_consistent(&s, &BitSet::from_iter(n, [professor])));
        // Student and Professor together: inconsistent (¬Professor).
        assert!(!cc_consistent(
            &s,
            &BitSet::from_iter(n, [person, professor, student])
        ));
        // Course with Person: inconsistent (Course isa ¬Person).
        assert!(!cc_consistent(&s, &BitSet::from_iter(n, [person, course])));
        assert!(cc_consistent(&s, &BitSet::from_iter(n, [course])));
        // The empty compound class is vacuously consistent.
        assert!(cc_consistent(&s, &BitSet::new(n)));
    }

    #[test]
    fn merged_cards_take_umax_vmin() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let c = b.class("B");
        let f = b.attribute("f");
        b.define_class(a)
            .attr(AttRef::Direct(f), Card::new(1, 10), ClassFormula::top())
            .finish();
        b.define_class(c)
            .attr(AttRef::Direct(f), Card::new(3, 5), ClassFormula::top())
            .finish();
        let s = b.build().unwrap();
        let both = BitSet::from_iter(2, [0, 1]);
        assert_eq!(
            merged_att_card(&s, &both, AttRef::Direct(s.attr_id("f").unwrap())),
            Some(Card::new(3, 5))
        );
        let only_a = BitSet::from_iter(2, [0]);
        assert_eq!(
            merged_att_card(&s, &only_a, AttRef::Direct(s.attr_id("f").unwrap())),
            Some(Card::new(1, 10))
        );
        assert_eq!(
            merged_att_card(&s, &only_a, AttRef::Inverse(s.attr_id("f").unwrap())),
            None
        );
    }

    #[test]
    fn compound_attr_consistency_checks_types_both_ways() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let t = b.class("T");
        let f = b.attribute("f");
        b.define_class(a)
            .attr(AttRef::Direct(f), Card::any(), ClassFormula::class(t))
            .finish();
        b.define_class(t)
            .attr(AttRef::Inverse(f), Card::any(), ClassFormula::class(a))
            .finish();
        let s = b.build().unwrap();
        let f = s.attr_id("f").unwrap();
        let ca = BitSet::from_iter(2, [0]);
        let ct = BitSet::from_iter(2, [1]);
        assert!(compound_attr_consistent(&s, f, &ca, &ct));
        // Target lacking T violates A's filler type.
        assert!(!compound_attr_consistent(&s, f, &ca, &ca));
        // Source lacking A violates T's inverse filler type.
        assert!(!compound_attr_consistent(&s, f, &ct, &ct));
        // No specs on either side: consistent.
        let empty = BitSet::new(2);
        assert!(compound_attr_consistent(&s, f, &empty, &empty));
    }

    #[test]
    fn university_expansion_shape() {
        let s = university();
        let ccs = all_consistent(&s);
        // Consistent nonempty compound classes: {P}, {P,Prof}, {P,S}, {C}.
        assert_eq!(ccs.len(), 4);
        let exp = Expansion::build(&s, ccs, &ExpansionLimits::default()).unwrap();

        // taught_by is constrained only on {Course}; its filler type is
        // Professor, so the only consistent link variable is
        // ({Course} → {Person, Professor}). No compound class carries an
        // inverse taught_by bound, so the target is grouped.
        assert_eq!(exp.compound_attrs().len(), 1);
        let ca = &exp.compound_attrs()[0];
        let src = exp.compound_class(ca.source);
        assert!(src.contains(s.class_id("Course").unwrap().index()));
        assert_eq!(ca.targets.len(), 1);
        let tgt = exp.compound_class(ca.targets[0]);
        assert!(tgt.contains(s.class_id("Professor").unwrap().index()));

        // Enrollment: enrolled_in must realize Course, enrolls must realize
        // Student: exactly one compound relation.
        assert_eq!(exp.compound_rels().len(), 1);
        let cr = &exp.compound_rels()[0];
        assert!(exp
            .compound_class(cr.components[0])
            .contains(s.class_id("Course").unwrap().index()));
        assert!(exp
            .compound_class(cr.components[1])
            .contains(s.class_id("Student").unwrap().index()));

        // Natt: one entry ({Course}, taught_by); Nrel: two entries.
        assert_eq!(exp.natt().len(), 1);
        assert_eq!(exp.natt()[0].card, Card::exactly(1));
        assert_eq!(exp.nrel().len(), 2);

        // Index lookups agree: grouped (inverse-unconstrained) targets
        // are reachable through the source index only.
        assert_eq!(exp.attrs_with_source(ca.attr, ca.source), &[0]);
        assert!(exp.attrs_with_target(ca.attr, ca.targets[0]).is_empty());
        let rel = s.rel_id("Enrollment").unwrap();
        assert_eq!(exp.rels_with_component(rel, 0, cr.components[0]), &[0]);
        assert_eq!(exp.rels_with_component(rel, 1, cr.components[1]), &[0]);
        assert!(exp.rels_with_component(rel, 0, cr.components[1]).is_empty());
        assert_eq!(exp.num_unknowns(), 4 + 1 + 1);
    }

    #[test]
    fn ccs_containing_filters_by_membership() {
        let s = university();
        let exp =
            Expansion::build(&s, all_consistent(&s), &ExpansionLimits::default()).unwrap();
        let person = s.class_id("Person").unwrap();
        let with_person: Vec<CcId> = exp.ccs_containing(person).collect();
        assert_eq!(with_person.len(), 3); // {P}, {P,Prof}, {P,S}
        let course = s.class_id("Course").unwrap();
        assert_eq!(exp.ccs_containing(course).count(), 1);
    }

    #[test]
    fn limits_are_enforced() {
        let s = university();
        let ccs = all_consistent(&s);
        let limits = ExpansionLimits { max_compound_classes: 2, ..Default::default() };
        let err = Expansion::build(&s, ccs, &limits).unwrap_err();
        assert_eq!(err.what, "compound classes");
        assert!(err.to_string().contains("compound classes"));
    }

    #[test]
    fn unconstrained_relation_is_skipped() {
        // A relation with role clauses but no participation constraints
        // generates no compound relations (nothing constrains its size).
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let r = b.relation("R", ["u", "v"]);
        let u = b.role("u");
        b.relation_constraint(
            r,
            RoleClause::new(vec![RoleLiteral { role: u, formula: ClassFormula::class(a) }]),
        );
        let s = b.build().unwrap();
        let ccs = all_consistent(&s);
        let exp = Expansion::build(&s, ccs, &ExpansionLimits::default()).unwrap();
        assert!(exp.compound_rels().is_empty());
        assert!(exp.nrel().is_empty());
    }

    #[test]
    fn disjunctive_role_clause_filters_tuples() {
        // Two classes A, B; R(u, v) with constraint (u:A) ∨ (v:B).
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let bb = b.class("B");
        let r = b.relation("R", ["u", "v"]);
        let u = b.role("u");
        let v = b.role("v");
        b.relation_constraint(
            r,
            RoleClause::new(vec![
                RoleLiteral { role: u, formula: ClassFormula::class(a) },
                RoleLiteral { role: v, formula: ClassFormula::class(bb) },
            ]),
        );
        b.define_class(a).participates(r, u, Card::at_least(1)).finish();
        let s = b.build().unwrap();
        let ccs = all_consistent(&s);
        // Compound classes: {A}, {B}, {A,B} — 3 of them.
        assert_eq!(ccs.len(), 3);
        let exp = Expansion::build(&s, ccs, &ExpansionLimits::default()).unwrap();
        // Tuples (cu, cv) where A ∈ cu or B ∈ cv: 3*3 = 9 minus the pairs
        // with A ∉ cu and B ∉ cv ({B}-only sources × {A}-only targets = 1).
        assert_eq!(exp.compound_rels().len(), 8);
        for cr in exp.compound_rels() {
            let cu = exp.compound_class(cr.components[0]);
            let cv = exp.compound_class(cr.components[1]);
            assert!(cu.contains(0) || cv.contains(1));
        }
    }

    /// A schema exercising every expansion stage: inverse attribute
    /// bounds (so both singleton and grouped links appear), a binary
    /// relation with a disjunctive role clause, and several free classes
    /// to fan out the compound-class count.
    fn parallel_stress_schema() -> Schema {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let bb = b.class("B");
        let t = b.class("T");
        for name in ["F1", "F2", "F3"] {
            b.class(name);
        }
        let f = b.attribute("f");
        let r = b.relation("R", ["u", "v"]);
        let u = b.role("u");
        let v = b.role("v");
        b.define_class(a)
            .attr(AttRef::Direct(f), Card::new(1, 3), ClassFormula::top())
            .participates(r, u, Card::at_least(1))
            .finish();
        b.define_class(t)
            .attr(AttRef::Inverse(f), Card::new(0, 2), ClassFormula::top())
            .finish();
        b.relation_constraint(
            r,
            RoleClause::new(vec![
                RoleLiteral { role: u, formula: ClassFormula::class(a) },
                RoleLiteral { role: v, formula: ClassFormula::class(bb) },
            ]),
        );
        b.build().unwrap()
    }

    #[test]
    fn parallel_build_matches_serial_exactly() {
        for schema in [university(), parallel_stress_schema()] {
            let ccs = all_consistent(&schema);
            let serial =
                Expansion::build(&schema, ccs.clone(), &ExpansionLimits::default()).unwrap();
            for threads in 1..=5 {
                let par = Expansion::build_with_threads(
                    &schema,
                    ccs.clone(),
                    &ExpansionLimits::default(),
                    NonZeroUsize::new(threads).unwrap(),
                )
                .unwrap();
                assert_eq!(par, serial, "threads={threads}");
            }
        }
    }

    #[test]
    fn parallel_build_limit_errors_match_serial() {
        let schema = parallel_stress_schema();
        let ccs = all_consistent(&schema);
        let serial_rels = Expansion::build(&schema, ccs.clone(), &ExpansionLimits::default())
            .unwrap()
            .compound_rels()
            .len();
        assert!(serial_rels > 1);
        let tight = ExpansionLimits { max_compound_rels: serial_rels - 1, ..Default::default() };
        let serial_err = Expansion::build(&schema, ccs.clone(), &tight).unwrap_err();
        let exact = ExpansionLimits { max_compound_rels: serial_rels, ..Default::default() };
        for threads in 2..=4 {
            let threads = NonZeroUsize::new(threads).unwrap();
            let err = Expansion::build_with_threads(&schema, ccs.clone(), &tight, threads)
                .unwrap_err();
            assert_eq!(err.what, serial_err.what);
            assert_eq!(err.limit, serial_err.limit);
            // Exactly at the limit: still succeeds, on both paths.
            let ok = Expansion::build_with_threads(&schema, ccs.clone(), &exact, threads)
                .unwrap();
            assert_eq!(ok.compound_rels().len(), serial_rels);
        }
    }
}
