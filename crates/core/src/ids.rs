//! Interned identifiers for the four symbol alphabets of a CAR schema.
//!
//! The paper (§2.2) fixes an alphabet `B` partitioned into class symbols
//! `C`, attribute symbols `A`, relation symbols `R` and role symbols `U`.
//! Each alphabet is interned into a dense id space so that the rest of the
//! reasoner can use array indexing and bitsets instead of string maps.

use std::collections::HashMap;
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Dense index of the symbol (0-based).
            #[must_use]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a dense index. Intended for iteration
            /// helpers; ids are normally obtained from a
            /// [`SymbolTable`] or `SchemaBuilder`.
            #[must_use]
            pub fn from_index(index: usize) -> $name {
                $name(u32::try_from(index).expect("symbol index overflow"))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// A class symbol (element of the alphabet `C`).
    ClassId,
    "C"
);
define_id!(
    /// An attribute symbol (element of the alphabet `A`).
    AttrId,
    "A"
);
define_id!(
    /// A relation symbol (element of the alphabet `R`).
    RelId,
    "R"
);
define_id!(
    /// A role symbol (element of the alphabet `U`).
    RoleId,
    "U"
);

/// One interned alphabet: name ↔ dense id.
#[derive(Debug, Clone, Default)]
struct Interner {
    names: Vec<String>,
    by_name: HashMap<String, u32>,
}

impl Interner {
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = u32::try_from(self.names.len()).expect("too many symbols");
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    fn lookup(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    fn name(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    fn len(&self) -> usize {
        self.names.len()
    }
}

/// The interned alphabets of one schema.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    classes: Interner,
    attrs: Interner,
    rels: Interner,
    roles: Interner,
}

impl SymbolTable {
    /// An empty symbol table.
    #[must_use]
    pub fn new() -> SymbolTable {
        SymbolTable::default()
    }

    /// Interns a class symbol (idempotent).
    pub fn class(&mut self, name: &str) -> ClassId {
        ClassId(self.classes.intern(name))
    }

    /// Interns an attribute symbol (idempotent).
    pub fn attribute(&mut self, name: &str) -> AttrId {
        AttrId(self.attrs.intern(name))
    }

    /// Interns a relation symbol (idempotent).
    pub fn relation(&mut self, name: &str) -> RelId {
        RelId(self.rels.intern(name))
    }

    /// Interns a role symbol (idempotent).
    pub fn role(&mut self, name: &str) -> RoleId {
        RoleId(self.roles.intern(name))
    }

    /// Looks up a class symbol by name.
    #[must_use]
    pub fn class_id(&self, name: &str) -> Option<ClassId> {
        self.classes.lookup(name).map(ClassId)
    }

    /// Looks up an attribute symbol by name.
    #[must_use]
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        self.attrs.lookup(name).map(AttrId)
    }

    /// Looks up a relation symbol by name.
    #[must_use]
    pub fn rel_id(&self, name: &str) -> Option<RelId> {
        self.rels.lookup(name).map(RelId)
    }

    /// Looks up a role symbol by name.
    #[must_use]
    pub fn role_id(&self, name: &str) -> Option<RoleId> {
        self.roles.lookup(name).map(RoleId)
    }

    /// Name of a class symbol.
    #[must_use]
    pub fn class_name(&self, id: ClassId) -> &str {
        self.classes.name(id.0)
    }

    /// Name of an attribute symbol.
    #[must_use]
    pub fn attr_name(&self, id: AttrId) -> &str {
        self.attrs.name(id.0)
    }

    /// Name of a relation symbol.
    #[must_use]
    pub fn rel_name(&self, id: RelId) -> &str {
        self.rels.name(id.0)
    }

    /// Name of a role symbol.
    #[must_use]
    pub fn role_name(&self, id: RoleId) -> &str {
        self.roles.name(id.0)
    }

    /// Number of class symbols.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Number of attribute symbols.
    #[must_use]
    pub fn num_attrs(&self) -> usize {
        self.attrs.len()
    }

    /// Number of relation symbols.
    #[must_use]
    pub fn num_rels(&self) -> usize {
        self.rels.len()
    }

    /// Number of role symbols.
    #[must_use]
    pub fn num_roles(&self) -> usize {
        self.roles.len()
    }

    /// Iterates over all class ids.
    pub fn class_ids(&self) -> impl Iterator<Item = ClassId> {
        (0..self.classes.len() as u32).map(ClassId)
    }

    /// Iterates over all attribute ids.
    pub fn attr_ids(&self) -> impl Iterator<Item = AttrId> {
        (0..self.attrs.len() as u32).map(AttrId)
    }

    /// Iterates over all relation ids.
    pub fn rel_ids(&self) -> impl Iterator<Item = RelId> {
        (0..self.rels.len() as u32).map(RelId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.class("Person");
        let b = t.class("Course");
        let a2 = t.class("Person");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.num_classes(), 2);
        assert_eq!(t.class_name(a), "Person");
        assert_eq!(t.class_id("Course"), Some(b));
        assert_eq!(t.class_id("Nope"), None);
    }

    #[test]
    fn alphabets_are_independent() {
        let mut t = SymbolTable::new();
        let c = t.class("X");
        let a = t.attribute("X");
        let r = t.relation("X");
        let u = t.role("X");
        assert_eq!(c.index(), 0);
        assert_eq!(a.index(), 0);
        assert_eq!(r.index(), 0);
        assert_eq!(u.index(), 0);
        assert_eq!(t.attr_name(a), "X");
        assert_eq!(t.rel_name(r), "X");
        assert_eq!(t.role_name(u), "X");
        assert_eq!(t.num_attrs(), 1);
        assert_eq!(t.num_rels(), 1);
        assert_eq!(t.num_roles(), 1);
    }

    #[test]
    fn id_iteration_and_display() {
        let mut t = SymbolTable::new();
        t.class("A");
        t.class("B");
        let ids: Vec<ClassId> = t.class_ids().collect();
        assert_eq!(ids, vec![ClassId(0), ClassId(1)]);
        assert_eq!(ClassId(3).to_string(), "C3");
        assert_eq!(RoleId(1).to_string(), "U1");
        assert_eq!(ClassId::from_index(2).index(), 2);
    }
}
