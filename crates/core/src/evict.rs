//! One eviction policy for every bounded cache in the system.
//!
//! Both the in-memory [`crate::incremental::Workspace`] caches (bounded
//! by entry count via [`crate::incremental::WorkspaceLimits`]) and the
//! on-disk content-addressed store (bounded by total bytes via
//! [`crate::persist::StoreLimits`]) need the same discipline: track
//! recency, stay under a weight budget, and *never* evict an entry a
//! reader currently holds. Rather than two ad-hoc LRU implementations
//! with subtly different pinning rules, both levels drive this policy.
//!
//! [`LruPolicy`] is bookkeeping only — it decides *which* keys to drop;
//! the owner (a `HashMap` of values, a directory of entry files) does
//! the dropping. Eviction can therefore only ever cause a cache miss in
//! the owner, never a dangling reference: a pinned key is simply not
//! offered as a victim until every pin is released.
//!
//! Weights are caller-defined: the in-memory caches use weight 1 per
//! entry with the entry cap as the budget; the disk store uses the
//! entry's file size in bytes with the store's byte budget.

use std::collections::HashMap;

#[derive(Debug)]
struct Meta {
    weight: u64,
    /// Last-use stamp from the policy's monotonic tick.
    tick: u64,
    /// Active pin count; a pinned key is never selected as a victim.
    pins: u32,
}

/// A weight-budgeted least-recently-used eviction policy with pinning.
///
/// All operations are O(n) worst case in the number of tracked entries
/// (victim selection scans); every cache using this policy is small
/// (hundreds to thousands of entries) and eviction runs off the hot
/// path, on inserts only.
#[derive(Debug)]
pub struct LruPolicy {
    budget: u64,
    tick: u64,
    total: u64,
    /// A frozen policy never offers victims: read-only owners (a
    /// follower's store) track recency but must not delete files a
    /// concurrent leader owns.
    frozen: bool,
    entries: HashMap<String, Meta>,
}

impl LruPolicy {
    /// A policy allowing at most `budget` total weight.
    #[must_use]
    pub fn new(budget: u64) -> LruPolicy {
        LruPolicy { budget, tick: 0, total: 0, frozen: false, entries: HashMap::new() }
    }

    /// Freezes or thaws the policy; see [`LruPolicy::evict`].
    pub fn set_frozen(&mut self, frozen: bool) {
        self.frozen = frozen;
    }

    /// `true` when [`LruPolicy::evict`] is disabled.
    #[must_use]
    pub fn frozen(&self) -> bool {
        self.frozen
    }

    /// The configured weight budget.
    #[must_use]
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Total weight currently tracked.
    #[must_use]
    pub fn total_weight(&self) -> u64 {
        self.total
    }

    /// Number of tracked entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entries are tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` when `key` is tracked.
    #[must_use]
    pub fn contains(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// Marks `key` as just used. Returns `false` for untracked keys.
    pub fn touch(&mut self, key: &str) -> bool {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(key) {
            Some(meta) => {
                meta.tick = tick;
                true
            }
            None => false,
        }
    }

    /// Tracks `key` with the given weight (replacing any previous
    /// weight) and marks it used. Does not evict — call
    /// [`LruPolicy::evict`] afterwards and drop the returned victims.
    pub fn insert(&mut self, key: &str, weight: u64) {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(key) {
            Some(meta) => {
                self.total = self.total - meta.weight + weight;
                meta.weight = weight;
                meta.tick = tick;
            }
            None => {
                self.total += weight;
                self.entries.insert(key.to_owned(), Meta { weight, tick, pins: 0 });
            }
        }
    }

    /// Stops tracking `key` (the owner dropped it). Returns `false` for
    /// untracked keys.
    pub fn remove(&mut self, key: &str) -> bool {
        match self.entries.remove(key) {
            Some(meta) => {
                self.total -= meta.weight;
                true
            }
            None => false,
        }
    }

    /// Pins `key`: until the matching [`LruPolicy::unpin`], the key is
    /// never offered as an eviction victim. Pins nest.
    pub fn pin(&mut self, key: &str) {
        if let Some(meta) = self.entries.get_mut(key) {
            meta.pins += 1;
        }
    }

    /// Releases one pin on `key`.
    pub fn unpin(&mut self, key: &str) {
        if let Some(meta) = self.entries.get_mut(key) {
            meta.pins = meta.pins.saturating_sub(1);
        }
    }

    /// Selects and removes victims — stalest unpinned first — until the
    /// tracked weight fits the budget, and returns their keys for the
    /// owner to drop. When everything over budget is pinned, fewer (or
    /// no) victims are returned: staying temporarily over budget is
    /// always preferred to evicting an entry in use. A frozen policy
    /// returns no victims at all, whatever the budget says.
    pub fn evict(&mut self) -> Vec<String> {
        let mut victims = Vec::new();
        if self.frozen {
            return victims;
        }
        while self.total > self.budget {
            let Some(key) = self
                .entries
                .iter()
                .filter(|(_, m)| m.pins == 0)
                .min_by_key(|(_, m)| m.tick)
                .map(|(k, _)| k.clone())
            else {
                break; // everything left is pinned
            };
            self.remove(&key);
            victims.push(key);
        }
        victims
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_stalest_first_until_under_budget() {
        let mut p = LruPolicy::new(3);
        p.insert("a", 1);
        p.insert("b", 1);
        p.insert("c", 1);
        assert!(p.evict().is_empty());
        p.touch("a"); // b is now stalest
        p.insert("d", 2);
        let victims = p.evict();
        assert_eq!(victims, vec!["b".to_owned(), "c".to_owned()]);
        assert!(p.contains("a") && p.contains("d"));
        assert_eq!(p.total_weight(), 3);
    }

    #[test]
    fn pinned_entries_are_never_victims() {
        let mut p = LruPolicy::new(2);
        p.insert("old", 1);
        p.pin("old");
        p.insert("x", 1);
        p.insert("y", 1);
        // "old" is stalest but pinned; "x" goes instead.
        assert_eq!(p.evict(), vec!["x".to_owned()]);
        assert!(p.contains("old"));
        // With everything pinned, the policy stays over budget rather
        // than evicting a live entry.
        p.pin("y");
        p.insert("z", 1);
        p.pin("z");
        assert!(p.evict().is_empty());
        assert_eq!(p.total_weight(), 3);
        // Unpinning makes the stalest eligible again.
        p.unpin("old");
        assert_eq!(p.evict(), vec!["old".to_owned()]);
    }

    #[test]
    fn reinsert_updates_weight_in_place() {
        let mut p = LruPolicy::new(10);
        p.insert("a", 4);
        p.insert("a", 7);
        assert_eq!(p.len(), 1);
        assert_eq!(p.total_weight(), 7);
        assert!(p.remove("a"));
        assert_eq!(p.total_weight(), 0);
    }

    #[test]
    fn frozen_policy_offers_no_victims() {
        let mut p = LruPolicy::new(1);
        p.insert("a", 1);
        p.insert("b", 1);
        p.set_frozen(true);
        assert!(p.frozen());
        assert!(p.evict().is_empty(), "over budget but frozen");
        assert_eq!(p.total_weight(), 2, "nothing was removed");
        p.set_frozen(false);
        assert_eq!(p.evict().len(), 1, "thawed policy evicts again");
    }

    #[test]
    fn pins_nest() {
        let mut p = LruPolicy::new(0);
        p.insert("a", 1);
        p.pin("a");
        p.pin("a");
        p.unpin("a");
        assert!(p.evict().is_empty(), "still pinned once");
        p.unpin("a");
        assert_eq!(p.evict(), vec!["a".to_owned()]);
    }
}
