//! A compact fixed-capacity bitset used to represent compound classes.
//!
//! A compound class (§3.1 of the paper) is a subset of the class alphabet;
//! realizing a class-formula under the induced truth assignment reduces to
//! membership tests, which are single word operations here.

use std::fmt;

/// A set of small integers backed by `u64` words.
///
/// The capacity is fixed at construction; all operations preserve the
/// invariant that bits at positions `>= capacity` are zero, so `Eq`,
/// `Ord` and `Hash` agree with set equality.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// The empty set with room for elements `0..capacity`.
    #[must_use]
    pub fn new(capacity: usize) -> BitSet {
        BitSet { words: vec![0; capacity.div_ceil(64)], capacity }
    }

    /// Builds a set from an iterator of elements.
    #[must_use]
    pub fn from_iter<I: IntoIterator<Item = usize>>(capacity: usize, items: I) -> BitSet {
        let mut s = BitSet::new(capacity);
        for i in items {
            s.insert(i);
        }
        s
    }

    /// The fixed capacity (exclusive upper bound on elements).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts an element.
    ///
    /// # Panics
    /// Panics if `item >= capacity`.
    pub fn insert(&mut self, item: usize) {
        assert!(item < self.capacity, "bitset element out of range");
        self.words[item / 64] |= 1 << (item % 64);
    }

    /// Removes an element (no-op if absent).
    pub fn remove(&mut self, item: usize) {
        if item < self.capacity {
            self.words[item / 64] &= !(1 << (item % 64));
        }
    }

    /// Membership test. Out-of-range items are never members.
    #[must_use]
    pub fn contains(&self, item: usize) -> bool {
        item < self.capacity && self.words[item / 64] & (1 << (item % 64)) != 0
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` iff the set has no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `true` iff `self ⊆ other` (capacities must match).
    #[must_use]
    pub fn is_subset(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.capacity, other.capacity);
        self.words.iter().zip(&other.words).all(|(a, b)| a & !b == 0)
    }

    /// `true` iff the sets share no element.
    #[must_use]
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.capacity, other.capacity);
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(100);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(99);
        assert_eq!(s.len(), 4);
        assert!(s.contains(63));
        assert!(s.contains(64));
        assert!(!s.contains(50));
        assert!(!s.contains(1000)); // out of range, not a member
        s.remove(63);
        assert!(!s.contains(63));
        assert_eq!(s.len(), 3);
        s.remove(63); // idempotent
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        BitSet::new(5).insert(5);
    }

    #[test]
    fn subset_and_disjoint() {
        let a = BitSet::from_iter(10, [1, 3, 5]);
        let b = BitSet::from_iter(10, [1, 3, 5, 7]);
        let c = BitSet::from_iter(10, [0, 2]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_subset(&a));
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
        assert!(BitSet::new(10).is_subset(&a));
        assert!(BitSet::new(10).is_disjoint(&a));
    }

    #[test]
    fn union_intersection() {
        let mut a = BitSet::from_iter(70, [1, 65]);
        let b = BitSet::from_iter(70, [2, 65]);
        a.union_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2, 65]);
        a.intersect_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![2, 65]);
    }

    #[test]
    fn iteration_order_is_increasing() {
        let s = BitSet::from_iter(130, [129, 0, 64, 63, 7]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 7, 63, 64, 129]);
    }

    #[test]
    fn equality_and_ordering_are_set_based() {
        let a = BitSet::from_iter(10, [1, 2]);
        let mut b = BitSet::from_iter(10, [1, 2, 3]);
        b.remove(3);
        assert_eq!(a, b);
        let mut set = std::collections::HashSet::new();
        set.insert(a.clone());
        assert!(set.contains(&b));
    }

    proptest! {
        #[test]
        fn prop_matches_btreeset(
            items in proptest::collection::vec(0usize..200, 0..50),
            removals in proptest::collection::vec(0usize..200, 0..20),
        ) {
            let mut bs = BitSet::new(200);
            let mut reference = BTreeSet::new();
            for &i in &items {
                bs.insert(i);
                reference.insert(i);
            }
            for &i in &removals {
                bs.remove(i);
                reference.remove(&i);
            }
            prop_assert_eq!(bs.len(), reference.len());
            prop_assert_eq!(bs.iter().collect::<Vec<_>>(),
                            reference.iter().copied().collect::<Vec<_>>());
            for i in 0..200 {
                prop_assert_eq!(bs.contains(i), reference.contains(&i));
            }
        }

        #[test]
        fn prop_subset_definition(
            a in proptest::collection::vec(0usize..64, 0..20),
            b in proptest::collection::vec(0usize..64, 0..20),
        ) {
            let sa = BitSet::from_iter(64, a.iter().copied());
            let sb = BitSet::from_iter(64, b.iter().copied());
            let ra: BTreeSet<usize> = a.into_iter().collect();
            let rb: BTreeSet<usize> = b.into_iter().collect();
            prop_assert_eq!(sa.is_subset(&sb), ra.is_subset(&rb));
            prop_assert_eq!(sa.is_disjoint(&sb), ra.is_disjoint(&rb));
        }
    }
}
