//! Finite-model semantics of CAR schemas (§2.3 of the paper) and a
//! model checker.
//!
//! An [`Interpretation`] is a finite nonempty universe together with
//! extensions for every class (a set of objects), attribute (a set of
//! pairs) and relation (a set of labeled tuples). [`Interpretation::check`]
//! verifies, definition by definition, whether the interpretation is a
//! model of a schema, reporting the first violation found. The checker is
//! written directly from the satisfaction conditions of §2.3 and is
//! independent of the reasoning machinery, so it serves as ground truth:
//! every model extracted by the reasoner is re-verified against it.

use crate::ids::{AttrId, ClassId, RelId};
use crate::syntax::{AttRef, Card, ClassFormula, Schema};
use std::collections::HashSet;
use std::fmt;

/// An object of the universe, identified by a dense index.
pub type ObjId = u32;

/// A finite interpretation (database state) for a schema.
///
/// Relation extensions store labeled tuples positionally: tuple component
/// `k` is the filler of the `k`-th role in the relation's declaration
/// order (see [`crate::syntax::RelDef::roles`]).
#[derive(Debug, Clone)]
pub struct Interpretation {
    universe: usize,
    class_ext: Vec<HashSet<ObjId>>,
    attr_ext: Vec<HashSet<(ObjId, ObjId)>>,
    rel_ext: Vec<Vec<Vec<ObjId>>>,
}

impl Interpretation {
    /// An interpretation with `universe` objects and all extensions empty,
    /// shaped for `schema`.
    #[must_use]
    pub fn new(schema: &Schema, universe: usize) -> Interpretation {
        Interpretation {
            universe,
            class_ext: vec![HashSet::new(); schema.num_classes()],
            attr_ext: vec![HashSet::new(); schema.num_attrs()],
            rel_ext: vec![Vec::new(); schema.num_rels()],
        }
    }

    /// Size of the universe.
    #[must_use]
    pub fn universe_size(&self) -> usize {
        self.universe
    }

    /// Adds an object to a class extension.
    ///
    /// # Panics
    /// Panics if the object is outside the universe.
    pub fn add_to_class(&mut self, class: ClassId, obj: ObjId) {
        assert!((obj as usize) < self.universe, "object outside universe");
        self.class_ext[class.index()].insert(obj);
    }

    /// Adds a pair to an attribute extension.
    pub fn add_attr_pair(&mut self, attr: AttrId, from: ObjId, to: ObjId) {
        assert!((from as usize) < self.universe && (to as usize) < self.universe);
        self.attr_ext[attr.index()].insert((from, to));
    }

    /// Adds a labeled tuple (components in role-declaration order) to a
    /// relation extension. Duplicates are detected by [`Self::check`].
    pub fn add_tuple(&mut self, rel: RelId, tuple: Vec<ObjId>) {
        assert!(tuple.iter().all(|&o| (o as usize) < self.universe));
        self.rel_ext[rel.index()].push(tuple);
    }

    /// `true` iff the object belongs to the class extension.
    #[must_use]
    pub fn in_class(&self, class: ClassId, obj: ObjId) -> bool {
        self.class_ext[class.index()].contains(&obj)
    }

    /// The extension of a class.
    #[must_use]
    pub fn class_extension(&self, class: ClassId) -> &HashSet<ObjId> {
        &self.class_ext[class.index()]
    }

    /// The extension of an attribute.
    #[must_use]
    pub fn attr_extension(&self, attr: AttrId) -> &HashSet<(ObjId, ObjId)> {
        &self.attr_ext[attr.index()]
    }

    /// The extension of a relation (tuples in role-declaration order).
    #[must_use]
    pub fn rel_extension(&self, rel: RelId) -> &[Vec<ObjId>] {
        &self.rel_ext[rel.index()]
    }

    /// `true` iff `obj` is an instance of the class-formula (the
    /// inductive extension of §2.3).
    #[must_use]
    pub fn satisfies_formula(&self, formula: &ClassFormula, obj: ObjId) -> bool {
        formula.clauses.iter().all(|clause| {
            clause
                .literals
                .iter()
                .any(|l| l.positive == self.in_class(l.class, obj))
        })
    }

    /// Number of `att`-fillers of `obj`: pairs `(obj, ·)` for a direct
    /// attribute, pairs `(·, obj)` for an inverse one.
    #[must_use]
    pub fn att_count(&self, att: AttRef, obj: ObjId) -> u64 {
        let ext = &self.attr_ext[att.attr().index()];
        match att {
            AttRef::Direct(_) => ext.iter().filter(|(f, _)| *f == obj).count() as u64,
            AttRef::Inverse(_) => ext.iter().filter(|(_, t)| *t == obj).count() as u64,
        }
    }

    /// Iterates over the `att`-fillers of `obj`.
    pub fn att_fillers<'a>(&'a self, att: AttRef, obj: ObjId) -> impl Iterator<Item = ObjId> + 'a {
        let ext = &self.attr_ext[att.attr().index()];
        ext.iter().filter_map(move |&(f, t)| match att {
            AttRef::Direct(_) if f == obj => Some(t),
            AttRef::Inverse(_) if t == obj => Some(f),
            _ => None,
        })
    }

    /// Checks every definition of the schema against this interpretation;
    /// `Ok(())` means the interpretation is a model (§2.3).
    ///
    /// The universe must be nonempty and relation extensions must be
    /// duplicate-free (they denote *sets* of labeled tuples).
    pub fn check(&self, schema: &Schema) -> Result<(), Violation> {
        if self.universe == 0 {
            return Err(Violation::EmptyUniverse);
        }

        // Relation extensions are sets of labeled tuples.
        for (rel, _) in schema.relations() {
            let ext = &self.rel_ext[rel.index()];
            let distinct: HashSet<&Vec<ObjId>> = ext.iter().collect();
            if distinct.len() != ext.len() {
                return Err(Violation::DuplicateTuple { rel });
            }
        }

        for (class, def) in schema.classes() {
            for &obj in &self.class_ext[class.index()] {
                // isa part: C^I ⊆ F^I.
                if !self.satisfies_formula(&def.isa, obj) {
                    return Err(Violation::IsaViolated { class, obj });
                }
                // attributes part: filler types and cardinalities.
                for spec in &def.attrs {
                    let mut count = 0;
                    for filler in self.att_fillers(spec.att, obj) {
                        count += 1;
                        if !self.satisfies_formula(&spec.ty, filler) {
                            return Err(Violation::AttrTypeViolated {
                                class,
                                obj,
                                att: spec.att,
                                filler,
                            });
                        }
                    }
                    if !spec.card.contains(count) {
                        return Err(Violation::AttrCardViolated {
                            class,
                            obj,
                            att: spec.att,
                            count,
                            card: spec.card,
                        });
                    }
                }
                // participates-in part.
                for part in &def.participations {
                    let rel_def = schema.rel_def(part.rel);
                    let Some(pos) = rel_def.role_position(part.role) else {
                        continue; // builder validation rejects this
                    };
                    let count = self.rel_ext[part.rel.index()]
                        .iter()
                        .filter(|t| t[pos] == obj)
                        .count() as u64;
                    if !part.card.contains(count) {
                        return Err(Violation::ParticipationViolated {
                            class,
                            obj,
                            rel: part.rel,
                            count,
                            card: part.card,
                        });
                    }
                }
            }
        }

        // Relation constraints: every tuple satisfies every role-clause.
        for (rel, def) in schema.relations() {
            for (tuple_index, tuple) in self.rel_ext[rel.index()].iter().enumerate() {
                if tuple.len() != def.arity() {
                    return Err(Violation::ArityMismatch { rel, tuple_index });
                }
                for (clause_index, clause) in def.constraints.iter().enumerate() {
                    let satisfied = clause.literals.iter().any(|lit| {
                        def.role_position(lit.role).is_some_and(|pos| {
                            self.satisfies_formula(&lit.formula, tuple[pos])
                        })
                    });
                    if !satisfied {
                        return Err(Violation::RoleClauseViolated {
                            rel,
                            tuple_index,
                            clause_index,
                        });
                    }
                }
            }
        }

        Ok(())
    }

    /// Convenience wrapper around [`Self::check`].
    #[must_use]
    pub fn is_model(&self, schema: &Schema) -> bool {
        self.check(schema).is_ok()
    }
}

/// A reason why an interpretation fails to be a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The universe is empty (interpretations require `Δ ≠ ∅`).
    EmptyUniverse,
    /// A relation extension contains the same labeled tuple twice.
    DuplicateTuple {
        /// The relation.
        rel: RelId,
    },
    /// A tuple's length differs from the relation's arity.
    ArityMismatch {
        /// The relation.
        rel: RelId,
        /// Index of the offending tuple in the extension.
        tuple_index: usize,
    },
    /// An instance of a class is not an instance of its isa formula.
    IsaViolated {
        /// The class.
        class: ClassId,
        /// The offending object.
        obj: ObjId,
    },
    /// An attribute filler violates the declared filler type.
    AttrTypeViolated {
        /// The constraining class.
        class: ClassId,
        /// The source object.
        obj: ObjId,
        /// The attribute reference.
        att: AttRef,
        /// The ill-typed filler.
        filler: ObjId,
    },
    /// An object has too few or too many attribute fillers.
    AttrCardViolated {
        /// The constraining class.
        class: ClassId,
        /// The object.
        obj: ObjId,
        /// The attribute reference.
        att: AttRef,
        /// The observed filler count.
        count: u64,
        /// The violated bound.
        card: Card,
    },
    /// An object participates in too few or too many tuples of a role.
    ParticipationViolated {
        /// The constraining class.
        class: ClassId,
        /// The object.
        obj: ObjId,
        /// The relation.
        rel: RelId,
        /// The observed tuple count.
        count: u64,
        /// The violated bound.
        card: Card,
    },
    /// A tuple satisfies none of the literals of a role-clause.
    RoleClauseViolated {
        /// The relation.
        rel: RelId,
        /// Index of the tuple in the extension.
        tuple_index: usize,
        /// Index of the violated clause in the constraints part.
        clause_index: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::EmptyUniverse => write!(f, "universe is empty"),
            Violation::DuplicateTuple { rel } => {
                write!(f, "relation {rel} contains a duplicate tuple")
            }
            Violation::ArityMismatch { rel, tuple_index } => {
                write!(f, "tuple #{tuple_index} of relation {rel} has wrong arity")
            }
            Violation::IsaViolated { class, obj } => {
                write!(f, "object {obj} violates the isa formula of class {class}")
            }
            Violation::AttrTypeViolated { obj, filler, .. } => {
                write!(f, "attribute filler {filler} of object {obj} is ill-typed")
            }
            Violation::AttrCardViolated { obj, count, card, .. } => {
                write!(f, "object {obj} has {count} fillers, outside {card}")
            }
            Violation::ParticipationViolated { obj, rel, count, card, .. } => {
                write!(f, "object {obj} occurs in {count} tuples of {rel}, outside {card}")
            }
            Violation::RoleClauseViolated { rel, tuple_index, clause_index } => {
                write!(
                    f,
                    "tuple #{tuple_index} of {rel} violates role-clause #{clause_index}"
                )
            }
        }
    }
}

impl std::error::Error for Violation {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::{
        ClassFormula, RoleClause, RoleLiteral, SchemaBuilder,
    };

    /// Professor isa Person, teaches (1,2) Course; Course isa ¬Person.
    fn schema() -> Schema {
        let mut b = SchemaBuilder::new();
        let person = b.class("Person");
        let professor = b.class("Professor");
        let course = b.class("Course");
        let teaches = b.attribute("teaches");
        b.define_class(professor)
            .isa(ClassFormula::class(person))
            .attr(
                AttRef::Direct(teaches),
                Card::new(1, 2),
                ClassFormula::class(course),
            )
            .finish();
        b.define_class(course).isa(ClassFormula::neg_class(person)).finish();
        b.build().unwrap()
    }

    #[test]
    fn empty_universe_is_not_a_model() {
        let s = schema();
        let i = Interpretation::new(&s, 0);
        assert_eq!(i.check(&s), Err(Violation::EmptyUniverse));
    }

    #[test]
    fn empty_extensions_over_nonempty_universe_are_a_model() {
        // §2.3: "every CAR schema is satisfied by any interpretation that
        // assigns the empty set to every class, relationship, attribute".
        let s = schema();
        let i = Interpretation::new(&s, 1);
        assert_eq!(i.check(&s), Ok(()));
    }

    #[test]
    fn valid_model_passes() {
        let s = schema();
        let person = s.class_id("Person").unwrap();
        let professor = s.class_id("Professor").unwrap();
        let course = s.class_id("Course").unwrap();
        let teaches = s.attr_id("teaches").unwrap();
        let mut i = Interpretation::new(&s, 2);
        i.add_to_class(person, 0);
        i.add_to_class(professor, 0);
        i.add_to_class(course, 1);
        i.add_attr_pair(teaches, 0, 1);
        assert_eq!(i.check(&s), Ok(()));
        assert_eq!(i.att_count(AttRef::Direct(teaches), 0), 1);
        assert_eq!(i.att_count(AttRef::Inverse(teaches), 1), 1);
        assert_eq!(i.att_fillers(AttRef::Direct(teaches), 0).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn isa_violation_is_detected() {
        let s = schema();
        let professor = s.class_id("Professor").unwrap();
        let course = s.class_id("Course").unwrap();
        let teaches = s.attr_id("teaches").unwrap();
        let mut i = Interpretation::new(&s, 2);
        i.add_to_class(professor, 0); // not a Person!
        i.add_to_class(course, 1);
        i.add_attr_pair(teaches, 0, 1);
        assert!(matches!(i.check(&s), Err(Violation::IsaViolated { .. })));
    }

    #[test]
    fn attr_cardinality_violations_are_detected() {
        let s = schema();
        let person = s.class_id("Person").unwrap();
        let professor = s.class_id("Professor").unwrap();
        let mut i = Interpretation::new(&s, 1);
        i.add_to_class(person, 0);
        i.add_to_class(professor, 0);
        // teaches no course: below the (1,2) minimum.
        assert!(matches!(
            i.check(&s),
            Err(Violation::AttrCardViolated { count: 0, .. })
        ));
    }

    #[test]
    fn attr_type_violation_is_detected() {
        let s = schema();
        let person = s.class_id("Person").unwrap();
        let professor = s.class_id("Professor").unwrap();
        let teaches = s.attr_id("teaches").unwrap();
        let mut i = Interpretation::new(&s, 2);
        i.add_to_class(person, 0);
        i.add_to_class(professor, 0);
        i.add_to_class(person, 1); // a Person, not a Course
        i.add_attr_pair(teaches, 0, 1);
        assert!(matches!(i.check(&s), Err(Violation::AttrTypeViolated { .. })));
    }

    #[test]
    fn negated_isa_is_enforced() {
        let s = schema();
        let person = s.class_id("Person").unwrap();
        let course = s.class_id("Course").unwrap();
        let mut i = Interpretation::new(&s, 1);
        i.add_to_class(person, 0);
        i.add_to_class(course, 0); // Course isa ¬Person: contradiction
        assert!(matches!(i.check(&s), Err(Violation::IsaViolated { .. })));
    }

    fn rel_schema() -> Schema {
        let mut b = SchemaBuilder::new();
        let student = b.class("Student");
        let course = b.class("Course");
        let enrollment = b.relation("Enrollment", ["enrolls", "enrolled_in"]);
        let enrolls = b.role("enrolls");
        let enrolled_in = b.role("enrolled_in");
        b.relation_constraint(
            enrollment,
            RoleClause::new(vec![RoleLiteral {
                role: enrolls,
                formula: ClassFormula::class(student),
            }]),
        );
        b.define_class(student)
            .participates(enrollment, enrolls, Card::new(1, 2))
            .finish();
        let _ = (course, enrolled_in);
        b.build().unwrap()
    }

    #[test]
    fn relation_semantics() {
        let s = rel_schema();
        let student = s.class_id("Student").unwrap();
        let course = s.class_id("Course").unwrap();
        let enrollment = s.rel_id("Enrollment").unwrap();

        let mut i = Interpretation::new(&s, 2);
        i.add_to_class(student, 0);
        i.add_to_class(course, 1);
        i.add_tuple(enrollment, vec![0, 1]);
        assert_eq!(i.check(&s), Ok(()));
        assert_eq!(i.rel_extension(enrollment).len(), 1);

        // Duplicate tuple.
        let mut j = i.clone();
        j.add_tuple(enrollment, vec![0, 1]);
        assert!(matches!(j.check(&s), Err(Violation::DuplicateTuple { .. })));

        // Participation below minimum.
        let mut k = Interpretation::new(&s, 1);
        k.add_to_class(student, 0);
        assert!(matches!(
            k.check(&s),
            Err(Violation::ParticipationViolated { count: 0, .. })
        ));

        // Role clause violated: the enroller is not a Student.
        let mut l = Interpretation::new(&s, 2);
        l.add_to_class(course, 0);
        l.add_tuple(enrollment, vec![0, 1]);
        assert!(matches!(l.check(&s), Err(Violation::RoleClauseViolated { .. })));

        // Arity mismatch.
        let mut m = Interpretation::new(&s, 2);
        m.add_tuple(enrollment, vec![0]);
        assert!(matches!(m.check(&s), Err(Violation::ArityMismatch { .. })));
    }

    #[test]
    fn disjunctive_role_clause() {
        // Constraint: (enrolls: Student) ∨ (enrolled_in: Course).
        let mut b = SchemaBuilder::new();
        let student = b.class("Student");
        let course = b.class("Course");
        let enrollment = b.relation("Enrollment", ["enrolls", "enrolled_in"]);
        let enrolls = b.role("enrolls");
        let enrolled_in = b.role("enrolled_in");
        b.relation_constraint(
            enrollment,
            RoleClause::new(vec![
                RoleLiteral { role: enrolls, formula: ClassFormula::class(student) },
                RoleLiteral { role: enrolled_in, formula: ClassFormula::class(course) },
            ]),
        );
        let s = b.build().unwrap();
        let enrollment = s.rel_id("Enrollment").unwrap();
        let course = s.class_id("Course").unwrap();

        // Satisfied through the second literal only.
        let mut i = Interpretation::new(&s, 2);
        i.add_to_class(course, 1);
        i.add_tuple(enrollment, vec![0, 1]);
        assert_eq!(i.check(&s), Ok(()));

        // Neither literal satisfied.
        let mut j = Interpretation::new(&s, 2);
        j.add_tuple(enrollment, vec![0, 1]);
        assert!(matches!(j.check(&s), Err(Violation::RoleClauseViolated { .. })));
    }

    #[test]
    fn violation_messages() {
        assert!(Violation::EmptyUniverse.to_string().contains("empty"));
        let v = Violation::AttrCardViolated {
            class: ClassId::from_index(0),
            obj: 3,
            att: AttRef::Direct(AttrId::from_index(0)),
            count: 5,
            card: Card::new(0, 2),
        };
        assert!(v.to_string().contains('5'));
    }
}
