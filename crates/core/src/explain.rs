//! Human-readable rendering of the reasoner's intermediate artifacts.
//!
//! The expansion and the disequation system are the paper's central
//! objects, but as raw data they are hard to inspect. This module
//! renders them with schema names — compound classes as
//! `{Person, Student}`, merged constraints as
//! `{Course} ⇒ taught_by : (1, 1)`, disequations in `Var(·)` notation —
//! and turns [`crate::certify::UnsatProof`]s into step-by-step textual
//! explanations. Used by the `schema_validator` example and handy in
//! tests and debugging sessions.

use crate::certify::{CertStep, UnsatProof};
use crate::disequations::UnknownId;
use crate::expansion::{CcId, Expansion};
use crate::satisfiability::SatAnalysis;
use crate::syntax::{AttRef, Schema};
use std::fmt::Write;

/// Renders a compound class with class names: `{Person, Student}`.
#[must_use]
pub fn compound_class_name(schema: &Schema, expansion: &Expansion, cc: CcId) -> String {
    let names: Vec<&str> = expansion
        .compound_class(cc)
        .iter()
        .map(|i| schema.class_name(crate::ids::ClassId::from_index(i)))
        .collect();
    format!("{{{}}}", names.join(", "))
}

/// Renders one unknown of `ΨS` with names.
#[must_use]
pub fn unknown_name(schema: &Schema, expansion: &Expansion, unknown: UnknownId) -> String {
    match unknown {
        UnknownId::Cc(i) => {
            format!("Var{}", compound_class_name(schema, expansion, CcId(i as u32)))
        }
        UnknownId::Ca(i) => {
            let ca = &expansion.compound_attrs()[i];
            let targets: Vec<String> = ca
                .targets
                .iter()
                .map(|&t| compound_class_name(schema, expansion, t))
                .collect();
            format!(
                "Var⟨{} →{}→ {}⟩",
                compound_class_name(schema, expansion, ca.source),
                schema.symbols().attr_name(ca.attr),
                targets.join(" | "),
            )
        }
        UnknownId::Cr(i) => {
            let cr = &expansion.compound_rels()[i];
            let def = schema.rel_def(cr.rel);
            let parts: Vec<String> = cr
                .components
                .iter()
                .zip(&def.roles)
                .map(|(&cc, &role)| {
                    format!(
                        "{}: {}",
                        schema.symbols().role_name(role),
                        compound_class_name(schema, expansion, cc)
                    )
                })
                .collect();
            format!("Var⟨{}({})⟩", schema.symbols().rel_name(cr.rel), parts.join(", "))
        }
    }
}

/// Renders the whole expansion: compound classes, compound attributes,
/// compound relations, and the merged constraint sets `Natt` / `Nrel`.
#[must_use]
pub fn render_expansion(schema: &Schema, expansion: &Expansion) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "compound classes ({}):", expansion.compound_classes().len());
    for cc in expansion.cc_ids() {
        let _ = writeln!(out, "  {}", compound_class_name(schema, expansion, cc));
    }
    if !expansion.compound_attrs().is_empty() {
        let _ = writeln!(out, "compound attributes ({}):", expansion.compound_attrs().len());
        for i in 0..expansion.compound_attrs().len() {
            let _ = writeln!(out, "  {}", unknown_name(schema, expansion, UnknownId::Ca(i)));
        }
    }
    if !expansion.compound_rels().is_empty() {
        let _ = writeln!(out, "compound relations ({}):", expansion.compound_rels().len());
        for i in 0..expansion.compound_rels().len() {
            let _ = writeln!(out, "  {}", unknown_name(schema, expansion, UnknownId::Cr(i)));
        }
    }
    if !expansion.natt().is_empty() {
        let _ = writeln!(out, "Natt:");
        for entry in expansion.natt() {
            let att = match entry.att {
                AttRef::Direct(a) => schema.symbols().attr_name(a).to_owned(),
                AttRef::Inverse(a) => format!("(inv {})", schema.symbols().attr_name(a)),
            };
            let _ = writeln!(
                out,
                "  {} ⇒ {att} : {}",
                compound_class_name(schema, expansion, entry.cc),
                entry.card
            );
        }
    }
    if !expansion.nrel().is_empty() {
        let _ = writeln!(out, "Nrel:");
        for entry in expansion.nrel() {
            let def = schema.rel_def(entry.rel);
            let _ = writeln!(
                out,
                "  {} ⇒ {}[{}] : {}",
                compound_class_name(schema, expansion, entry.cc),
                schema.symbols().rel_name(entry.rel),
                schema.symbols().role_name(def.roles[entry.role_pos]),
                entry.card
            );
        }
    }
    out
}

/// Renders the analysis outcome: which compound classes are realizable.
#[must_use]
pub fn render_analysis(schema: &Schema, expansion: &Expansion, analysis: &SatAnalysis) -> String {
    let mut out = String::new();
    for cc in expansion.cc_ids() {
        let _ = writeln!(
            out,
            "  {} {}",
            if analysis.is_realizable(cc) { "✓" } else { "✗" },
            compound_class_name(schema, expansion, cc)
        );
    }
    let stats = analysis.stats();
    let _ = writeln!(
        out,
        "  ({} unknowns, {} disequations, {} LP calls, {} fixpoint rounds)",
        stats.num_unknowns, stats.num_disequations, stats.lp_calls, stats.iterations
    );
    out
}

/// Renders a finite interpretation: per-class extensions, attribute
/// pairs and relation tuples, with object ids.
#[must_use]
pub fn render_interpretation(
    schema: &Schema,
    interp: &crate::semantics::Interpretation,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "universe: {} objects", interp.universe_size());
    for class in schema.symbols().class_ids() {
        let mut objs: Vec<u32> = interp.class_extension(class).iter().copied().collect();
        objs.sort_unstable();
        if !objs.is_empty() {
            let strs: Vec<String> = objs.iter().map(|o| format!("#{o}")).collect();
            let _ = writeln!(out, "  {} = {{{}}}", schema.class_name(class), strs.join(", "));
        }
    }
    for attr in schema.symbols().attr_ids() {
        let mut pairs: Vec<(u32, u32)> = interp.attr_extension(attr).iter().copied().collect();
        pairs.sort_unstable();
        if !pairs.is_empty() {
            let strs: Vec<String> =
                pairs.iter().map(|(a, b)| format!("#{a}→#{b}")).collect();
            let _ = writeln!(
                out,
                "  {} = {{{}}}",
                schema.symbols().attr_name(attr),
                strs.join(", ")
            );
        }
    }
    for (rel, def) in schema.relations() {
        let mut tuples: Vec<Vec<u32>> = interp.rel_extension(rel).to_vec();
        tuples.sort_unstable();
        if !tuples.is_empty() {
            let strs: Vec<String> = tuples
                .iter()
                .map(|t| {
                    let parts: Vec<String> = t
                        .iter()
                        .zip(&def.roles)
                        .map(|(o, &r)| format!("{}: #{o}", schema.symbols().role_name(r)))
                        .collect();
                    format!("⟨{}⟩", parts.join(", "))
                })
                .collect();
            let _ = writeln!(
                out,
                "  {} = {{{}}}",
                schema.symbols().rel_name(rel),
                strs.join(", ")
            );
        }
    }
    out
}

/// Renders an unsatisfiability proof as numbered steps.
#[must_use]
pub fn render_proof(schema: &Schema, expansion: &Expansion, proof: &UnsatProof) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "proof that '{}' is unsatisfiable ({} steps):",
        schema.class_name(proof.class),
        proof.steps.len()
    );
    for (k, step) in proof.steps.iter().enumerate() {
        match step {
            CertStep::StructuralEndpoint { unknown, dead_endpoint } => {
                let _ = writeln!(
                    out,
                    "  {k:3}. {} = 0   (endpoint {} is dead)",
                    unknown_name(schema, expansion, *unknown),
                    unknown_name(schema, expansion, *dead_endpoint),
                );
            }
            CertStep::StructuralEmptySum { unknown } => {
                let _ = writeln!(
                    out,
                    "  {k:3}. {} = 0   (a positive lower bound has no live candidates)",
                    unknown_name(schema, expansion, *unknown),
                );
            }
            CertStep::StructuralDeadTargets { unknown } => {
                let _ = writeln!(
                    out,
                    "  {k:3}. {} = 0   (every interchangeable target is dead)",
                    unknown_name(schema, expansion, *unknown),
                );
            }
            CertStep::ForcedZero { unknown, certificate } => {
                let _ = writeln!(
                    out,
                    "  {k:3}. {} = 0   (Farkas certificate, {} nonzero multipliers)",
                    unknown_name(schema, expansion, *unknown),
                    certificate.multipliers.iter().filter(|m| !m.is_zero()).count(),
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certify::certify_unsatisfiable;
    use crate::enumerate;
    use crate::expansion::ExpansionLimits;
    use crate::syntax::{Card, ClassFormula, SchemaBuilder};

    fn cycle_schema() -> (Schema, Expansion, SatAnalysis) {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let bb = b.class("B");
        let f = b.attribute("f");
        b.define_class(a)
            .attr(AttRef::Direct(f), Card::exactly(2), ClassFormula::class(bb))
            .finish();
        b.define_class(bb)
            .isa(ClassFormula::class(a))
            .attr(AttRef::Inverse(f), Card::new(0, 1), ClassFormula::class(a))
            .finish();
        let schema = b.build().unwrap();
        let ccs = enumerate::naive(&schema, usize::MAX).unwrap();
        let expansion = Expansion::build(&schema, ccs, &ExpansionLimits::default()).unwrap();
        let analysis = SatAnalysis::run(&expansion);
        (schema, expansion, analysis)
    }

    #[test]
    fn names_are_readable() {
        let (schema, expansion, _) = cycle_schema();
        let names: Vec<String> = expansion
            .cc_ids()
            .map(|cc| compound_class_name(&schema, &expansion, cc))
            .collect();
        assert!(names.contains(&"{A}".to_owned()));
        assert!(names.contains(&"{A, B}".to_owned()));
    }

    #[test]
    fn expansion_rendering_mentions_everything() {
        let (schema, expansion, _) = cycle_schema();
        let text = render_expansion(&schema, &expansion);
        assert!(text.contains("compound classes"));
        assert!(text.contains("Natt:"));
        assert!(text.contains("⇒ f : (2, 2)"), "{text}");
        assert!(text.contains("(inv f)"), "{text}");
    }

    #[test]
    fn analysis_rendering_marks_realizability() {
        let (schema, expansion, analysis) = cycle_schema();
        let text = render_analysis(&schema, &expansion, &analysis);
        // Everything is dead in this schema.
        assert!(text.contains('✗'));
        assert!(!text.contains('✓'));
        assert!(text.contains("LP calls"));
    }

    #[test]
    fn interpretation_rendering_lists_extensions() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let t = b.class("T");
        let f = b.attribute("f");
        b.define_class(a)
            .attr(AttRef::Direct(f), Card::exactly(1), ClassFormula::class(t))
            .finish();
        let schema = b.build().unwrap();
        let mut interp = crate::semantics::Interpretation::new(&schema, 2);
        interp.add_to_class(a, 0);
        interp.add_to_class(t, 1);
        interp.add_attr_pair(f, 0, 1);
        assert!(interp.is_model(&schema));
        let text = render_interpretation(&schema, &interp);
        assert!(text.contains("A = {#0}"), "{text}");
        assert!(text.contains("f = {#0→#1}"), "{text}");
        assert!(text.contains("universe: 2"), "{text}");
    }

    #[test]
    fn proof_rendering_is_step_by_step() {
        let (schema, expansion, analysis) = cycle_schema();
        let a = schema.class_id("A").unwrap();
        let proof = certify_unsatisfiable(&expansion, &analysis, a).unwrap();
        let text = render_proof(&schema, &expansion, &proof);
        assert!(text.contains("proof that 'A' is unsatisfiable"));
        assert!(text.contains("= 0"));
        assert!(text.lines().count() >= proof.steps.len());
    }
}
