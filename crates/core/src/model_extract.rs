//! Constructing an actual finite model from an acceptable solution — the
//! constructive content of Theorem 3.3.
//!
//! The acceptable integer solution produced by the satisfiability
//! analysis fixes *how many* objects each compound class has and *how
//! many* links each compound attribute/relation has; this module places
//! the links so that every **per-object** cardinality bound holds:
//!
//! * the solution is scaled (solutions of the homogeneous `ΨS` are closed
//!   under integer scaling) until every link group fits without duplicate
//!   pairs/tuples;
//! * per link group, link endpoints are dealt out round-robin through
//!   cursors shared across groups — one cursor per (attribute, compound
//!   class, side) and per (relation, role, compound class) — so every
//!   object's final degree lands in `{⌊avg⌋, ⌈avg⌉}`, and the aggregate
//!   bounds `u·n ≤ total ≤ v·n` of `ΨS` pin that interval inside `[u, v]`;
//! * for `K`-ary relations the deal is recursive: the tuple count is
//!   split near-evenly over the first role's objects, each part recursing
//!   over the remaining roles, which keeps every role's marginal near-even
//!   while distinct prefixes guarantee distinct tuples.
//!
//! The result is always re-verified against the independent model checker
//! ([`crate::semantics::Interpretation::check`]); if verification fails
//! the scale is doubled and extraction retried, so a returned model is a
//! model by construction *and* by checking.

use crate::expansion::{CcId, Expansion};
use crate::satisfiability::SatAnalysis;
use crate::semantics::{Interpretation, Violation};
use crate::syntax::Schema;
use car_arith::{BigInt, Ratio};
use car_lp::scale_to_integers;
use std::collections::HashMap;
use std::fmt;

/// Size budget for model extraction.
#[derive(Debug, Clone, Copy)]
pub struct ExtractConfig {
    /// Maximum universe size.
    pub max_objects: u64,
    /// Maximum total number of attribute pairs plus relation tuples.
    pub max_links: u64,
    /// Maximum number of verify-and-rescale retries.
    pub max_retries: u32,
}

impl Default for ExtractConfig {
    fn default() -> ExtractConfig {
        ExtractConfig { max_objects: 1 << 20, max_links: 1 << 22, max_retries: 8 }
    }
}

/// Extraction failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExtractError {
    /// The smallest realizable model exceeds the configured budget.
    TooLarge {
        /// What overflowed ("objects" or "links").
        what: &'static str,
        /// The configured limit.
        limit: u64,
    },
    /// The constructed interpretation failed verification even after all
    /// rescale retries (indicates a bug; surfaced rather than hidden).
    VerificationFailed(Violation),
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtractError::TooLarge { what, limit } => {
                write!(f, "extracted model needs more than {limit} {what}")
            }
            ExtractError::VerificationFailed(v) => {
                write!(f, "extracted interpretation failed verification: {v}")
            }
        }
    }
}

impl std::error::Error for ExtractError {}

/// Extracts a verified finite model realizing every realizable compound
/// class simultaneously (the "maximal" model: every satisfiable class is
/// nonempty in it).
///
/// # Errors
/// [`ExtractError::TooLarge`] if the budget is exceeded;
/// [`ExtractError::VerificationFailed`] if construction keeps failing
/// (a bug, surfaced deliberately).
pub fn extract_model(
    schema: &Schema,
    expansion: &Expansion,
    analysis: &SatAnalysis,
    config: &ExtractConfig,
) -> Result<Interpretation, ExtractError> {
    match extract_from_witness(schema, expansion, analysis.witness(), config) {
        Err(ExtractError::TooLarge { .. }) => {}
        other => return other,
    }
    // The analysis witness is a *sum* of probe vertices; the least common
    // multiple of its denominators can make the scaled integer counts
    // astronomical. Refine: one LP minimizing the total population over
    // the alive support (dead unknowns pinned, alive ones >= 1) lands on
    // the natural small counts the cardinality ratios dictate.
    let witness = refined_witness(expansion, analysis)
        .ok_or(ExtractError::TooLarge { what: "objects", limit: config.max_objects })?;
    extract_from_witness(schema, expansion, &witness, config)
}

/// One extraction attempt cycle from a given acceptable witness.
fn extract_from_witness(
    schema: &Schema,
    expansion: &Expansion,
    witness: &[Ratio],
    config: &ExtractConfig,
) -> Result<Interpretation, ExtractError> {
    let ints = scale_to_integers(witness);
    let n_cc = expansion.compound_classes().len();
    let n_ca = expansion.compound_attrs().len();
    let cc_base = &ints[..n_cc];
    let ca_base = &ints[n_cc..n_cc + n_ca];
    let cr_base = &ints[n_cc + n_ca..];

    let mut scale = initial_scale(expansion, cc_base, ca_base, cr_base);
    for attempt in 0..=config.max_retries {
        let interp = build(schema, expansion, cc_base, ca_base, cr_base, &scale, config)?;
        match interp.check(schema) {
            Ok(()) => return Ok(interp),
            Err(violation) => {
                if attempt == config.max_retries {
                    return Err(ExtractError::VerificationFailed(violation));
                }
                scale = &scale * &BigInt::from(2u32);
            }
        }
    }
    unreachable!("loop returns on the final attempt");
}

/// Minimizes the total population over the alive support, keeping the
/// solution acceptable (dead unknowns pinned at zero, alive ones >= 1).
fn refined_witness(
    expansion: &Expansion,
    analysis: &SatAnalysis,
) -> Option<Vec<Ratio>> {
    use crate::disequations::DisequationSystem;
    use car_lp::{LinExpr, Relation, SolveResult};

    let sys = DisequationSystem::build(expansion, &[]);
    let witness = analysis.witness();
    let mut problem = sys.problem().clone();
    let mut objective = LinExpr::zero();
    for (pos, unknown) in sys.unknowns().enumerate() {
        let var = sys.var_of(unknown);
        if witness[pos].is_positive() {
            problem.add_constraint(LinExpr::var(var), Relation::Ge, Ratio::one());
        } else {
            problem.add_constraint(LinExpr::var(var), Relation::Le, Ratio::zero());
        }
        objective.add_term(var, Ratio::one());
    }
    match problem.minimize(&objective) {
        SolveResult::Optimal { point, .. } => Some(
            sys.unknowns()
                .map(|u| point[sys.var_of(u).index()].clone())
                .collect(),
        ),
        _ => None,
    }
}

/// Ceiling division of nonnegative big integers.
fn ceil_div(a: &BigInt, b: &BigInt) -> BigInt {
    let (q, r) = a.div_rem(b);
    if r.is_zero() {
        q
    } else {
        q + BigInt::one()
    }
}

/// Smallest power-of-two scale satisfying all distinctness conditions:
/// for every attribute group `ceil(m/n₁) ≤ n₂·t`, and for every relation
/// group the nested condition `ceil(…ceil(m·t/(n₁·t))…/(n_{K-1}·t)) ≤ n_K·t`.
fn initial_scale(
    expansion: &Expansion,
    cc: &[BigInt],
    ca: &[BigInt],
    cr: &[BigInt],
) -> BigInt {
    let mut t = BigInt::one();
    let two = BigInt::from(2u32);
    loop {
        let mut ok = true;
        for (i, group) in expansion.compound_attrs().iter().enumerate() {
            if ca[i].is_zero() {
                continue;
            }
            let n1 = &cc[group.source.index()];
            // The construction routes a grouped variable's mass into the
            // first live target; check capacity against that one.
            let Some(target) = group.targets.iter().find(|c| !cc[c.index()].is_zero())
            else {
                ok = false;
                break;
            };
            let n2 = &cc[target.index()];
            // Degrees are invariant under scaling; capacity n₂·t grows.
            if ceil_div(&ca[i], n1) > n2 * &t {
                ok = false;
                break;
            }
        }
        if ok {
            'rels: for (i, group) in expansion.compound_rels().iter().enumerate() {
                if cr[i].is_zero() {
                    continue;
                }
                let mut worst = &cr[i] * &t;
                for (k, comp) in group.components.iter().enumerate() {
                    let n = &cc[comp.index()] * &t;
                    if k + 1 == group.components.len() {
                        if worst > n {
                            ok = false;
                            break 'rels;
                        }
                    } else {
                        worst = ceil_div(&worst, &n);
                    }
                }
            }
        }
        if ok {
            return t;
        }
        t = &t * &two;
    }
}

/// One construction attempt at a fixed scale.
fn build(
    schema: &Schema,
    expansion: &Expansion,
    cc_base: &[BigInt],
    ca_base: &[BigInt],
    cr_base: &[BigInt],
    scale: &BigInt,
    config: &ExtractConfig,
) -> Result<Interpretation, ExtractError> {
    let to_u64 = |v: BigInt, what: &'static str, limit: u64| -> Result<u64, ExtractError> {
        v.to_u64()
            .filter(|&x| x <= limit)
            .ok_or(ExtractError::TooLarge { what, limit })
    };

    // Object counts and offsets per compound class.
    let mut counts: Vec<u64> = Vec::with_capacity(cc_base.len());
    let mut total: u64 = 0;
    for base in cc_base {
        let n = to_u64(base * scale, "objects", config.max_objects)?;
        total = total
            .checked_add(n)
            .ok_or(ExtractError::TooLarge { what: "objects", limit: config.max_objects })?;
        if total > config.max_objects {
            return Err(ExtractError::TooLarge { what: "objects", limit: config.max_objects });
        }
        counts.push(n);
    }
    let mut offsets: Vec<u64> = Vec::with_capacity(counts.len());
    let mut acc = 0;
    for &n in &counts {
        offsets.push(acc);
        acc += n;
    }
    let universe = if total == 0 { 1 } else { total };
    let mut interp = Interpretation::new(schema, universe as usize);

    // Class memberships: the objects of a compound class belong to
    // exactly its member classes.
    for (i, cc) in expansion.compound_classes().iter().enumerate() {
        for c in cc.iter() {
            let class = crate::ids::ClassId::from_index(c);
            for o in 0..counts[i] {
                interp.add_to_class(class, (offsets[i] + o) as u32);
            }
        }
    }

    let mut links: u64 = 0;
    let budget = |m: u64, links: &mut u64| -> Result<(), ExtractError> {
        *links = links
            .checked_add(m)
            .ok_or(ExtractError::TooLarge { what: "links", limit: config.max_links })?;
        if *links > config.max_links {
            return Err(ExtractError::TooLarge { what: "links", limit: config.max_links });
        }
        Ok(())
    };

    // ---- Attribute pairs -------------------------------------------
    // Cursors shared across groups: per (attribute, compound class) for
    // each side.
    let mut src_cursor: HashMap<(u32, u32), u64> = HashMap::new();
    let mut tgt_cursor: HashMap<(u32, u32), u64> = HashMap::new();
    for (i, group) in expansion.compound_attrs().iter().enumerate() {
        let m = to_u64(&ca_base[i] * scale, "links", config.max_links)?;
        if m == 0 {
            continue;
        }
        budget(m, &mut links)?;
        let n1 = counts[group.source.index()];
        // Grouped link variables may point into any of their
        // interchangeable targets; none of those targets carries an
        // inverse count bound, so routing the whole mass into one live
        // member is always legal.
        let target = *group
            .targets
            .iter()
            .find(|t| counts[t.index()] > 0)
            .expect("acceptability guarantees a live target");
        let n2 = counts[target.index()];
        debug_assert!(n1 > 0 && n2 > 0, "acceptability guarantees live endpoints");
        let base = m / n1;
        let extras = m % n1;
        let sc = src_cursor
            .entry((group.attr.index() as u32, group.source.0))
            .or_insert(0);
        let tc = tgt_cursor
            .entry((group.attr.index() as u32, target.0))
            .or_insert(0);
        let mut tpos = *tc;
        for p in 0..n1 {
            let degree = base + u64::from(p < extras);
            if degree == 0 {
                continue;
            }
            let src_obj = (offsets[group.source.index()] + (*sc + p) % n1) as u32;
            for q in 0..degree {
                let tgt_obj = (offsets[target.index()] + (tpos + q) % n2) as u32;
                interp.add_attr_pair(group.attr, src_obj, tgt_obj);
            }
            tpos = (tpos + degree) % n2;
        }
        *sc = (*sc + extras) % n1;
        *tc = tpos;
    }

    // ---- Relation tuples -------------------------------------------
    // Cursors per (relation, role position, compound class).
    let mut rel_cursor: HashMap<(u32, usize, u32), u64> = HashMap::new();
    for (i, group) in expansion.compound_rels().iter().enumerate() {
        let m = to_u64(&cr_base[i] * scale, "links", config.max_links)?;
        if m == 0 {
            continue;
        }
        budget(m, &mut links)?;
        let mut prefix: Vec<u32> = Vec::with_capacity(group.components.len());
        place_tuples(
            group.rel,
            &group.components,
            0,
            m,
            &counts,
            &offsets,
            &mut rel_cursor,
            &mut prefix,
            &mut interp,
        );
    }

    Ok(interp)
}

/// Recursively deals `m` tuples over roles `level..K`, extending `prefix`.
#[allow(clippy::too_many_arguments)]
fn place_tuples(
    rel: crate::ids::RelId,
    components: &[CcId],
    level: usize,
    m: u64,
    counts: &[u64],
    offsets: &[u64],
    cursors: &mut HashMap<(u32, usize, u32), u64>,
    prefix: &mut Vec<u32>,
    interp: &mut Interpretation,
) {
    let cc = components[level];
    let n = counts[cc.index()];
    debug_assert!(n > 0);
    let key = (rel.index() as u32, level, cc.0);
    let cursor = cursors.entry(key).or_insert(0);

    if level + 1 == components.len() {
        // Last role: lay m consecutive objects (distinct because the
        // scale guarantees m ≤ n here).
        debug_assert!(m <= n, "scale must bound the last-level part size");
        let start = *cursor;
        *cursor = (start + m) % n;
        for q in 0..m {
            let obj = (offsets[cc.index()] + (start + q) % n) as u32;
            prefix.push(obj);
            interp.add_tuple(rel, prefix.clone());
            prefix.pop();
        }
        return;
    }

    let base = m / n;
    let extras = m % n;
    let start = *cursor;
    *cursor = (start + extras) % n;
    for p in 0..n {
        let degree = base + u64::from(p < extras);
        if degree == 0 {
            continue;
        }
        let obj = (offsets[cc.index()] + (start + p) % n) as u32;
        prefix.push(obj);
        place_tuples(rel, components, level + 1, degree, counts, offsets, cursors, prefix, interp);
        prefix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate;
    use crate::expansion::ExpansionLimits;
    use crate::syntax::{
        AttRef, Card, ClassFormula, RoleClause, RoleLiteral, SchemaBuilder,
    };

    fn pipeline(build: impl FnOnce(&mut SchemaBuilder)) -> (Schema, Interpretation) {
        let mut b = SchemaBuilder::new();
        build(&mut b);
        let schema = b.build().unwrap();
        let ccs = enumerate::naive(&schema, usize::MAX).unwrap();
        let exp = Expansion::build(&schema, ccs, &ExpansionLimits::default()).unwrap();
        let analysis = SatAnalysis::run(&exp);
        let model =
            extract_model(&schema, &exp, &analysis, &ExtractConfig::default()).unwrap();
        (schema, model)
    }

    #[test]
    fn trivial_schema_yields_nonempty_model() {
        let (schema, model) = pipeline(|b| {
            b.class("A");
        });
        assert!(model.universe_size() >= 1);
        assert!(model.is_model(&schema));
        let a = schema.class_id("A").unwrap();
        assert!(!model.class_extension(a).is_empty());
    }

    #[test]
    fn unsatisfiable_class_is_empty_in_extracted_model() {
        let (schema, model) = pipeline(|b| {
            let a = b.class("A");
            b.define_class(a).isa(ClassFormula::neg_class(a)).finish();
            b.class("B");
        });
        let a = schema.class_id("A").unwrap();
        let bb = schema.class_id("B").unwrap();
        assert!(model.class_extension(a).is_empty());
        assert!(!model.class_extension(bb).is_empty());
    }

    #[test]
    fn exact_attribute_cardinalities_are_realized() {
        let (schema, model) = pipeline(|b| {
            let a = b.class("A");
            let t = b.class("T");
            let f = b.attribute("f");
            b.define_class(a)
                .attr(AttRef::Direct(f), Card::exactly(3), ClassFormula::class(t))
                .finish();
        });
        let a = schema.class_id("A").unwrap();
        let f = schema.attr_id("f").unwrap();
        for &obj in model.class_extension(a) {
            assert_eq!(model.att_count(AttRef::Direct(f), obj), 3);
        }
    }

    #[test]
    fn inverse_bounds_shape_the_bipartite_graph() {
        // Every A has exactly 2 fillers; every T-filler serves exactly 2
        // sources: the extracted graph must be 2-regular on both sides.
        let (schema, model) = pipeline(|b| {
            let a = b.class("A");
            let t = b.class("T");
            let f = b.attribute("f");
            b.define_class(a)
                .attr(AttRef::Direct(f), Card::exactly(2), ClassFormula::class(t))
                .finish();
            b.define_class(t)
                .attr(AttRef::Inverse(f), Card::exactly(2), ClassFormula::class(a))
                .finish();
        });
        let f = schema.attr_id("f").unwrap();
        let a = schema.class_id("A").unwrap();
        let t = schema.class_id("T").unwrap();
        for &obj in model.class_extension(a) {
            assert_eq!(model.att_count(AttRef::Direct(f), obj), 2);
        }
        for &obj in model.class_extension(t) {
            assert_eq!(model.att_count(AttRef::Inverse(f), obj), 2);
        }
    }

    #[test]
    fn relation_participations_are_realized() {
        let (schema, model) = pipeline(|b| {
            let student = b.class("Student");
            let course = b.class("Course");
            let enrollment = b.relation("Enrollment", ["enrolls", "enrolled_in"]);
            let enrolls = b.role("enrolls");
            let enrolled_in = b.role("enrolled_in");
            b.define_class(student)
                .isa(ClassFormula::neg_class(course))
                .participates(enrollment, enrolls, Card::new(1, 6))
                .finish();
            b.define_class(course)
                .participates(enrollment, enrolled_in, Card::new(5, 100))
                .finish();
            b.relation_constraint(
                enrollment,
                RoleClause::new(vec![RoleLiteral {
                    role: enrolls,
                    formula: ClassFormula::class(student),
                }]),
            );
            b.relation_constraint(
                enrollment,
                RoleClause::new(vec![RoleLiteral {
                    role: enrolled_in,
                    formula: ClassFormula::class(course),
                }]),
            );
        });
        let enrollment = schema.rel_id("Enrollment").unwrap();
        assert!(!model.rel_extension(enrollment).is_empty());
        // check() already passed inside pipeline(); spot-check counts.
        let course = schema.class_id("Course").unwrap();
        for &obj in model.class_extension(course) {
            let count = model
                .rel_extension(enrollment)
                .iter()
                .filter(|t| t[1] == obj)
                .count();
            assert!((5..=100).contains(&count), "course enrolls {count}");
        }
    }

    #[test]
    fn ternary_relation_extraction() {
        let (schema, model) = pipeline(|b| {
            let s = b.class("S");
            let p = b.class("P");
            let c = b.class("C");
            let exam = b.relation("Exam", ["of", "by", "in"]);
            let of = b.role("of");
            let by = b.role("by");
            let r_in = b.role("in");
            for (role, class) in [(of, s), (by, p), (r_in, c)] {
                b.relation_constraint(
                    exam,
                    RoleClause::new(vec![RoleLiteral {
                        role,
                        formula: ClassFormula::class(class),
                    }]),
                );
            }
            b.define_class(s).participates(exam, of, Card::new(2, 3)).finish();
            b.define_class(p).participates(exam, by, Card::new(1, 4)).finish();
        });
        let exam = schema.rel_id("Exam").unwrap();
        let tuples = model.rel_extension(exam);
        assert!(!tuples.is_empty());
        // All tuples distinct (set semantics) — implied by check(), but
        // assert explicitly for clarity.
        let distinct: std::collections::HashSet<&Vec<u32>> = tuples.iter().collect();
        assert_eq!(distinct.len(), tuples.len());
    }

    #[test]
    fn skewed_ratio_needs_scaling_and_still_verifies() {
        // Every A needs 7 fillers, every filler serves at most 2 sources:
        // |T| >= ceil(7/2 |A|); pair distinctness forces the scale-up
        // machinery to kick in.
        let (schema, model) = pipeline(|b| {
            let a = b.class("A");
            let t = b.class("T");
            let f = b.attribute("f");
            b.define_class(a)
                .attr(AttRef::Direct(f), Card::exactly(7), ClassFormula::class(t))
                .finish();
            b.define_class(t)
                .attr(AttRef::Inverse(f), Card::new(1, 2), ClassFormula::class(a))
                .finish();
        });
        assert!(model.is_model(&schema));
        let a = schema.class_id("A").unwrap();
        assert!(!model.class_extension(a).is_empty());
    }

    #[test]
    fn budget_limits_are_enforced() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let t = b.class("T");
        let f = b.attribute("f");
        b.define_class(a)
            .attr(AttRef::Direct(f), Card::exactly(1000), ClassFormula::class(t))
            .finish();
        let schema = b.build().unwrap();
        let ccs = enumerate::naive(&schema, usize::MAX).unwrap();
        let exp = Expansion::build(&schema, ccs, &ExpansionLimits::default()).unwrap();
        let analysis = SatAnalysis::run(&exp);
        let tight = ExtractConfig { max_links: 10, ..Default::default() };
        let err = extract_model(&schema, &exp, &analysis, &tight).unwrap_err();
        assert!(matches!(err, ExtractError::TooLarge { what: "links", .. }));
        assert!(err.to_string().contains("links"));
    }

    #[test]
    fn ceil_div_behaviour() {
        let b = |v: i64| BigInt::from(v);
        assert_eq!(ceil_div(&b(7), &b(2)), b(4));
        assert_eq!(ceil_div(&b(6), &b(2)), b(3));
        assert_eq!(ceil_div(&b(0), &b(5)), b(0));
        assert_eq!(ceil_div(&b(1), &b(5)), b(1));
    }
}
