//! Abstract syntax of CAR schemas (§2.2 of the paper).
//!
//! A schema is a collection of class and relation definitions over an
//! alphabet of class, attribute, relation and role symbols. Class
//! definitions constrain their instances through three kinds of
//! properties — `isa` over a [`ClassFormula`], typed and
//! cardinality-bounded [`AttrSpec`]s (possibly on *inverse* attributes),
//! and [`Participation`] bounds in relation roles. Relation definitions
//! fix a role set and constrain tuples through [`RoleClause`]s.

use crate::bitset::BitSet;
use crate::ids::{AttrId, ClassId, RelId, RoleId, SymbolTable};
use std::fmt;

/// A cardinality bound `(min, max)`; `max = None` encodes `∞`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Card {
    /// Lower bound (`u` / `x` in the paper), a nonnegative integer.
    pub min: u64,
    /// Upper bound (`v` / `y`), a nonnegative integer or `∞` (`None`).
    pub max: Option<u64>,
}

impl Card {
    /// The bound `(min, max)`.
    #[must_use]
    pub fn new(min: u64, max: u64) -> Card {
        Card { min, max: Some(max) }
    }

    /// The bound `(min, ∞)`.
    #[must_use]
    pub fn at_least(min: u64) -> Card {
        Card { min, max: None }
    }

    /// The bound `(n, n)` (exactly `n`).
    #[must_use]
    pub fn exactly(n: u64) -> Card {
        Card::new(n, n)
    }

    /// The unconstrained bound `(0, ∞)`.
    #[must_use]
    pub fn any() -> Card {
        Card::at_least(0)
    }

    /// `true` iff `min <= max` (with `∞` larger than everything).
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.max.is_none_or(|max| self.min <= max)
    }

    /// `true` iff `count` lies within the bound.
    #[must_use]
    pub fn contains(&self, count: u64) -> bool {
        count >= self.min && self.max.is_none_or(|max| count <= max)
    }

    /// Pointwise refinement of two bounds on the same connection: the
    /// larger minimum and the smaller maximum (`umax`/`vmin` of §3.1).
    #[must_use]
    pub fn merge(&self, other: &Card) -> Card {
        let max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) | (None, Some(a)) => Some(a),
            (None, None) => None,
        };
        Card { min: self.min.max(other.min), max }
    }
}

impl fmt::Display for Card {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.max {
            Some(max) => write!(f, "({}, {})", self.min, max),
            None => write!(f, "({}, *)", self.min),
        }
    }
}

/// A class-literal: a class symbol or its complement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClassLiteral {
    /// The class symbol.
    pub class: ClassId,
    /// `true` for `C`, `false` for `¬C`.
    pub positive: bool,
}

impl ClassLiteral {
    /// The positive literal `C`.
    #[must_use]
    pub fn pos(class: ClassId) -> ClassLiteral {
        ClassLiteral { class, positive: true }
    }

    /// The negative literal `¬C`.
    #[must_use]
    pub fn neg(class: ClassId) -> ClassLiteral {
        ClassLiteral { class, positive: false }
    }
}

/// A class-clause `L₁ ∨ … ∨ Lₘ`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClassClause {
    /// The disjuncts.
    pub literals: Vec<ClassLiteral>,
}

impl ClassClause {
    /// Builds a clause from literals.
    #[must_use]
    pub fn new(literals: Vec<ClassLiteral>) -> ClassClause {
        ClassClause { literals }
    }
}

/// A class-formula `γ₁ ∧ … ∧ γₙ` in conjunctive normal form.
///
/// The empty formula is `⊤` (no constraint). Class-formulae appear as isa
/// bounds, attribute types, and role-literal types.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClassFormula {
    /// The conjuncts.
    pub clauses: Vec<ClassClause>,
}

impl ClassFormula {
    /// The always-true formula `⊤`.
    #[must_use]
    pub fn top() -> ClassFormula {
        ClassFormula::default()
    }

    /// The formula consisting of the single positive literal `C`.
    #[must_use]
    pub fn class(class: ClassId) -> ClassFormula {
        ClassFormula { clauses: vec![ClassClause::new(vec![ClassLiteral::pos(class)])] }
    }

    /// The formula consisting of the single negative literal `¬C`.
    #[must_use]
    pub fn neg_class(class: ClassId) -> ClassFormula {
        ClassFormula { clauses: vec![ClassClause::new(vec![ClassLiteral::neg(class)])] }
    }

    /// Conjunction of two formulae (concatenation of clause lists).
    #[must_use]
    pub fn and(mut self, other: ClassFormula) -> ClassFormula {
        self.clauses.extend(other.clauses);
        self
    }

    /// The single-clause formula `C₁ ∨ … ∨ Cₙ` over positive literals.
    #[must_use]
    pub fn union_of<I: IntoIterator<Item = ClassId>>(classes: I) -> ClassFormula {
        ClassFormula {
            clauses: vec![ClassClause::new(
                classes.into_iter().map(ClassLiteral::pos).collect(),
            )],
        }
    }

    /// Adds one clause.
    pub fn push_clause(&mut self, clause: ClassClause) {
        self.clauses.push(clause);
    }

    /// `true` iff the formula has no clauses (is `⊤`).
    #[must_use]
    pub fn is_top(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Evaluates the formula under the truth assignment induced by a
    /// compound class (the `Φ_C̄` of §3.1): a class is true iff it is a
    /// member of the set.
    #[must_use]
    pub fn realized_by(&self, compound: &BitSet) -> bool {
        self.clauses.iter().all(|clause| {
            clause
                .literals
                .iter()
                .any(|l| l.positive == compound.contains(l.class.index()))
        })
    }

    /// Iterates over every literal of the formula.
    pub fn literals(&self) -> impl Iterator<Item = ClassLiteral> + '_ {
        self.clauses.iter().flat_map(|c| c.literals.iter().copied())
    }

    /// `true` iff every clause consists of a single literal (the formula
    /// is a pure conjunction — "union-free" in the sense of §4.1).
    #[must_use]
    pub fn is_union_free(&self) -> bool {
        self.clauses.iter().all(|c| c.literals.len() == 1)
    }

    /// `true` iff no literal is negative ("negation-free", §4.1).
    #[must_use]
    pub fn is_negation_free(&self) -> bool {
        self.literals().all(|l| l.positive)
    }
}

/// Reference to an attribute or to the inverse of an attribute (`inv A`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AttRef {
    /// The function represented by the attribute itself.
    Direct(AttrId),
    /// The inverse of the function represented by the attribute.
    Inverse(AttrId),
}

impl AttRef {
    /// The underlying attribute symbol.
    #[must_use]
    pub fn attr(self) -> AttrId {
        match self {
            AttRef::Direct(a) | AttRef::Inverse(a) => a,
        }
    }

    /// `true` for `inv A`.
    #[must_use]
    pub fn is_inverse(self) -> bool {
        matches!(self, AttRef::Inverse(_))
    }

    /// The opposite direction over the same attribute.
    #[must_use]
    pub fn flipped(self) -> AttRef {
        match self {
            AttRef::Direct(a) => AttRef::Inverse(a),
            AttRef::Inverse(a) => AttRef::Direct(a),
        }
    }
}

/// One attribute specification `att : (u, v) F` in a class definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrSpec {
    /// The attribute or inverse attribute being constrained.
    pub att: AttRef,
    /// The cardinality bound on the number of fillers per instance.
    pub card: Card,
    /// The type of the fillers.
    pub ty: ClassFormula,
}

/// One relation-participation specification `R[U] : (x, y)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Participation {
    /// The relation.
    pub rel: RelId,
    /// The role through which instances participate.
    pub role: RoleId,
    /// Bounds on the number of tuples per instance.
    pub card: Card,
}

/// A class definition (the `class C isa … attributes … participates_in …
/// endclass` block of §2.2).
#[derive(Debug, Clone, Default)]
pub struct ClassDef {
    /// The isa part: a class-formula every instance must belong to.
    pub isa: ClassFormula,
    /// The attributes part.
    pub attrs: Vec<AttrSpec>,
    /// The participates-in part.
    pub participations: Vec<Participation>,
}

/// A role-literal `(U : F)` inside a relation constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoleLiteral {
    /// The role.
    pub role: RoleId,
    /// The class-formula the role filler must satisfy.
    pub formula: ClassFormula,
}

/// A role-clause `(U₁ : F₁) ∨ … ∨ (Uₛ : Fₛ)` with pairwise-distinct roles.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RoleClause {
    /// The disjuncts.
    pub literals: Vec<RoleLiteral>,
}

impl RoleClause {
    /// Builds a clause from role literals.
    #[must_use]
    pub fn new(literals: Vec<RoleLiteral>) -> RoleClause {
        RoleClause { literals }
    }

    /// `true` iff the clause has exactly one literal.
    #[must_use]
    pub fn is_unit(&self) -> bool {
        self.literals.len() == 1
    }
}

/// A relation definition (the `relation R(U₁, …, U_K) constraints …
/// endrelation` block of §2.2).
#[derive(Debug, Clone, Default)]
pub struct RelDef {
    /// The roles of the relation, in declaration order; `rol(R)`.
    pub roles: Vec<RoleId>,
    /// The role-clauses every tuple must satisfy.
    pub constraints: Vec<RoleClause>,
}

impl RelDef {
    /// The arity `K` of the relation.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.roles.len()
    }

    /// Position of a role within the tuple, if it belongs to the relation.
    #[must_use]
    pub fn role_position(&self, role: RoleId) -> Option<usize> {
        self.roles.iter().position(|&r| r == role)
    }
}

/// A complete CAR schema: interned symbols plus one definition per class
/// (classes mentioned but never defined get the empty definition) and one
/// definition per relation.
#[derive(Debug, Clone)]
pub struct Schema {
    symbols: SymbolTable,
    class_defs: Vec<ClassDef>,
    rel_defs: Vec<RelDef>,
}

impl Schema {
    /// The symbol table of the schema.
    #[must_use]
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Number of class symbols.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.symbols.num_classes()
    }

    /// Number of attribute symbols.
    #[must_use]
    pub fn num_attrs(&self) -> usize {
        self.symbols.num_attrs()
    }

    /// Number of relation symbols.
    #[must_use]
    pub fn num_rels(&self) -> usize {
        self.symbols.num_rels()
    }

    /// Looks up a class by name.
    #[must_use]
    pub fn class_id(&self, name: &str) -> Option<ClassId> {
        self.symbols.class_id(name)
    }

    /// Looks up an attribute by name.
    #[must_use]
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        self.symbols.attr_id(name)
    }

    /// Looks up a relation by name.
    #[must_use]
    pub fn rel_id(&self, name: &str) -> Option<RelId> {
        self.symbols.rel_id(name)
    }

    /// The definition of a class (empty if the class was only mentioned).
    #[must_use]
    pub fn class_def(&self, class: ClassId) -> &ClassDef {
        &self.class_defs[class.index()]
    }

    /// The definition of a relation.
    #[must_use]
    pub fn rel_def(&self, rel: RelId) -> &RelDef {
        &self.rel_defs[rel.index()]
    }

    /// Iterates over `(id, definition)` for all classes.
    pub fn classes(&self) -> impl Iterator<Item = (ClassId, &ClassDef)> {
        self.class_defs
            .iter()
            .enumerate()
            .map(|(i, d)| (ClassId::from_index(i), d))
    }

    /// Iterates over `(id, definition)` for all relations.
    pub fn relations(&self) -> impl Iterator<Item = (RelId, &RelDef)> {
        self.rel_defs
            .iter()
            .enumerate()
            .map(|(i, d)| (RelId::from_index(i), d))
    }

    /// The attribute specification for `att` in the definition of
    /// `class`, if present (§2.2 guarantees at most one).
    #[must_use]
    pub fn attr_spec(&self, class: ClassId, att: AttRef) -> Option<&AttrSpec> {
        self.class_def(class).attrs.iter().find(|s| s.att == att)
    }

    /// `true` iff every class-clause and role-clause in the schema has a
    /// single literal (union-free, §4.1).
    #[must_use]
    pub fn is_union_free(&self) -> bool {
        self.class_defs.iter().all(|d| {
            d.isa.is_union_free() && d.attrs.iter().all(|a| a.ty.is_union_free())
        }) && self.rel_defs.iter().all(|d| {
            d.constraints
                .iter()
                .all(|c| c.is_unit() && c.literals.iter().all(|l| l.formula.is_union_free()))
        })
    }

    /// `true` iff no `¬` appears in any class-formula (negation-free,
    /// §4.1).
    #[must_use]
    pub fn is_negation_free(&self) -> bool {
        self.class_defs.iter().all(|d| {
            d.isa.is_negation_free() && d.attrs.iter().all(|a| a.ty.is_negation_free())
        }) && self.rel_defs.iter().all(|d| {
            d.constraints
                .iter()
                .all(|c| c.literals.iter().all(|l| l.formula.is_negation_free()))
        })
    }

    /// Pretty name of a class.
    #[must_use]
    pub fn class_name(&self, class: ClassId) -> &str {
        self.symbols.class_name(class)
    }
}

/// Errors detected while assembling a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// A cardinality bound has `min > max`.
    InvalidCard {
        /// The offending bound.
        card: Card,
        /// Human-readable location.
        context: String,
    },
    /// The same attribute (or inverse attribute) is specified twice in
    /// one class definition — §2.2 requires at most one occurrence.
    DuplicateAttrSpec {
        /// The class whose definition is malformed.
        class: String,
        /// The attribute name.
        attr: String,
    },
    /// The same class is defined twice.
    DuplicateClassDef {
        /// The class name.
        class: String,
    },
    /// The same relation is defined twice.
    DuplicateRelDef {
        /// The relation name.
        rel: String,
    },
    /// A relation declares the same role twice.
    DuplicateRole {
        /// The relation name.
        rel: String,
        /// The repeated role name.
        role: String,
    },
    /// A role-clause mentions a role not declared by the relation, or a
    /// participation references a role the relation does not have.
    UnknownRole {
        /// The relation name.
        rel: String,
        /// The offending role name.
        role: String,
    },
    /// A role-clause repeats a role (§2.2 assumes pairwise-distinct
    /// roles within a clause).
    RepeatedRoleInClause {
        /// The relation name.
        rel: String,
        /// The repeated role name.
        role: String,
    },
    /// A participation references a relation that was never defined.
    UndefinedRelation {
        /// The relation name.
        rel: String,
    },
    /// A formula references a class that was never declared. Only
    /// reported by strict front-ends (e.g. `parse_schema_strict`); the
    /// core builder and the lenient parser intern such names as fresh
    /// classes of the alphabet.
    UndeclaredClass {
        /// The class name.
        class: String,
    },
    /// A relation has arity zero or one. CAR relations represent
    /// relationships *between* classes; tuples are sets, so a unary
    /// relation can never give an object more than one tuple and the
    /// aggregate system of Theorem 3.3 would be incomplete for it.
    BadArity {
        /// The relation name.
        rel: String,
        /// The declared arity.
        arity: usize,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::InvalidCard { card, context } => {
                write!(f, "invalid cardinality {card} in {context}")
            }
            SchemaError::DuplicateAttrSpec { class, attr } => {
                write!(f, "attribute '{attr}' specified twice in class '{class}'")
            }
            SchemaError::DuplicateClassDef { class } => {
                write!(f, "class '{class}' defined twice")
            }
            SchemaError::DuplicateRelDef { rel } => {
                write!(f, "relation '{rel}' defined twice")
            }
            SchemaError::DuplicateRole { rel, role } => {
                write!(f, "relation '{rel}' declares role '{role}' twice")
            }
            SchemaError::UnknownRole { rel, role } => {
                write!(f, "role '{role}' does not belong to relation '{rel}'")
            }
            SchemaError::RepeatedRoleInClause { rel, role } => {
                write!(f, "role '{role}' repeated within a clause of relation '{rel}'")
            }
            SchemaError::UndefinedRelation { rel } => {
                write!(f, "relation '{rel}' referenced but never defined")
            }
            SchemaError::UndeclaredClass { class } => {
                write!(f, "class '{class}' referenced but never declared")
            }
            SchemaError::BadArity { rel, arity } => {
                write!(f, "relation '{rel}' has arity {arity}; CAR requires arity >= 2")
            }
        }
    }
}

impl std::error::Error for SchemaError {}

/// Incremental schema construction with validation.
///
/// ```
/// use car_core::syntax::{SchemaBuilder, ClassFormula, Card, AttRef};
///
/// let mut b = SchemaBuilder::new();
/// let person = b.class("Person");
/// let professor = b.class("Professor");
/// let teaches = b.attribute("teaches");
/// b.define_class(professor)
///     .isa(ClassFormula::class(person))
///     .attr(AttRef::Direct(teaches), Card::new(1, 2), ClassFormula::top())
///     .finish();
/// let schema = b.build().unwrap();
/// assert_eq!(schema.num_classes(), 2);
/// ```
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    symbols: SymbolTable,
    class_defs: Vec<Option<ClassDef>>,
    rel_defs: Vec<Option<RelDef>>,
    errors: Vec<SchemaError>,
}

impl SchemaBuilder {
    /// An empty builder.
    #[must_use]
    pub fn new() -> SchemaBuilder {
        SchemaBuilder::default()
    }

    /// Interns a class symbol.
    pub fn class(&mut self, name: &str) -> ClassId {
        let id = self.symbols.class(name);
        if id.index() >= self.class_defs.len() {
            self.class_defs.resize(id.index() + 1, None);
        }
        id
    }

    /// Interns an attribute symbol.
    pub fn attribute(&mut self, name: &str) -> AttrId {
        self.symbols.attribute(name)
    }

    /// Interns a role symbol.
    pub fn role(&mut self, name: &str) -> RoleId {
        self.symbols.role(name)
    }

    /// Interns a relation symbol *without* defining it — for forward
    /// references (e.g. a participation parsed before the relation's
    /// definition). A relation that is referenced but never defined via
    /// [`Self::relation`] fails validation with
    /// [`SchemaError::UndefinedRelation`].
    pub fn relation_ref(&mut self, name: &str) -> RelId {
        let id = self.symbols.relation(name);
        if id.index() >= self.rel_defs.len() {
            self.rel_defs.resize(id.index() + 1, None);
        }
        id
    }

    /// Declares a relation with its roles (`relation R(U₁, …, U_K)`).
    pub fn relation<'a, I>(&mut self, name: &str, roles: I) -> RelId
    where
        I: IntoIterator<Item = &'a str>,
    {
        let id = self.symbols.relation(name);
        if id.index() >= self.rel_defs.len() {
            self.rel_defs.resize(id.index() + 1, None);
        }
        let role_ids: Vec<RoleId> = roles.into_iter().map(|r| self.symbols.role(r)).collect();
        if self.rel_defs[id.index()].is_some() {
            self.errors.push(SchemaError::DuplicateRelDef { rel: name.to_owned() });
            return id;
        }
        let mut seen = Vec::new();
        for &r in &role_ids {
            if seen.contains(&r) {
                self.errors.push(SchemaError::DuplicateRole {
                    rel: name.to_owned(),
                    role: self.symbols.role_name(r).to_owned(),
                });
            }
            seen.push(r);
        }
        if role_ids.len() < 2 {
            self.errors.push(SchemaError::BadArity {
                rel: name.to_owned(),
                arity: role_ids.len(),
            });
        }
        self.rel_defs[id.index()] = Some(RelDef { roles: role_ids, constraints: Vec::new() });
        id
    }

    /// Adds a role-clause to a relation's constraints part.
    pub fn relation_constraint(&mut self, rel: RelId, clause: RoleClause) {
        let rel_name = self.symbols.rel_name(rel).to_owned();
        let Some(def) = self.rel_defs.get_mut(rel.index()).and_then(Option::as_mut) else {
            self.errors.push(SchemaError::UndefinedRelation { rel: rel_name });
            return;
        };
        let roles = def.roles.clone();
        let mut seen = Vec::new();
        for lit in &clause.literals {
            if !roles.contains(&lit.role) {
                self.errors.push(SchemaError::UnknownRole {
                    rel: rel_name.clone(),
                    role: self.symbols.role_name(lit.role).to_owned(),
                });
            }
            if seen.contains(&lit.role) {
                self.errors.push(SchemaError::RepeatedRoleInClause {
                    rel: rel_name.clone(),
                    role: self.symbols.role_name(lit.role).to_owned(),
                });
            }
            seen.push(lit.role);
        }
        self.rel_defs[rel.index()]
            .as_mut()
            .expect("checked above")
            .constraints
            .push(clause);
    }

    /// Starts the definition of a class; finish with
    /// [`ClassDefBuilder::finish`].
    pub fn define_class(&mut self, class: ClassId) -> ClassDefBuilder<'_> {
        ClassDefBuilder { builder: self, class, def: ClassDef::default() }
    }

    /// Validates everything and produces the schema.
    ///
    /// # Errors
    /// Returns all accumulated [`SchemaError`]s.
    pub fn build(mut self) -> Result<Schema, Vec<SchemaError>> {
        // Classes interned after the last define_class call need slots.
        self.class_defs.resize(self.symbols.num_classes(), None);
        self.rel_defs.resize(self.symbols.num_rels(), None);

        // Relations referenced (via relation_ref) but never defined.
        for (i, def) in self.rel_defs.iter().enumerate() {
            if def.is_none() {
                self.errors.push(SchemaError::UndefinedRelation {
                    rel: self.symbols.rel_name(RelId::from_index(i)).to_owned(),
                });
            }
        }

        if !self.errors.is_empty() {
            return Err(self.errors);
        }
        Ok(Schema {
            symbols: self.symbols,
            class_defs: self
                .class_defs
                .into_iter()
                .map(Option::unwrap_or_default)
                .collect(),
            rel_defs: self.rel_defs.into_iter().map(Option::unwrap_or_default).collect(),
        })
    }
}

/// Builder for one class definition; created by
/// [`SchemaBuilder::define_class`].
pub struct ClassDefBuilder<'b> {
    builder: &'b mut SchemaBuilder,
    class: ClassId,
    def: ClassDef,
}

impl ClassDefBuilder<'_> {
    /// Interns a role symbol through the underlying schema builder
    /// (convenient while a class definition is in progress).
    pub fn builder_role(&mut self, name: &str) -> RoleId {
        self.builder.symbols.role(name)
    }

    /// Adds a conjunct to the isa part.
    #[must_use]
    pub fn isa(mut self, formula: ClassFormula) -> Self {
        self.def.isa = std::mem::take(&mut self.def.isa).and(formula);
        self
    }

    /// Adds an attribute specification `att : card ty`.
    #[must_use]
    pub fn attr(mut self, att: AttRef, card: Card, ty: ClassFormula) -> Self {
        let class_name = self.builder.symbols.class_name(self.class).to_owned();
        if !card.is_valid() {
            self.builder.errors.push(SchemaError::InvalidCard {
                card,
                context: format!("attribute specification of class '{class_name}'"),
            });
        }
        if self.def.attrs.iter().any(|s| s.att == att) {
            self.builder.errors.push(SchemaError::DuplicateAttrSpec {
                class: class_name,
                attr: self.builder.symbols.attr_name(att.attr()).to_owned(),
            });
        }
        self.def.attrs.push(AttrSpec { att, card, ty });
        self
    }

    /// Adds a participation specification `R[U] : card`.
    #[must_use]
    pub fn participates(mut self, rel: RelId, role: RoleId, card: Card) -> Self {
        let class_name = self.builder.symbols.class_name(self.class).to_owned();
        let rel_name = self.builder.symbols.rel_name(rel).to_owned();
        if !card.is_valid() {
            self.builder.errors.push(SchemaError::InvalidCard {
                card,
                context: format!("participation of class '{class_name}' in '{rel_name}'"),
            });
        }
        match self.builder.rel_defs.get(rel.index()).and_then(Option::as_ref) {
            None => {
                self.builder
                    .errors
                    .push(SchemaError::UndefinedRelation { rel: rel_name });
            }
            Some(def) if def.role_position(role).is_none() => {
                self.builder.errors.push(SchemaError::UnknownRole {
                    rel: rel_name,
                    role: self.builder.symbols.role_name(role).to_owned(),
                });
            }
            Some(_) => {}
        }
        self.def.participations.push(Participation { rel, role, card });
        self
    }

    /// Completes the class definition.
    pub fn finish(self) {
        let slot = &mut self.builder.class_defs[self.class.index()];
        if slot.is_some() {
            self.builder.errors.push(SchemaError::DuplicateClassDef {
                class: self.builder.symbols.class_name(self.class).to_owned(),
            });
            return;
        }
        *slot = Some(self.def);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn card_validity_and_merge() {
        assert!(Card::new(1, 3).is_valid());
        assert!(!Card::new(3, 1).is_valid());
        assert!(Card::at_least(100).is_valid());
        assert!(Card::new(2, 2).contains(2));
        assert!(!Card::new(2, 2).contains(3));
        assert!(Card::at_least(1).contains(u64::MAX));
        assert_eq!(
            Card::new(1, 5).merge(&Card::new(2, 10)),
            Card::new(2, 5)
        );
        assert_eq!(
            Card::at_least(3).merge(&Card::new(0, 4)),
            Card::new(3, 4)
        );
        assert_eq!(
            Card::at_least(1).merge(&Card::at_least(2)),
            Card::at_least(2)
        );
        assert_eq!(Card::exactly(1), Card::new(1, 1));
        assert_eq!(Card::any(), Card::at_least(0));
        assert_eq!(Card::new(5, 7).to_string(), "(5, 7)");
        assert_eq!(Card::at_least(2).to_string(), "(2, *)");
    }

    #[test]
    fn formula_realization() {
        let c0 = ClassId::from_index(0);
        let c1 = ClassId::from_index(1);
        let c2 = ClassId::from_index(2);
        // (C0 ∨ ¬C1) ∧ C2
        let f = ClassFormula {
            clauses: vec![
                ClassClause::new(vec![ClassLiteral::pos(c0), ClassLiteral::neg(c1)]),
                ClassClause::new(vec![ClassLiteral::pos(c2)]),
            ],
        };
        assert!(f.realized_by(&BitSet::from_iter(3, [0, 2])));
        assert!(f.realized_by(&BitSet::from_iter(3, [2])));
        assert!(!f.realized_by(&BitSet::from_iter(3, [1, 2])));
        assert!(!f.realized_by(&BitSet::from_iter(3, [0])));
        assert!(ClassFormula::top().realized_by(&BitSet::new(3)));
        assert!(!f.is_union_free());
        assert!(!f.is_negation_free());
        assert!(ClassFormula::class(c0).is_union_free());
        assert!(ClassFormula::class(c0).is_negation_free());
        assert!(ClassFormula::union_of([c0, c1]).is_negation_free());
        assert!(!ClassFormula::union_of([c0, c1]).is_union_free());
    }

    #[test]
    fn attref_helpers() {
        let a = AttrId::from_index(4);
        assert_eq!(AttRef::Direct(a).attr(), a);
        assert_eq!(AttRef::Inverse(a).attr(), a);
        assert!(AttRef::Inverse(a).is_inverse());
        assert!(!AttRef::Direct(a).is_inverse());
        assert_eq!(AttRef::Direct(a).flipped(), AttRef::Inverse(a));
        assert_eq!(AttRef::Inverse(a).flipped(), AttRef::Direct(a));
    }

    fn build_university() -> Schema {
        let mut b = SchemaBuilder::new();
        let person = b.class("Person");
        let professor = b.class("Professor");
        let student = b.class("Student");
        let teaches = b.attribute("teaches");
        let enrollment = b.relation("Enrollment", ["enrolls", "enrolled_in"]);
        let enrolls = b.role("enrolls");
        b.define_class(professor)
            .isa(ClassFormula::class(person))
            .attr(AttRef::Direct(teaches), Card::new(1, 2), ClassFormula::top())
            .finish();
        b.define_class(student)
            .isa(ClassFormula::class(person).and(ClassFormula::neg_class(professor)))
            .participates(enrollment, enrolls, Card::new(1, 6))
            .finish();
        b.relation_constraint(
            enrollment,
            RoleClause::new(vec![RoleLiteral {
                role: enrolls,
                formula: ClassFormula::class(student),
            }]),
        );
        b.build().expect("valid schema")
    }

    #[test]
    fn builder_constructs_valid_schema() {
        let s = build_university();
        assert_eq!(s.num_classes(), 3);
        assert_eq!(s.num_attrs(), 1);
        assert_eq!(s.num_rels(), 1);
        let student = s.class_id("Student").unwrap();
        let def = s.class_def(student);
        assert_eq!(def.isa.clauses.len(), 2);
        assert_eq!(def.participations.len(), 1);
        let person = s.class_id("Person").unwrap();
        assert!(s.class_def(person).isa.is_top()); // undefined class
        let rel = s.rel_id("Enrollment").unwrap();
        assert_eq!(s.rel_def(rel).arity(), 2);
        assert_eq!(s.rel_def(rel).constraints.len(), 1);
        // Every clause is a single literal: union-free — but the literal
        // ¬Professor makes the schema not negation-free.
        assert!(s.is_union_free());
        assert!(!s.is_negation_free());
        let professor = s.class_id("Professor").unwrap();
        let spec = s
            .attr_spec(professor, AttRef::Direct(s.attr_id("teaches").unwrap()))
            .unwrap();
        assert_eq!(spec.card, Card::new(1, 2));
    }

    #[test]
    fn union_free_negation_free_classification() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let c = b.class("B");
        b.define_class(a).isa(ClassFormula::class(c)).finish();
        let s = b.build().unwrap();
        assert!(s.is_union_free());
        assert!(s.is_negation_free());
    }

    #[test]
    fn duplicate_attr_spec_is_rejected() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let att = b.attribute("f");
        b.define_class(a)
            .attr(AttRef::Direct(att), Card::any(), ClassFormula::top())
            .attr(AttRef::Direct(att), Card::any(), ClassFormula::top())
            .finish();
        let errs = b.build().unwrap_err();
        assert!(matches!(errs[0], SchemaError::DuplicateAttrSpec { .. }));
    }

    #[test]
    fn direct_and_inverse_of_same_attr_are_distinct_specs() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let att = b.attribute("f");
        b.define_class(a)
            .attr(AttRef::Direct(att), Card::any(), ClassFormula::top())
            .attr(AttRef::Inverse(att), Card::any(), ClassFormula::top())
            .finish();
        assert!(b.build().is_ok());
    }

    #[test]
    fn invalid_card_is_rejected() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let att = b.attribute("f");
        b.define_class(a)
            .attr(AttRef::Direct(att), Card::new(3, 1), ClassFormula::top())
            .finish();
        let errs = b.build().unwrap_err();
        assert!(matches!(errs[0], SchemaError::InvalidCard { .. }));
    }

    #[test]
    fn duplicate_class_definition_is_rejected() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        b.define_class(a).finish();
        b.define_class(a).finish();
        let errs = b.build().unwrap_err();
        assert!(matches!(errs[0], SchemaError::DuplicateClassDef { .. }));
    }

    #[test]
    fn relation_validation() {
        let mut b = SchemaBuilder::new();
        b.relation("R", ["u", "u"]);
        let errs = b.build().unwrap_err();
        assert!(matches!(errs[0], SchemaError::DuplicateRole { .. }));

        let mut b = SchemaBuilder::new();
        b.relation("R", ["only"]);
        let errs = b.build().unwrap_err();
        assert!(matches!(errs[0], SchemaError::BadArity { arity: 1, .. }));

        let mut b = SchemaBuilder::new();
        let r = b.relation("R", ["u", "v"]);
        let w = b.role("w");
        b.relation_constraint(
            r,
            RoleClause::new(vec![RoleLiteral { role: w, formula: ClassFormula::top() }]),
        );
        let errs = b.build().unwrap_err();
        assert!(matches!(errs[0], SchemaError::UnknownRole { .. }));
    }

    #[test]
    fn participation_validation() {
        let mut b = SchemaBuilder::new();
        let a = b.class("A");
        let r = b.relation("R", ["u", "v"]);
        let w = b.role("w");
        b.define_class(a).participates(r, w, Card::any()).finish();
        let errs = b.build().unwrap_err();
        assert!(matches!(errs[0], SchemaError::UnknownRole { .. }));
    }

    #[test]
    fn repeated_role_in_clause_is_rejected() {
        let mut b = SchemaBuilder::new();
        let r = b.relation("R", ["u", "v"]);
        let u = b.role("u");
        b.relation_constraint(
            r,
            RoleClause::new(vec![
                RoleLiteral { role: u, formula: ClassFormula::top() },
                RoleLiteral { role: u, formula: ClassFormula::top() },
            ]),
        );
        let errs = b.build().unwrap_err();
        assert!(matches!(errs[0], SchemaError::RepeatedRoleInClause { .. }));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = SchemaError::DuplicateAttrSpec { class: "A".into(), attr: "f".into() };
        assert!(e.to_string().contains('A') && e.to_string().contains('f'));
        let e = SchemaError::BadArity { rel: "R".into(), arity: 0 };
        assert!(e.to_string().contains("arity 0"));
    }
}
