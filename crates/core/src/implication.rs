//! Logical implication over a CAR schema.
//!
//! The paper (§3) notes that the class-satisfiability method "can also be
//! extended to solve the logical implication problem" but omits the
//! construction for space. This module supplies it, through the notion of
//! *realizable type*: the compound classes surviving the acceptability
//! fixpoint of [`crate::satisfiability`] are exactly the class-membership
//! types that are nonempty in some model of the schema. Hence:
//!
//! * `S ⊨ C isa F` iff every realizable compound class containing `C`
//!   realizes `F` — a counterexample type, being realizable, yields a
//!   model with an object in `C` but outside `F`, and vice versa;
//! * `C₁`, `C₂` disjoint in every model iff no realizable compound class
//!   contains both;
//! * subsumption and equivalence reduce to the above.
//!
//! **Completeness caveat**: these reductions are complete only when the
//! expansion was built from *all* consistent compound classes (the naive
//! or SAT strategies). The §4.3 preselection strategy deliberately drops
//! realizable-but-irrelevant types (Theorem 4.6 preserves satisfiability
//! answers, not implication answers), so [`crate::reasoner::Reasoner`]
//! always runs implication queries on a complete expansion.

use crate::budget::{Budget, ResourceExhausted};
use crate::expansion::{CcId, Expansion};
use crate::ids::ClassId;
use crate::satisfiability::SatAnalysis;
use crate::syntax::{Card, ClassFormula, Schema};

/// The per-class lists of realizable compound classes containing each
/// class, in compound-class order — the iteration every implication
/// query starts from. Computing it once and sharing it across queries
/// (see [`Implications::with_class_index`]) turns the per-query scan
/// over all compound classes into a direct lookup.
#[must_use]
pub fn realizable_class_index(
    num_classes: usize,
    expansion: &Expansion,
    analysis: &SatAnalysis,
) -> Vec<Vec<CcId>> {
    let mut index: Vec<Vec<CcId>> = vec![Vec::new(); num_classes];
    for cc in expansion.cc_ids().filter(|&cc| analysis.is_realizable(cc)) {
        for class in expansion.compound_class(cc).iter() {
            index[class].push(cc);
        }
    }
    index
}

/// Implication queries over a completed satisfiability analysis.
///
/// Borrow-only view; construct one from the expansion and analysis the
/// reasoner already computed.
#[derive(Debug, Clone, Copy)]
pub struct Implications<'a> {
    expansion: &'a Expansion,
    analysis: &'a SatAnalysis,
    /// Precomputed [`realizable_class_index`], when the caller keeps one.
    class_index: Option<&'a [Vec<CcId>]>,
}

impl<'a> Implications<'a> {
    /// Creates the query view.
    #[must_use]
    pub fn new(expansion: &'a Expansion, analysis: &'a SatAnalysis) -> Implications<'a> {
        Implications { expansion, analysis, class_index: None }
    }

    /// Creates the query view backed by a precomputed
    /// [`realizable_class_index`] (built from the same expansion and
    /// analysis), replacing the per-query compound-class scans with
    /// index lookups.
    #[must_use]
    pub fn with_class_index(
        expansion: &'a Expansion,
        analysis: &'a SatAnalysis,
        class_index: &'a [Vec<CcId>],
    ) -> Implications<'a> {
        Implications { expansion, analysis, class_index: Some(class_index) }
    }

    /// The realizable compound classes containing `class`, in
    /// compound-class order.
    fn realizable_containing(&self, class: ClassId) -> Box<dyn Iterator<Item = CcId> + 'a> {
        match self.class_index {
            Some(index) => Box::new(index[class.index()].iter().copied()),
            None => {
                let analysis = self.analysis;
                Box::new(
                    self.expansion
                        .ccs_containing(class)
                        .filter(move |&cc| analysis.is_realizable(cc)),
                )
            }
        }
    }

    /// `S ⊨ class isa formula`: does every model interpret `class` inside
    /// the formula's extension?
    #[must_use]
    pub fn implies_isa(&self, class: ClassId, formula: &ClassFormula) -> bool {
        self.realizable_containing(class)
            .all(|cc| formula.realized_by(self.expansion.compound_class(cc)))
    }

    /// Subsumption: `sub ⊑ sup` in every model.
    #[must_use]
    pub fn subsumes(&self, sup: ClassId, sub: ClassId) -> bool {
        self.implies_isa(sub, &ClassFormula::class(sup))
    }

    /// Disjointness: `c1 ⊓ c2 = ∅` in every model.
    #[must_use]
    pub fn disjoint(&self, c1: ClassId, c2: ClassId) -> bool {
        !self
            .realizable_containing(c1)
            .any(|cc| self.expansion.compound_class(cc).contains(c2.index()))
    }

    /// Equivalence: mutual subsumption.
    #[must_use]
    pub fn equivalent(&self, c1: ClassId, c2: ClassId) -> bool {
        self.subsumes(c1, c2) && self.subsumes(c2, c1)
    }

    /// Class satisfiability (Theorem 3.3) via the same analysis.
    #[must_use]
    pub fn satisfiable(&self, class: ClassId) -> bool {
        self.analysis.class_satisfiable(self.expansion, class)
    }

    /// All classes that are necessarily empty in every model.
    #[must_use]
    pub fn unsatisfiable_classes(&self, schema: &Schema) -> Vec<ClassId> {
        schema
            .symbols()
            .class_ids()
            .filter(|&c| !self.satisfiable(c))
            .collect()
    }

    /// Exact filler-type implication: `true` iff in every model, every
    /// `att`-filler of every instance of `class` satisfies `formula`.
    ///
    /// A filler of type `C̄₂` is possible for a source of type `C̄₁` iff
    /// either the link type is materialized in the expansion (some
    /// endpoint carries a nontrivial bound) and survives the
    /// acceptability fixpoint, or the link type was omitted as
    /// count-unconstrained — in which case a single edge can always be
    /// added between realizable endpoints (including a filler belonging
    /// to *no* class), subject only to the type-consistency condition of
    /// §3.1. Complete, unlike the cardinality hull of
    /// [`Self::implied_att_card`].
    #[must_use]
    pub fn implies_filler_type(
        &self,
        schema: &Schema,
        class: ClassId,
        att: crate::syntax::AttRef,
        formula: &ClassFormula,
    ) -> bool {
        use crate::expansion::{compound_attr_consistent, merged_att_card};
        use crate::syntax::AttRef;
        let nontrivial =
            |card: &crate::syntax::Card| card.min > 0 || card.max.is_some();
        let witness = self.analysis.witness();
        let n_cc = self.expansion.compound_classes().len();
        let attr = att.attr();
        let empty = crate::bitset::BitSet::new(schema.num_classes());

        for src in self.realizable_containing(class) {
            let src_bits = self.expansion.compound_class(src);
            let Some(src_card) = merged_att_card(schema, src_bits, att) else {
                // No specification at all: fillers are arbitrary objects.
                return formula.is_top();
            };

            // Materialized link types with this end: realizable ones must
            // satisfy the formula on the other end. For the inverse
            // direction the target index only covers singleton links, so
            // scan all links of the attribute — grouped targets may
            // contain this compound class too.
            match att {
                AttRef::Direct(_) => {
                    for &i in self.expansion.attrs_with_source(attr, src) {
                        if !witness[n_cc + i].is_positive() {
                            continue; // dead link type: never realized
                        }
                        let ca = &self.expansion.compound_attrs()[i];
                        // Grouped targets: edges may go into any live
                        // member, so each must satisfy the formula.
                        for &t in &ca.targets {
                            if self.analysis.is_realizable(t)
                                && !formula
                                    .realized_by(self.expansion.compound_class(t))
                            {
                                return false;
                            }
                        }
                    }
                }
                AttRef::Inverse(_) => {
                    for (i, ca) in self.expansion.compound_attrs().iter().enumerate() {
                        if ca.attr != attr
                            || !witness[n_cc + i].is_positive()
                            || !ca.targets.contains(&src)
                        {
                            continue;
                        }
                        if !formula
                            .realized_by(self.expansion.compound_class(ca.source))
                        {
                            return false;
                        }
                    }
                }
            }

            // Omitted link types: both ends count-unconstrained. Such an
            // edge can be added to any model realizing the endpoints, so
            // type-consistency alone decides realizability.
            if nontrivial(&src_card) {
                continue; // every pair with this end was materialized
            }
            let consistent_pair = |other: &crate::bitset::BitSet| match att {
                AttRef::Direct(_) => compound_attr_consistent(schema, attr, src_bits, other),
                AttRef::Inverse(_) => compound_attr_consistent(schema, attr, other, src_bits),
            };
            // The filler may belong to no class at all.
            if consistent_pair(&empty) && !formula.realized_by(&empty) {
                return false;
            }
            for other in self.expansion.cc_ids().filter(|&cc| self.analysis.is_realizable(cc)) {
                let other_bits = self.expansion.compound_class(other);
                let other_end_card = merged_att_card(schema, other_bits, att.flipped());
                if other_end_card.as_ref().is_some_and(nontrivial) {
                    continue; // that pair was materialized and scanned above
                }
                if consistent_pair(other_bits) && !formula.realized_by(other_bits) {
                    return false;
                }
            }
        }
        true
    }

    /// A sound implied cardinality bound for `att` on the instances of
    /// `class`: in every model, every instance of `class` has an
    /// `att`-filler count within the returned bound. Combines, over the
    /// realizable types containing `class`, the merged (`umax`/`vmin`)
    /// bounds those types impose — so it is always at least as tight as
    /// the constraint syntactically attached to `class`, and often
    /// strictly tighter (inherited constraints narrow it). Returns
    /// `None` when `class` is unsatisfiable (every bound holds
    /// vacuously) or when some realizable type leaves `att` completely
    /// unconstrained.
    #[must_use]
    pub fn implied_att_card(
        &self,
        schema: &Schema,
        class: ClassId,
        att: crate::syntax::AttRef,
    ) -> Option<Card> {
        let mut overall: Option<Card> = None;
        for cc in self.realizable_containing(class) {
            let merged =
                crate::expansion::merged_att_card(schema, self.expansion.compound_class(cc), att)?;
            overall = Some(match overall {
                None => merged,
                // Union of intervals (hull): instances may live in any
                // realizable type.
                Some(acc) => Card {
                    min: acc.min.min(merged.min),
                    max: match (acc.max, merged.max) {
                        (Some(a), Some(b)) => Some(a.max(b)),
                        _ => None,
                    },
                },
            });
        }
        overall
    }

    /// The participation analogue of [`Self::implied_att_card`].
    #[must_use]
    pub fn implied_part_card(
        &self,
        schema: &Schema,
        class: ClassId,
        rel: crate::ids::RelId,
        role_pos: usize,
    ) -> Option<Card> {
        let mut overall: Option<Card> = None;
        for cc in self.realizable_containing(class) {
            let merged = crate::expansion::merged_part_card(
                schema,
                self.expansion.compound_class(cc),
                rel,
                role_pos,
            )?;
            overall = Some(match overall {
                None => merged,
                Some(acc) => Card {
                    min: acc.min.min(merged.min),
                    max: match (acc.max, merged.max) {
                        (Some(a), Some(b)) => Some(a.max(b)),
                        _ => None,
                    },
                },
            });
        }
        overall
    }

    /// The implied subsumption hierarchy: all pairs `(sup, sub)` with
    /// `sub ⊑ sup`, `sub` satisfiable and `sub ≠ sup`. (Unsatisfiable
    /// classes are subsumed by everything and excluded as noise.)
    #[must_use]
    pub fn classification(&self, schema: &Schema) -> Vec<(ClassId, ClassId)> {
        self.classification_governed(schema, &Budget::unbounded())
            .expect("unbounded budget cannot exhaust")
    }

    /// [`Self::classification`] under a resource [`Budget`]: one
    /// checkpoint per candidate `(sup, sub)` pair of the quadratic sweep.
    ///
    /// # Errors
    /// [`ResourceExhausted`] as soon as the budget runs out.
    pub fn classification_governed(
        &self,
        schema: &Schema,
        budget: &Budget,
    ) -> Result<Vec<(ClassId, ClassId)>, ResourceExhausted> {
        let ids: Vec<ClassId> = schema.symbols().class_ids().collect();
        let mut out = Vec::new();
        for &sub in &ids {
            budget.checkpoint()?;
            if !self.satisfiable(sub) {
                continue;
            }
            for &sup in &ids {
                budget.checkpoint()?;
                if sup != sub && self.subsumes(sup, sub) {
                    out.push((sup, sub));
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate;
    use crate::expansion::ExpansionLimits;
    use crate::satisfiability::SatAnalysis;
    use crate::syntax::{AttRef, Card, ClassFormula, SchemaBuilder};

    struct Fixture {
        schema: Schema,
        expansion: Expansion,
        analysis: SatAnalysis,
    }

    impl Fixture {
        fn new(build: impl FnOnce(&mut SchemaBuilder)) -> Fixture {
            let mut b = SchemaBuilder::new();
            build(&mut b);
            let schema = b.build().unwrap();
            let ccs = enumerate::naive(&schema, usize::MAX).unwrap();
            let expansion =
                Expansion::build(&schema, ccs, &ExpansionLimits::default()).unwrap();
            let analysis = SatAnalysis::run(&expansion);
            Fixture { schema, expansion, analysis }
        }

        fn imp(&self) -> Implications<'_> {
            Implications::new(&self.expansion, &self.analysis)
        }

        fn id(&self, name: &str) -> ClassId {
            self.schema.class_id(name).unwrap()
        }
    }

    #[test]
    fn explicit_isa_is_implied() {
        let f = Fixture::new(|b| {
            let person = b.class("Person");
            let student = b.class("Student");
            b.define_class(student).isa(ClassFormula::class(person)).finish();
        });
        assert!(f.imp().subsumes(f.id("Person"), f.id("Student")));
        assert!(!f.imp().subsumes(f.id("Student"), f.id("Person")));
    }

    #[test]
    fn transitive_subsumption_is_implied() {
        let f = Fixture::new(|b| {
            let a = b.class("A");
            let bb = b.class("B");
            let c = b.class("C");
            b.define_class(bb).isa(ClassFormula::class(a)).finish();
            b.define_class(c).isa(ClassFormula::class(bb)).finish();
        });
        assert!(f.imp().subsumes(f.id("A"), f.id("C")));
    }

    #[test]
    fn explicit_disjointness_is_implied() {
        let f = Fixture::new(|b| {
            let person = b.class("Person");
            let course = b.class("Course");
            b.define_class(course).isa(ClassFormula::neg_class(person)).finish();
        });
        assert!(f.imp().disjoint(f.id("Person"), f.id("Course")));
        assert!(f.imp().disjoint(f.id("Course"), f.id("Person")));
        assert!(!f.imp().disjoint(f.id("Person"), f.id("Person")));
    }

    #[test]
    fn unrelated_classes_are_not_disjoint_or_subsumed() {
        let f = Fixture::new(|b| {
            b.class("A");
            b.class("B");
        });
        assert!(!f.imp().disjoint(f.id("A"), f.id("B")));
        assert!(!f.imp().subsumes(f.id("A"), f.id("B")));
        assert!(!f.imp().equivalent(f.id("A"), f.id("B")));
    }

    #[test]
    fn mutual_isa_gives_equivalence() {
        let f = Fixture::new(|b| {
            let a = b.class("A");
            let bb = b.class("B");
            b.define_class(a).isa(ClassFormula::class(bb)).finish();
            b.define_class(bb).isa(ClassFormula::class(a)).finish();
        });
        assert!(f.imp().equivalent(f.id("A"), f.id("B")));
    }

    /// Implication that only follows through cardinality reasoning: B's
    /// instances each need an f-filler in the unsatisfiable class; B is
    /// empty, hence subsumed by anything and disjoint from everything.
    #[test]
    fn cardinality_driven_emptiness_propagates_to_implications() {
        let f = Fixture::new(|b| {
            let a = b.class("A");
            let bb = b.class("B");
            let dead = b.class("Dead");
            let att = b.attribute("f");
            b.define_class(dead).isa(ClassFormula::neg_class(dead)).finish();
            b.define_class(bb)
                .attr(AttRef::Direct(att), Card::at_least(1), ClassFormula::class(dead))
                .finish();
            let _ = a;
        });
        assert!(!f.imp().satisfiable(f.id("B")));
        assert!(f.imp().subsumes(f.id("A"), f.id("B")));
        assert!(f.imp().disjoint(f.id("B"), f.id("A")));
        assert_eq!(
            f.imp().unsatisfiable_classes(&f.schema),
            vec![f.id("B"), f.id("Dead")]
        );
    }

    /// A non-syntactic implication: C isa A ∨ B where both A and B are
    /// subclasses of S — so C ⊑ S even though S never appears in C's
    /// definition.
    #[test]
    fn implied_isa_through_union() {
        let f = Fixture::new(|b| {
            let s = b.class("S");
            let a = b.class("A");
            let bb = b.class("B");
            let c = b.class("C");
            b.define_class(a).isa(ClassFormula::class(s)).finish();
            b.define_class(bb).isa(ClassFormula::class(s)).finish();
            b.define_class(c).isa(ClassFormula::union_of([a, bb])).finish();
        });
        assert!(f.imp().subsumes(f.id("S"), f.id("C")));
        assert!(f.imp().implies_isa(f.id("C"), &ClassFormula::class(f.id("S"))));
    }

    #[test]
    fn implies_isa_handles_complex_formulas() {
        let f = Fixture::new(|b| {
            let a = b.class("A");
            let bb = b.class("B");
            let c = b.class("C");
            b.define_class(c)
                .isa(ClassFormula::class(a).and(ClassFormula::neg_class(bb)))
                .finish();
        });
        let target = ClassFormula::class(f.id("A")).and(ClassFormula::neg_class(f.id("B")));
        assert!(f.imp().implies_isa(f.id("C"), &target));
        let too_strong = ClassFormula::class(f.id("A")).and(ClassFormula::class(f.id("B")));
        assert!(!f.imp().implies_isa(f.id("C"), &too_strong));
    }

    #[test]
    fn filler_type_implication_is_exact() {
        use crate::syntax::AttRef;
        let f = Fixture::new(|b| {
            let course = b.class("Course");
            let person = b.class("Person");
            let professor = b.class("Professor");
            let grad = b.class("Grad");
            let taught_by = b.attribute("taught_by");
            b.define_class(professor).isa(ClassFormula::class(person)).finish();
            b.define_class(grad).isa(ClassFormula::class(person)).finish();
            b.define_class(course)
                .isa(ClassFormula::neg_class(person))
                .attr(
                    AttRef::Direct(taught_by),
                    Card::exactly(1),
                    ClassFormula::union_of([professor, grad]),
                )
                .finish();
        });
        let taught_by = f.schema.attr_id("taught_by").unwrap();
        let imp = f.imp();
        // Fillers are professors-or-grads, hence persons — an implied
        // type that is NOT syntactically attached to Course.
        assert!(imp.implies_filler_type(
            &f.schema,
            f.id("Course"),
            AttRef::Direct(taught_by),
            &ClassFormula::class(f.id("Person")),
        ));
        // But not necessarily professors.
        assert!(!imp.implies_filler_type(
            &f.schema,
            f.id("Course"),
            AttRef::Direct(taught_by),
            &ClassFormula::class(f.id("Professor")),
        ));
        // A class without any taught_by spec implies only ⊤.
        assert!(imp.implies_filler_type(
            &f.schema,
            f.id("Person"),
            AttRef::Direct(taught_by),
            &ClassFormula::top(),
        ));
        assert!(!imp.implies_filler_type(
            &f.schema,
            f.id("Person"),
            AttRef::Direct(taught_by),
            &ClassFormula::class(f.id("Person")),
        ));
    }

    /// Regression: inverse-direction queries must see link types whose
    /// *grouped* targets contain the queried class (groups are not
    /// target-indexed).
    #[test]
    fn inverse_filler_type_sees_grouped_links() {
        use crate::syntax::AttRef;
        let f = Fixture::new(|b| {
            let a = b.class("A");
            let bb = b.class("B");
            let x = b.class("X");
            let att = b.attribute("f");
            // A: nontrivially bounded direct spec, untyped — its targets
            // (everything) are grouped.
            b.define_class(a)
                .isa(ClassFormula::neg_class(bb))
                .attr(AttRef::Direct(att), Card::exactly(1), ClassFormula::top())
                .finish();
            // B: trivially bounded inverse spec — predecessors may be
            // A-objects, so "all my predecessors are X" must NOT hold.
            b.define_class(bb)
                .attr(AttRef::Inverse(att), Card::any(), ClassFormula::top())
                .finish();
            let _ = x;
        });
        let att = f.schema.attr_id("f").unwrap();
        let imp = f.imp();
        assert!(!imp.implies_filler_type(
            &f.schema,
            f.id("B"),
            AttRef::Inverse(att),
            &ClassFormula::class(f.id("X")),
        ));
        // The trivial formula is of course implied.
        assert!(imp.implies_filler_type(
            &f.schema,
            f.id("B"),
            AttRef::Inverse(att),
            &ClassFormula::top(),
        ));
    }

    #[test]
    fn implied_att_cards_tighten_through_inheritance() {
        use crate::syntax::AttRef;
        let f = Fixture::new(|b| {
            let person = b.class("Person");
            let professor = b.class("Professor");
            let busy = b.class("Busy_Professor");
            let teaches = b.attribute("teaches");
            b.define_class(professor)
                .isa(ClassFormula::class(person))
                .attr(AttRef::Direct(teaches), Card::new(0, 5), ClassFormula::top())
                .finish();
            b.define_class(busy)
                .isa(ClassFormula::class(professor))
                .attr(AttRef::Direct(teaches), Card::new(3, 9), ClassFormula::top())
                .finish();
        });
        let teaches = f.schema.attr_id("teaches").unwrap();
        let imp = f.imp();
        // Busy professors: the merged bound (3, 5) in every realizable
        // type containing them.
        assert_eq!(
            imp.implied_att_card(&f.schema, f.id("Busy_Professor"), AttRef::Direct(teaches)),
            Some(Card::new(3, 5))
        );
        // Plain professors may or may not be busy: hull is (0, 5).
        assert_eq!(
            imp.implied_att_card(&f.schema, f.id("Professor"), AttRef::Direct(teaches)),
            Some(Card::new(0, 5))
        );
        // Persons need not be professors at all: unconstrained types
        // exist, so no finite implied bound.
        assert_eq!(
            imp.implied_att_card(&f.schema, f.id("Person"), AttRef::Direct(teaches)),
            None
        );
    }

    #[test]
    fn implied_part_cards_merge_participations() {
        let f = Fixture::new(|b| {
            let student = b.class("Student");
            let grad = b.class("Grad");
            let enrollment = b.relation("E", ["enrolls", "enrolled_in"]);
            let enrolls = b.role("enrolls");
            b.define_class(student)
                .participates(enrollment, enrolls, Card::new(1, 6))
                .finish();
            b.define_class(grad)
                .isa(ClassFormula::class(student))
                .participates(enrollment, enrolls, Card::new(2, 9))
                .finish();
        });
        let rel = f.schema.rel_id("E").unwrap();
        let imp = f.imp();
        assert_eq!(
            imp.implied_part_card(&f.schema, f.id("Grad"), rel, 0),
            Some(Card::new(2, 6))
        );
        assert_eq!(
            imp.implied_part_card(&f.schema, f.id("Student"), rel, 0),
            Some(Card::new(1, 6))
        );
    }

    #[test]
    fn class_index_view_agrees_with_scanning_view() {
        let f = Fixture::new(|b| {
            let person = b.class("Person");
            let professor = b.class("Professor");
            let course = b.class("Course");
            let dead = b.class("Dead");
            let taught_by = b.attribute("taught_by");
            b.define_class(professor).isa(ClassFormula::class(person)).finish();
            b.define_class(dead).isa(ClassFormula::neg_class(dead)).finish();
            b.define_class(course)
                .isa(ClassFormula::neg_class(person))
                .attr(
                    AttRef::Direct(taught_by),
                    Card::exactly(1),
                    ClassFormula::class(professor),
                )
                .finish();
        });
        let index =
            realizable_class_index(f.schema.num_classes(), &f.expansion, &f.analysis);
        let scan = f.imp();
        let indexed = Implications::with_class_index(&f.expansion, &f.analysis, &index);
        let taught_by = f.schema.attr_id("taught_by").unwrap();
        let ids: Vec<ClassId> = f.schema.symbols().class_ids().collect();
        for &c1 in &ids {
            assert_eq!(
                indexed.implies_isa(c1, &ClassFormula::class(f.id("Person"))),
                scan.implies_isa(c1, &ClassFormula::class(f.id("Person")))
            );
            assert_eq!(
                indexed.implied_att_card(&f.schema, c1, AttRef::Direct(taught_by)),
                scan.implied_att_card(&f.schema, c1, AttRef::Direct(taught_by))
            );
            assert_eq!(
                indexed.implies_filler_type(
                    &f.schema,
                    c1,
                    AttRef::Direct(taught_by),
                    &ClassFormula::class(f.id("Professor"))
                ),
                scan.implies_filler_type(
                    &f.schema,
                    c1,
                    AttRef::Direct(taught_by),
                    &ClassFormula::class(f.id("Professor"))
                )
            );
            for &c2 in &ids {
                assert_eq!(indexed.disjoint(c1, c2), scan.disjoint(c1, c2));
                assert_eq!(indexed.subsumes(c1, c2), scan.subsumes(c1, c2));
            }
        }
        assert_eq!(
            indexed.classification(&f.schema),
            scan.classification(&f.schema)
        );
    }

    #[test]
    fn classification_lists_all_strict_subsumptions() {
        let f = Fixture::new(|b| {
            let a = b.class("A");
            let bb = b.class("B");
            let c = b.class("C");
            b.define_class(bb).isa(ClassFormula::class(a)).finish();
            b.define_class(c).isa(ClassFormula::class(bb)).finish();
        });
        let pairs = f.imp().classification(&f.schema);
        let a = f.id("A");
        let bb = f.id("B");
        let c = f.id("C");
        assert!(pairs.contains(&(a, bb)));
        assert!(pairs.contains(&(a, c)));
        assert!(pairs.contains(&(bb, c)));
        assert_eq!(pairs.len(), 3);
    }
}
