//! The system `ΨS` of linear disequations (§3.2 of the paper).
//!
//! One nonnegative unknown `Var(X̄)` per compound class, compound attribute
//! and compound relation of the expansion; for each merged constraint
//! `C̄ ⇒ att : (u, v)` in `Natt` the disequations
//!
//! ```text
//! u · Var(C̄)  ≤  S(att, C̄)        (if u > 0)
//! S(att, C̄)   ≤  v · Var(C̄)       (if v ≠ ∞)
//! ```
//!
//! where `S(att, C̄)` sums the unknowns of the compound attributes whose
//! source (for a direct attribute) or target (for an inverse one) is `C̄`;
//! and analogously for `Nrel` over compound-relation unknowns. Every
//! disequation has zero constant term, so `ΨS` is homogeneous — the
//! property both Theorem 3.3 (integer solutions by scaling) and the
//! support analysis of `car-lp` rely on.

use crate::budget::{Budget, ResourceExhausted};
use crate::expansion::{CcId, Expansion};
use crate::par;
use crate::syntax::AttRef;
use car_arith::Ratio;
use car_lp::{LinExpr, Problem, Relation, VarId};
use std::num::NonZeroUsize;

/// `ΨS`, together with the mapping between expansion components and LP
/// unknowns.
#[derive(Debug, Clone)]
pub struct DisequationSystem {
    problem: Problem,
    cc_vars: Vec<VarId>,
    ca_vars: Vec<VarId>,
    cr_vars: Vec<VarId>,
    row_origins: Vec<RowOrigin>,
}

impl DisequationSystem {
    /// Builds `ΨS` from an expansion. `pinned_zero` lists unknowns (by
    /// [`UnknownId`]) to fix at zero — used by the acceptability fixpoint
    /// of [`crate::satisfiability`].
    #[must_use]
    pub fn build(expansion: &Expansion, pinned_zero: &[UnknownId]) -> DisequationSystem {
        DisequationSystem::build_with_threads(expansion, pinned_zero, NonZeroUsize::MIN)
    }

    /// Builds `ΨS` with the per-entry row construction sharded over up
    /// to `threads` workers.
    ///
    /// Variables are registered serially (their ids are positional), the
    /// `Natt`/`Nrel` rows — each a function of one entry only — are built
    /// in parallel and appended in entry order, so the resulting system
    /// is identical to [`DisequationSystem::build`] for every thread
    /// count; `threads = 1` maps the entries in order on the calling
    /// thread.
    #[must_use]
    pub fn build_with_threads(
        expansion: &Expansion,
        pinned_zero: &[UnknownId],
        threads: NonZeroUsize,
    ) -> DisequationSystem {
        DisequationSystem::build_governed(expansion, pinned_zero, threads, &Budget::unbounded())
            .expect("unbounded budget cannot exhaust")
    }

    /// The one governed core behind every entry point ([`Self::build`]
    /// and [`Self::build_with_threads`] both delegate here): one
    /// checkpoint per `Natt`/`Nrel` entry and per pinned unknown,
    /// identical for every thread count.
    ///
    /// # Errors
    /// [`ResourceExhausted`] as soon as the budget runs out.
    pub fn build_governed(
        expansion: &Expansion,
        pinned_zero: &[UnknownId],
        threads: NonZeroUsize,
        budget: &Budget,
    ) -> Result<DisequationSystem, ResourceExhausted> {
        let mut problem = Problem::new();
        let cc_vars: Vec<VarId> = expansion
            .cc_ids()
            .map(|id| problem.add_var(format!("cc{}", id.index())))
            .collect();
        let ca_vars: Vec<VarId> = (0..expansion.compound_attrs().len())
            .map(|i| problem.add_var(format!("ca{i}")))
            .collect();
        let cr_vars: Vec<VarId> = (0..expansion.compound_rels().len())
            .map(|i| problem.add_var(format!("cr{i}")))
            .collect();

        type Rows = Vec<(LinExpr, Relation)>;
        let natt = expansion.natt();
        let natt_rows: Vec<Result<Rows, ResourceExhausted>> =
            par::parallel_map(threads, natt.len(), |i| {
                budget.checkpoint()?;
                let entry = &natt[i];
                let mut sum = LinExpr::zero();
                let indices = match entry.att {
                    AttRef::Direct(a) => expansion.attrs_with_source(a, entry.cc),
                    AttRef::Inverse(a) => expansion.attrs_with_target(a, entry.cc),
                };
                for &i in indices {
                    sum.add_term(ca_vars[i], Ratio::one());
                }
                Ok(bounds_rows(&sum, cc_vars[entry.cc.index()], entry.card.min, entry.card.max))
            });
        let nrel = expansion.nrel();
        let nrel_rows: Vec<Result<Rows, ResourceExhausted>> =
            par::parallel_map(threads, nrel.len(), |i| {
                budget.checkpoint()?;
                let entry = &nrel[i];
                let mut sum = LinExpr::zero();
                for &i in expansion.rels_with_component(entry.rel, entry.role_pos, entry.cc) {
                    sum.add_term(cr_vars[i], Ratio::one());
                }
                Ok(bounds_rows(&sum, cc_vars[entry.cc.index()], entry.card.min, entry.card.max))
            });
        let mut row_origins = Vec::new();
        for (entry_idx, (entry, rows)) in natt.iter().zip(natt_rows).enumerate() {
            for ((expr, rel), origin) in
                rows?.into_iter().zip(origins_of(entry.card.min, entry.card.max))
            {
                row_origins.push(match origin {
                    BoundKind::Lower => RowOrigin::NattLower(entry_idx),
                    BoundKind::Upper => RowOrigin::NattUpper(entry_idx),
                });
                problem.add_constraint(expr, rel, Ratio::zero());
            }
        }
        for (entry_idx, (entry, rows)) in nrel.iter().zip(nrel_rows).enumerate() {
            for ((expr, rel), origin) in
                rows?.into_iter().zip(origins_of(entry.card.min, entry.card.max))
            {
                row_origins.push(match origin {
                    BoundKind::Lower => RowOrigin::NrelLower(entry_idx),
                    BoundKind::Upper => RowOrigin::NrelUpper(entry_idx),
                });
                problem.add_constraint(expr, rel, Ratio::zero());
            }
        }

        // Pinned unknowns: Var(X̄) = 0 (≤ 0 with the implicit ≥ 0).
        for &u in pinned_zero {
            budget.checkpoint()?;
            let var = match u {
                UnknownId::Cc(i) => cc_vars[i],
                UnknownId::Ca(i) => ca_vars[i],
                UnknownId::Cr(i) => cr_vars[i],
            };
            row_origins.push(RowOrigin::Pinned(u));
            problem.add_constraint(LinExpr::var(var), Relation::Le, Ratio::zero());
        }

        debug_assert_eq!(row_origins.len(), problem.num_constraints());
        Ok(DisequationSystem { problem, cc_vars, ca_vars, cr_vars, row_origins })
    }

    /// The underlying LP problem (all unknowns implicitly `≥ 0`).
    #[must_use]
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// The LP variable of a compound class.
    #[must_use]
    pub fn cc_var(&self, cc: CcId) -> VarId {
        self.cc_vars[cc.index()]
    }

    /// The LP variable of the `i`-th compound attribute.
    #[must_use]
    pub fn ca_var(&self, i: usize) -> VarId {
        self.ca_vars[i]
    }

    /// The LP variable of the `i`-th compound relation.
    #[must_use]
    pub fn cr_var(&self, i: usize) -> VarId {
        self.cr_vars[i]
    }

    /// The LP variable of any unknown.
    #[must_use]
    pub fn var_of(&self, u: UnknownId) -> VarId {
        match u {
            UnknownId::Cc(i) => self.cc_vars[i],
            UnknownId::Ca(i) => self.ca_vars[i],
            UnknownId::Cr(i) => self.cr_vars[i],
        }
    }

    /// Total number of unknowns.
    #[must_use]
    pub fn num_unknowns(&self) -> usize {
        self.cc_vars.len() + self.ca_vars.len() + self.cr_vars.len()
    }

    /// Number of disequations (excluding the implicit nonnegativity).
    #[must_use]
    pub fn num_disequations(&self) -> usize {
        self.problem.num_constraints()
    }

    /// Provenance of every constraint row, parallel to
    /// [`Self::problem`]'s constraint order. Column generation uses this
    /// to map simplex duals back to the `Natt`/`Nrel` entry whose bound
    /// produced each row.
    #[must_use]
    pub fn row_origins(&self) -> &[RowOrigin] {
        &self.row_origins
    }

    /// Iterates over all unknown ids in LP-variable order.
    pub fn unknowns(&self) -> impl Iterator<Item = UnknownId> + '_ {
        let ccs = (0..self.cc_vars.len()).map(UnknownId::Cc);
        let cas = (0..self.ca_vars.len()).map(UnknownId::Ca);
        let crs = (0..self.cr_vars.len()).map(UnknownId::Cr);
        ccs.chain(cas).chain(crs)
    }
}

/// Identifier of one unknown of `ΨS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum UnknownId {
    /// Compound-class unknown (index into the expansion's list).
    Cc(usize),
    /// Compound-attribute unknown.
    Ca(usize),
    /// Compound-relation unknown.
    Cr(usize),
}

/// Provenance of one constraint row of `ΨS`, in the order the rows were
/// added to the problem: `Natt` bounds first (per entry, lower then
/// upper), then `Nrel` bounds, then pinned-zero rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowOrigin {
    /// Lower cardinality bound of `natt()[i]`.
    NattLower(usize),
    /// Upper cardinality bound of `natt()[i]`.
    NattUpper(usize),
    /// Lower cardinality bound of `nrel()[i]`.
    NrelLower(usize),
    /// Upper cardinality bound of `nrel()[i]`.
    NrelUpper(usize),
    /// `Var(X̄) ≤ 0` pin from the acceptability fixpoint.
    Pinned(UnknownId),
}

/// Which half of a cardinality bound a row encodes.
enum BoundKind {
    Lower,
    Upper,
}

/// The bound kinds emitted by [`bounds_rows`] for the same cardinality,
/// in the same order.
fn origins_of(min: u64, max: Option<u64>) -> Vec<BoundKind> {
    let mut kinds = Vec::new();
    if min > 0 {
        kinds.push(BoundKind::Lower);
    }
    if max.is_some() {
        kinds.push(BoundKind::Upper);
    }
    kinds
}

/// The rows of `min·var ≤ sum` and `sum ≤ max·var`, in lower-then-upper
/// order, skipping trivial halves. All rows have zero right-hand side.
fn bounds_rows(
    sum: &LinExpr,
    cc_var: VarId,
    min: u64,
    max: Option<u64>,
) -> Vec<(LinExpr, Relation)> {
    let mut rows = Vec::new();
    if min > 0 {
        // sum - min·cc ≥ 0
        let mut expr = sum.clone();
        expr.add_term(cc_var, -Ratio::from_integer(car_arith::BigInt::from(min)));
        rows.push((expr, Relation::Ge));
    }
    if let Some(max) = max {
        // sum - max·cc ≤ 0
        let mut expr = sum.clone();
        expr.add_term(cc_var, -Ratio::from_integer(car_arith::BigInt::from(max)));
        rows.push((expr, Relation::Le));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate;
    use crate::expansion::ExpansionLimits;
    use crate::syntax::{AttRef, Card, ClassFormula, SchemaBuilder};

    fn expansion_of(build: impl FnOnce(&mut SchemaBuilder)) -> (crate::syntax::Schema, Expansion) {
        let mut b = SchemaBuilder::new();
        build(&mut b);
        let s = b.build().unwrap();
        let ccs = enumerate::naive(&s, usize::MAX).unwrap();
        let exp = Expansion::build(&s, ccs, &ExpansionLimits::default()).unwrap();
        (s, exp)
    }

    #[test]
    fn empty_schema_gives_empty_system() {
        let (_s, exp) = expansion_of(|b| {
            b.class("A");
        });
        let sys = DisequationSystem::build(&exp, &[]);
        assert_eq!(sys.num_unknowns(), 1); // one compound class {A}
        assert_eq!(sys.num_disequations(), 0);
        assert!(sys.problem().is_homogeneous());
    }

    #[test]
    fn attribute_bounds_generate_two_sided_disequations() {
        let (_s, exp) = expansion_of(|b| {
            let a = b.class("A");
            let t = b.class("T");
            let f = b.attribute("f");
            b.define_class(a)
                .attr(AttRef::Direct(f), Card::new(2, 5), ClassFormula::class(t))
                .finish();
        });
        let sys = DisequationSystem::build(&exp, &[]);
        // Lower and upper bound for each compound class containing A
        // ({A}, {A,T}): 4 disequations.
        assert_eq!(sys.num_disequations(), 4);
        assert!(sys.problem().is_homogeneous());
    }

    #[test]
    fn infinite_upper_bound_generates_one_disequation() {
        let (_s, exp) = expansion_of(|b| {
            let a = b.class("A");
            let f = b.attribute("f");
            b.define_class(a)
                .attr(AttRef::Direct(f), Card::at_least(1), ClassFormula::top())
                .finish();
        });
        let sys = DisequationSystem::build(&exp, &[]);
        assert_eq!(sys.num_disequations(), 1);
    }

    #[test]
    fn zero_infinity_bound_generates_nothing() {
        let (_s, exp) = expansion_of(|b| {
            let a = b.class("A");
            let f = b.attribute("f");
            b.define_class(a)
                .attr(AttRef::Direct(f), Card::any(), ClassFormula::top())
                .finish();
        });
        let sys = DisequationSystem::build(&exp, &[]);
        assert_eq!(sys.num_disequations(), 0);
        // Trivial (0, ∞) bounds do not materialize compound attributes at
        // all: their type constraints are enforced lazily (see
        // `implication::implies_filler_type`), not by the system.
        assert!(exp.compound_attrs().is_empty());
    }

    #[test]
    fn pinned_unknowns_are_forced_to_zero() {
        let (_s, exp) = expansion_of(|b| {
            b.class("A");
            b.class("B");
        });
        let sys = DisequationSystem::build(&exp, &[UnknownId::Cc(0)]);
        let point = sys.problem().feasible_point().unwrap();
        assert!(point[sys.cc_var(CcId(0)).index()].is_zero());
    }

    #[test]
    fn parallel_system_is_identical_to_serial() {
        let (_s, exp) = expansion_of(|b| {
            let a = b.class("A");
            let t = b.class("T");
            let f = b.attribute("f");
            let g = b.attribute("g");
            b.define_class(a)
                .attr(AttRef::Direct(f), Card::new(2, 5), ClassFormula::class(t))
                .attr(AttRef::Direct(g), Card::at_least(1), ClassFormula::top())
                .finish();
            b.define_class(t)
                .attr(AttRef::Inverse(f), Card::new(0, 3), ClassFormula::top())
                .finish();
        });
        let pinned = [UnknownId::Cc(0), UnknownId::Ca(0)];
        let serial = DisequationSystem::build(&exp, &pinned);
        for threads in 1..=4 {
            let par = DisequationSystem::build_with_threads(
                &exp,
                &pinned,
                NonZeroUsize::new(threads).unwrap(),
            );
            assert_eq!(
                format!("{:?}", par.problem()),
                format!("{:?}", serial.problem()),
                "threads={threads}"
            );
            assert_eq!(par.cc_vars, serial.cc_vars);
            assert_eq!(par.ca_vars, serial.ca_vars);
            assert_eq!(par.cr_vars, serial.cr_vars);
        }
    }

    #[test]
    fn row_origins_align_with_constraint_rows() {
        let (_s, exp) = expansion_of(|b| {
            let a = b.class("A");
            let t = b.class("T");
            let f = b.attribute("f");
            b.define_class(a)
                .attr(AttRef::Direct(f), Card::new(2, 5), ClassFormula::class(t))
                .finish();
            b.define_class(t)
                .attr(AttRef::Inverse(f), Card::at_least(1), ClassFormula::top())
                .finish();
        });
        let pinned = [UnknownId::Cc(0)];
        let sys = DisequationSystem::build(&exp, &pinned);
        assert_eq!(sys.row_origins().len(), sys.num_disequations());
        // Natt rows come first (lower then upper per entry), pins last.
        let natt_entries = exp.natt().len();
        for origin in sys.row_origins() {
            match *origin {
                RowOrigin::NattLower(i) | RowOrigin::NattUpper(i) => assert!(i < natt_entries),
                RowOrigin::NrelLower(_) | RowOrigin::NrelUpper(_) => {
                    panic!("schema has no relations")
                }
                RowOrigin::Pinned(u) => assert_eq!(u, UnknownId::Cc(0)),
            }
        }
        assert_eq!(*sys.row_origins().last().unwrap(), RowOrigin::Pinned(UnknownId::Cc(0)));
        // A Card::new(2, 5) entry contributes a lower and an upper row.
        assert!(sys.row_origins().iter().any(|o| matches!(o, RowOrigin::NattLower(_))));
        assert!(sys.row_origins().iter().any(|o| matches!(o, RowOrigin::NattUpper(_))));
    }

    #[test]
    fn unknown_iteration_covers_everything() {
        let (_s, exp) = expansion_of(|b| {
            let a = b.class("A");
            let f = b.attribute("f");
            b.define_class(a)
                .attr(AttRef::Direct(f), Card::exactly(1), ClassFormula::top())
                .finish();
        });
        let sys = DisequationSystem::build(&exp, &[]);
        let ids: Vec<UnknownId> = sys.unknowns().collect();
        assert_eq!(ids.len(), sys.num_unknowns());
        for id in ids {
            let _ = sys.var_of(id); // must not panic
        }
    }
}
