//! Resource governance for the reasoning pipeline.
//!
//! Class satisfiability in CAR is EXPTIME-hard (§4 of the paper) and the
//! expansion is worst-case exponential, so every unbounded loop in the
//! pipeline polls a [`Budget`]: a shared handle carrying a deadline, a
//! work/step quota, a memory (allocation-count) quota and a cooperative
//! [`CancelToken`]. An unbounded budget is inert — its checkpoint is a
//! single predictable branch — so governed code paths cost nothing when
//! no limit is set.
//!
//! Checkpoint placement rules (for future contributors):
//!
//! * call [`Budget::checkpoint`] once per *unit of work* in any loop whose
//!   trip count depends on schema size (per candidate compound class, per
//!   SAT model, per disequation row, per fixpoint iteration, per simplex
//!   pivot, per classification pair, per brute-force candidate);
//! * call [`Budget::charge`] when a compound object is materialized, so
//!   the memory quota and the [`ProgressReport`] stay honest;
//! * parallel code may checkpoint more coarsely than its serial twin
//!   (e.g. once per chunk) — the contract is *clean abort*, not identical
//!   checkpoint counts; only the error **kind** must agree;
//! * never hold a lock across a checkpoint, and treat every governed
//!   function as re-runnable: exhaustion must leave no partial state
//!   behind that a retry with a larger budget could observe.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cooperative cancellation flag, sharable across threads.
///
/// Cloning the token shares the flag: calling [`CancelToken::cancel`] on
/// any clone makes every [`Budget`] created from the token fail its next
/// checkpoint with [`ResourceKind::Cancelled`].
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// `true` once [`CancelToken::cancel`] has been called.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Declarative resource limits for [`Budget::new`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BudgetLimits {
    /// Wall-clock allowance, measured from budget construction.
    pub deadline: Option<Duration>,
    /// Maximum number of checkpoints (units of work) allowed.
    pub max_steps: Option<u64>,
    /// Maximum number of compound objects materialized (allocation count).
    pub max_items: Option<u64>,
}

/// Which resource ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResourceKind {
    /// The wall-clock deadline passed.
    Deadline,
    /// The [`CancelToken`] was triggered.
    Cancelled,
    /// The work/step quota was consumed.
    Steps,
    /// The memory (allocation-count) quota was consumed.
    Memory,
    /// A [`Budget::trip_after`] test hook fired.
    FaultInjected,
}

/// A governed computation ran out of some resource.
///
/// Carries only the *kind*; the caller (the [`crate::reasoner::Reasoner`])
/// attaches a [`ProgressReport`] snapshot when surfacing the error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceExhausted {
    /// Which resource ran out.
    pub kind: ResourceKind,
}

impl fmt::Display for ResourceExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ResourceKind::Deadline => write!(f, "deadline exceeded"),
            ResourceKind::Cancelled => write!(f, "cancelled"),
            ResourceKind::Steps => write!(f, "step quota exhausted"),
            ResourceKind::Memory => write!(f, "memory quota exhausted"),
            ResourceKind::FaultInjected => write!(f, "fault injected (test hook)"),
        }
    }
}

impl std::error::Error for ResourceExhausted {}

/// Pipeline phase, for progress reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Phase {
    /// Schema transformation (arity reduction) and setup.
    Setup = 0,
    /// Compound-class enumeration.
    Enumerate = 1,
    /// Expansion construction.
    Expand = 2,
    /// The acceptability fixpoint.
    Fixpoint = 3,
    /// Implication / classification sweeps.
    Implication = 4,
    /// Model extraction.
    Extract = 5,
}

impl Phase {
    fn from_u8(v: u8) -> Phase {
        match v {
            0 => Phase::Setup,
            1 => Phase::Enumerate,
            2 => Phase::Expand,
            3 => Phase::Fixpoint,
            4 => Phase::Implication,
            _ => Phase::Extract,
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Phase::Setup => "setup",
            Phase::Enumerate => "enumeration",
            Phase::Expand => "expansion",
            Phase::Fixpoint => "fixpoint",
            Phase::Implication => "implication",
            Phase::Extract => "extraction",
        };
        f.write_str(name)
    }
}

/// How far the pipeline got before a budget ran out (or where it stands
/// now, for an in-flight budget).
///
/// All fields are integers so the report — and every error embedding it —
/// stays `Eq`-comparable; [`ProgressReport::fixpoint_fraction`] derives
/// the completion ratio on demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgressReport {
    /// The pipeline phase that was executing.
    pub phase: Phase,
    /// Checkpoints passed (units of work performed).
    pub steps: u64,
    /// Compound classes materialized so far.
    pub compound_classes: u64,
    /// Compound attributes materialized so far.
    pub compound_attrs: u64,
    /// Compound relations materialized so far.
    pub compound_rels: u64,
    /// Fixpoint iterations completed.
    pub fixpoint_iterations: u64,
    /// Unknowns settled (proven dead or finished) in the fixpoint.
    pub fixpoint_settled: u64,
    /// Total unknowns the fixpoint must settle (0 before it starts).
    pub fixpoint_total: u64,
}

impl ProgressReport {
    /// Fraction of the fixpoint completed, if the fixpoint has started.
    #[must_use]
    pub fn fixpoint_fraction(&self) -> Option<f64> {
        if self.fixpoint_total == 0 {
            return None;
        }
        #[allow(clippy::cast_precision_loss)]
        Some(self.fixpoint_settled as f64 / self.fixpoint_total as f64)
    }
}

impl fmt::Display for ProgressReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "phase {}: {} steps, {} compound classes, {} compound attrs, {} compound rels",
            self.phase, self.steps, self.compound_classes, self.compound_attrs, self.compound_rels
        )?;
        if let Some(frac) = self.fixpoint_fraction() {
            write!(
                f,
                ", fixpoint {:.0}% ({} iterations)",
                frac * 100.0,
                self.fixpoint_iterations
            )?;
        }
        Ok(())
    }
}

/// Kind of compound object for [`Budget::charge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Item {
    /// A compound class.
    CompoundClass,
    /// A compound attribute (link variable).
    CompoundAttr,
    /// A compound relation tuple.
    CompoundRel,
}

#[derive(Debug)]
struct Inner {
    /// Absolute deadline, if any.
    deadline: Option<Instant>,
    max_steps: Option<u64>,
    max_items: Option<u64>,
    /// Fault-injection hook: fail the `trip_at`-th checkpoint and every
    /// later one (so all workers abort promptly).
    trip_at: Option<u64>,
    cancel: Option<Arc<AtomicBool>>,
    /// `false` for the unbounded budget: checkpoints return early and
    /// count nothing.
    active: bool,
    steps: AtomicU64,
    items: AtomicU64,
    phase: AtomicU8,
    ccs_built: AtomicU64,
    attrs_built: AtomicU64,
    rels_built: AtomicU64,
    fixpoint_iterations: AtomicU64,
    fixpoint_settled: AtomicU64,
    fixpoint_total: AtomicU64,
}

/// A shared, thread-safe resource budget.
///
/// Cheap to clone (an `Arc`); every clone draws from the same quotas.
/// Construct with [`Budget::unbounded`] (the inert default),
/// [`Budget::new`], [`Budget::deadline`], [`Budget::cancellable`] or the
/// test hook [`Budget::trip_after`].
#[derive(Debug, Clone)]
pub struct Budget {
    inner: Arc<Inner>,
}

impl Default for Budget {
    fn default() -> Budget {
        Budget::unbounded()
    }
}

impl Budget {
    fn from_parts(
        limits: BudgetLimits,
        trip_at: Option<u64>,
        cancel: Option<Arc<AtomicBool>>,
    ) -> Budget {
        let active = limits.deadline.is_some()
            || limits.max_steps.is_some()
            || limits.max_items.is_some()
            || trip_at.is_some()
            || cancel.is_some();
        Budget {
            inner: Arc::new(Inner {
                deadline: limits.deadline.map(|d| Instant::now() + d),
                max_steps: limits.max_steps,
                max_items: limits.max_items,
                trip_at,
                cancel,
                active,
                steps: AtomicU64::new(0),
                items: AtomicU64::new(0),
                phase: AtomicU8::new(Phase::Setup as u8),
                ccs_built: AtomicU64::new(0),
                attrs_built: AtomicU64::new(0),
                rels_built: AtomicU64::new(0),
                fixpoint_iterations: AtomicU64::new(0),
                fixpoint_settled: AtomicU64::new(0),
                fixpoint_total: AtomicU64::new(0),
            }),
        }
    }

    /// A budget that never runs out. Checkpoints are inert (a single
    /// branch) and track no progress.
    #[must_use]
    pub fn unbounded() -> Budget {
        Budget::from_parts(BudgetLimits::default(), None, None)
    }

    /// A budget enforcing the given limits.
    #[must_use]
    pub fn new(limits: BudgetLimits) -> Budget {
        Budget::from_parts(limits, None, None)
    }

    /// A budget enforcing `limits` that additionally honors an external
    /// [`CancelToken`].
    #[must_use]
    pub fn with_cancel(limits: BudgetLimits, token: &CancelToken) -> Budget {
        Budget::from_parts(limits, None, Some(Arc::clone(&token.flag)))
    }

    /// An otherwise-unbounded budget plus the token that cancels it.
    #[must_use]
    pub fn cancellable() -> (Budget, CancelToken) {
        let token = CancelToken::new();
        let budget = Budget::with_cancel(BudgetLimits::default(), &token);
        (budget, token)
    }

    /// A budget with only a wall-clock deadline.
    #[must_use]
    pub fn deadline(allowance: Duration) -> Budget {
        Budget::new(BudgetLimits { deadline: Some(allowance), ..BudgetLimits::default() })
    }

    /// Fault-injection test hook: the `n`-th checkpoint (1-based) fails
    /// with [`ResourceKind::FaultInjected`], as does every later one (so
    /// that with parallel workers, every thread aborts promptly).
    #[must_use]
    pub fn trip_after(n: u64) -> Budget {
        Budget::from_parts(BudgetLimits::default(), Some(n), None)
    }

    /// Polls the budget; governed loops call this once per unit of work.
    ///
    /// The deadline is only consulted every 64th step (plus the first),
    /// keeping the common-path cost to a handful of atomic increments.
    ///
    /// # Errors
    /// [`ResourceExhausted`] as soon as any resource runs out; once a
    /// budget has failed, every later checkpoint fails too.
    #[inline]
    pub fn checkpoint(&self) -> Result<(), ResourceExhausted> {
        if !self.inner.active {
            return Ok(());
        }
        self.checkpoint_slow()
    }

    #[cold]
    fn checkpoint_slow(&self) -> Result<(), ResourceExhausted> {
        let inner = &*self.inner;
        if let Some(cancel) = &inner.cancel {
            if cancel.load(Ordering::Relaxed) {
                return Err(ResourceExhausted { kind: ResourceKind::Cancelled });
            }
        }
        let step = inner.steps.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(trip_at) = inner.trip_at {
            if step >= trip_at {
                return Err(ResourceExhausted { kind: ResourceKind::FaultInjected });
            }
        }
        if let Some(max) = inner.max_steps {
            if step > max {
                return Err(ResourceExhausted { kind: ResourceKind::Steps });
            }
        }
        if let Some(deadline) = inner.deadline {
            if step & 63 == 1 && Instant::now() >= deadline {
                return Err(ResourceExhausted { kind: ResourceKind::Deadline });
            }
        }
        Ok(())
    }

    /// Re-examines every limit *without* consuming a step.
    ///
    /// Unlike [`Budget::checkpoint`], the deadline is consulted
    /// unconditionally. Used to attribute an interruption observed
    /// elsewhere (e.g. an interrupted LP solve whose poll callback saw a
    /// failing checkpoint) to the precise resource that ran out.
    ///
    /// # Errors
    /// [`ResourceExhausted`] if any limit is already exceeded.
    pub fn probe(&self) -> Result<(), ResourceExhausted> {
        if !self.inner.active {
            return Ok(());
        }
        let inner = &*self.inner;
        if let Some(cancel) = &inner.cancel {
            if cancel.load(Ordering::Relaxed) {
                return Err(ResourceExhausted { kind: ResourceKind::Cancelled });
            }
        }
        let step = inner.steps.load(Ordering::Relaxed);
        if let Some(trip_at) = inner.trip_at {
            if step >= trip_at {
                return Err(ResourceExhausted { kind: ResourceKind::FaultInjected });
            }
        }
        if let Some(max) = inner.max_steps {
            if step > max {
                return Err(ResourceExhausted { kind: ResourceKind::Steps });
            }
        }
        if let Some(deadline) = inner.deadline {
            if Instant::now() >= deadline {
                return Err(ResourceExhausted { kind: ResourceKind::Deadline });
            }
        }
        Ok(())
    }

    /// Records the materialization of `n` compound objects of one kind,
    /// charging the memory (allocation-count) quota.
    ///
    /// # Errors
    /// [`ResourceKind::Memory`] when the item quota is exceeded.
    pub fn charge(&self, item: Item, n: u64) -> Result<(), ResourceExhausted> {
        if !self.inner.active {
            return Ok(());
        }
        let inner = &*self.inner;
        let counter = match item {
            Item::CompoundClass => &inner.ccs_built,
            Item::CompoundAttr => &inner.attrs_built,
            Item::CompoundRel => &inner.rels_built,
        };
        counter.fetch_add(n, Ordering::Relaxed);
        let items = inner.items.fetch_add(n, Ordering::Relaxed) + n;
        if let Some(max) = inner.max_items {
            if items > max {
                return Err(ResourceExhausted { kind: ResourceKind::Memory });
            }
        }
        Ok(())
    }

    /// Marks the start of a pipeline phase (for progress reporting).
    pub fn enter_phase(&self, phase: Phase) {
        if self.inner.active {
            self.inner.phase.store(phase as u8, Ordering::Relaxed);
        }
    }

    /// Records one completed fixpoint iteration.
    pub fn note_fixpoint_iteration(&self) {
        if self.inner.active {
            self.inner.fixpoint_iterations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records fixpoint progress: `settled` of `total` unknowns decided.
    pub fn note_fixpoint_progress(&self, settled: u64, total: u64) {
        if self.inner.active {
            self.inner.fixpoint_settled.store(settled, Ordering::Relaxed);
            self.inner.fixpoint_total.store(total, Ordering::Relaxed);
        }
    }

    /// A snapshot of the progress made under this budget.
    #[must_use]
    pub fn progress(&self) -> ProgressReport {
        let inner = &*self.inner;
        ProgressReport {
            phase: Phase::from_u8(inner.phase.load(Ordering::Relaxed)),
            steps: inner.steps.load(Ordering::Relaxed),
            compound_classes: inner.ccs_built.load(Ordering::Relaxed),
            compound_attrs: inner.attrs_built.load(Ordering::Relaxed),
            compound_rels: inner.rels_built.load(Ordering::Relaxed),
            fixpoint_iterations: inner.fixpoint_iterations.load(Ordering::Relaxed),
            fixpoint_settled: inner.fixpoint_settled.load(Ordering::Relaxed),
            fixpoint_total: inner.fixpoint_total.load(Ordering::Relaxed),
        }
    }

    /// Total checkpoints passed so far. With a *counting* budget (one
    /// constructed by [`Budget::new`] with no limits — see the fault
    /// injection harness), this measures how many trip points a pipeline
    /// run exposes.
    #[must_use]
    pub fn checkpoints_used(&self) -> u64 {
        self.inner.steps.load(Ordering::Relaxed)
    }

    /// A counting budget: active (so checkpoints are tallied) but with no
    /// limit set, used by the fault-injection harness to discover the
    /// number of checkpoints a computation passes.
    #[must_use]
    pub fn counting() -> Budget {
        Budget::from_parts(
            BudgetLimits { max_steps: Some(u64::MAX), ..BudgetLimits::default() },
            None,
            None,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_budget_is_inert() {
        let b = Budget::unbounded();
        for _ in 0..10_000 {
            b.checkpoint().unwrap();
        }
        b.charge(Item::CompoundClass, 1_000_000).unwrap();
        assert_eq!(b.checkpoints_used(), 0);
        assert_eq!(b.progress().compound_classes, 0);
    }

    #[test]
    fn step_quota_trips_exactly() {
        let b = Budget::new(BudgetLimits { max_steps: Some(5), ..Default::default() });
        for _ in 0..5 {
            b.checkpoint().unwrap();
        }
        assert_eq!(
            b.checkpoint(),
            Err(ResourceExhausted { kind: ResourceKind::Steps })
        );
        // Keeps failing.
        assert!(b.checkpoint().is_err());
    }

    #[test]
    fn memory_quota_trips() {
        let b = Budget::new(BudgetLimits { max_items: Some(10), ..Default::default() });
        b.charge(Item::CompoundClass, 6).unwrap();
        b.charge(Item::CompoundAttr, 4).unwrap();
        assert_eq!(
            b.charge(Item::CompoundRel, 1),
            Err(ResourceExhausted { kind: ResourceKind::Memory })
        );
        let p = b.progress();
        assert_eq!(p.compound_classes, 6);
        assert_eq!(p.compound_attrs, 4);
        assert_eq!(p.compound_rels, 1);
    }

    #[test]
    fn zero_deadline_trips_on_first_checkpoint() {
        let b = Budget::deadline(Duration::ZERO);
        assert_eq!(
            b.checkpoint(),
            Err(ResourceExhausted { kind: ResourceKind::Deadline })
        );
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let b = Budget::deadline(Duration::from_secs(3600));
        for _ in 0..1000 {
            b.checkpoint().unwrap();
        }
    }

    #[test]
    fn cancel_token_trips_all_clones() {
        let (b, token) = Budget::cancellable();
        let b2 = b.clone();
        b.checkpoint().unwrap();
        token.cancel();
        assert!(token.is_cancelled());
        assert_eq!(
            b.checkpoint(),
            Err(ResourceExhausted { kind: ResourceKind::Cancelled })
        );
        assert_eq!(
            b2.checkpoint(),
            Err(ResourceExhausted { kind: ResourceKind::Cancelled })
        );
    }

    #[test]
    fn trip_after_fires_at_kth_checkpoint_and_stays_tripped() {
        let b = Budget::trip_after(3);
        b.checkpoint().unwrap();
        b.checkpoint().unwrap();
        assert_eq!(
            b.checkpoint(),
            Err(ResourceExhausted { kind: ResourceKind::FaultInjected })
        );
        assert!(b.checkpoint().is_err());
    }

    #[test]
    fn counting_budget_tallies_checkpoints() {
        let b = Budget::counting();
        for _ in 0..42 {
            b.checkpoint().unwrap();
        }
        assert_eq!(b.checkpoints_used(), 42);
    }

    #[test]
    fn progress_report_displays_fixpoint_fraction() {
        let b = Budget::counting();
        b.enter_phase(Phase::Fixpoint);
        b.note_fixpoint_progress(3, 12);
        b.note_fixpoint_iteration();
        let p = b.progress();
        assert_eq!(p.phase, Phase::Fixpoint);
        assert_eq!(p.fixpoint_fraction(), Some(0.25));
        let text = p.to_string();
        assert!(text.contains("fixpoint"), "{text}");
        assert!(text.contains("25%"), "{text}");
    }

    #[test]
    fn phase_ordering_matches_pipeline() {
        assert!(Phase::Setup < Phase::Enumerate);
        assert!(Phase::Enumerate < Phase::Expand);
        assert!(Phase::Expand < Phase::Fixpoint);
        assert!(Phase::Fixpoint < Phase::Implication);
        assert!(Phase::Implication < Phase::Extract);
    }
}
