//! Row-sparse simplex tableau with exact rational entries.
//!
//! The constraint systems CAR emits are very sparse — each row touches a
//! handful of the unknowns plus its own slack/artificial column — so rows
//! store only their nonzero `(column, value)` pairs, sorted by column.
//! A pivot then costs `O(nnz(pivot row) · rows touching the pivot
//! column)` instead of `O(rows · n_cols)`, and every eliminated entry
//! that cancels to zero leaves the representation entirely.

use crate::counters::count_pivot;
use car_arith::Ratio;

/// A sparse vector: nonzero `(col, value)` entries, strictly increasing
/// in `col`.
#[derive(Debug, Clone, Default)]
pub(crate) struct SparseRow {
    entries: Vec<(usize, Ratio)>,
}

impl SparseRow {
    /// Builds a row from a dense coefficient vector, dropping zeros.
    pub fn from_dense(dense: &[Ratio]) -> SparseRow {
        SparseRow {
            entries: dense
                .iter()
                .enumerate()
                .filter(|(_, v)| !v.is_zero())
                .map(|(j, v)| (j, v.clone()))
                .collect(),
        }
    }

    /// A row with no nonzero entries.
    pub fn empty() -> SparseRow {
        SparseRow { entries: Vec::new() }
    }

    /// The nonzero coefficient at `col`, if any.
    pub fn coeff(&self, col: usize) -> Option<&Ratio> {
        self.entries
            .binary_search_by_key(&col, |&(j, _)| j)
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// The coefficient at `col` (zero when absent).
    pub fn get(&self, col: usize) -> Ratio {
        self.coeff(col).cloned().unwrap_or_else(Ratio::zero)
    }

    /// Nonzero entries in increasing column order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Ratio)> {
        self.entries.iter().map(|(j, v)| (*j, v))
    }

    /// Number of nonzero entries.
    #[cfg(test)]
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Sets the coefficient at `col` (inserting, replacing or removing).
    pub fn set(&mut self, col: usize, value: Ratio) {
        match self.entries.binary_search_by_key(&col, |&(j, _)| j) {
            Ok(i) => {
                if value.is_zero() {
                    self.entries.remove(i);
                } else {
                    self.entries[i].1 = value;
                }
            }
            Err(i) => {
                if !value.is_zero() {
                    self.entries.insert(i, (col, value));
                }
            }
        }
    }

    /// Multiplies every entry by the nonzero scalar `k`.
    pub fn scale(&mut self, k: &Ratio) {
        debug_assert!(!k.is_zero());
        for (_, v) in &mut self.entries {
            *v *= k;
        }
    }

    /// `self += k · other` as a sorted merge; entries that cancel to zero
    /// are dropped.
    pub fn axpy(&mut self, k: &Ratio, other: &SparseRow) {
        if k.is_zero() || other.entries.is_empty() {
            return;
        }
        let mut out = Vec::with_capacity(self.entries.len() + other.entries.len());
        let mut a = self.entries.iter();
        let mut b = other.entries.iter();
        let (mut na, mut nb) = (a.next(), b.next());
        loop {
            match (na, nb) {
                (Some(&(ja, ref va)), Some(&(jb, ref vb))) => {
                    if ja < jb {
                        out.push((ja, va.clone()));
                        na = a.next();
                    } else if jb < ja {
                        out.push((jb, k * vb));
                        nb = b.next();
                    } else {
                        let sum = va + &(k * vb);
                        if !sum.is_zero() {
                            out.push((ja, sum));
                        }
                        na = a.next();
                        nb = b.next();
                    }
                }
                (Some(&(ja, ref va)), None) => {
                    out.push((ja, va.clone()));
                    na = a.next();
                }
                (None, Some(&(jb, ref vb))) => {
                    out.push((jb, k * vb));
                    nb = b.next();
                }
                (None, None) => break,
            }
        }
        self.entries = out;
    }
}

/// A simplex tableau in canonical form: every basic column is a unit
/// vector, all right-hand sides are nonnegative, and an objective row of
/// reduced costs is maintained alongside.
///
/// The tableau represents the constraints `A·x = b, x ≥ 0` together with
/// an objective `z = obj_val + Σ obj[j]·x_j` expressed over the current
/// nonbasic variables. Constraint rows and the reduced-cost row are
/// stored sparsely.
#[derive(Debug, Clone)]
pub(crate) struct Tableau {
    /// Constraint coefficient rows (sparse, over `n_cols` columns).
    pub rows: Vec<SparseRow>,
    /// Right-hand sides, one per row; invariant: nonnegative.
    pub rhs: Vec<Ratio>,
    /// Column index of the basic variable of each row.
    pub basis: Vec<usize>,
    /// Reduced-cost row (sparse).
    pub obj: SparseRow,
    /// Objective value at the current basic solution.
    pub obj_val: Ratio,
    /// Total number of columns (structural + slack + artificial).
    pub n_cols: usize,
}

impl Tableau {
    /// Pivots on `(row, col)`: `col` enters the basis, the variable basic
    /// in `row` leaves. Requires a nonzero pivot entry.
    pub fn pivot(&mut self, row: usize, col: usize) {
        count_pivot();
        let pivot = self.rows[row].get(col);
        debug_assert!(!pivot.is_zero(), "pivot on zero entry");
        let inv = pivot.recip();
        self.rows[row].scale(&inv);
        self.rhs[row] *= &inv;

        // Detach the pivot row so eliminations can borrow it freely.
        let pivot_row = std::mem::take(&mut self.rows[row]);
        let pivot_rhs = self.rhs[row].clone();
        for i in 0..self.rows.len() {
            if i == row {
                continue;
            }
            let Some(factor) = self.rows[i].coeff(col).cloned() else {
                continue;
            };
            self.rows[i].axpy(&-&factor, &pivot_row);
            self.rhs[i] -= &(&factor * &pivot_rhs);
        }
        if let Some(factor) = self.obj.coeff(col).cloned() {
            self.obj.axpy(&-&factor, &pivot_row);
            self.obj_val += &(&factor * &pivot_rhs);
        }
        self.rows[row] = pivot_row;

        self.basis[row] = col;
    }

    /// Reads the value of column `col` at the current basic solution.
    pub fn value_of(&self, col: usize) -> Ratio {
        for (i, &b) in self.basis.iter().enumerate() {
            if b == col {
                return self.rhs[i].clone();
            }
        }
        Ratio::zero()
    }

    /// Rewrites the objective row so that reduced costs of basic columns
    /// are zero (canonical form), given raw costs already stored in
    /// `self.obj` with `self.obj_val = 0`.
    pub fn canonicalize_objective(&mut self) {
        for i in 0..self.rows.len() {
            let Some(k) = self.obj.coeff(self.basis[i]).cloned() else {
                continue;
            };
            self.obj.axpy(&-&k, &self.rows[i]);
            self.obj_val += &(&k * &self.rhs[i]);
        }
    }

    /// Asserts canonical-form invariants (debug builds only).
    pub fn debug_check(&self) {
        if cfg!(debug_assertions) {
            for (i, &b) in self.basis.iter().enumerate() {
                debug_assert!(self.rows[i].get(b) == Ratio::one(), "basic entry not 1");
                for (k, row) in self.rows.iter().enumerate() {
                    if k != i {
                        debug_assert!(row.coeff(b).is_none(), "basic column not unit");
                    }
                }
                debug_assert!(self.obj.coeff(b).is_none(), "reduced cost of basic var not 0");
                debug_assert!(!self.rhs[i].is_negative(), "negative rhs");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::int;

    fn r(v: i64) -> Ratio {
        int(v)
    }

    fn row(dense: &[i64]) -> SparseRow {
        let dense: Vec<Ratio> = dense.iter().map(|&v| int(v)).collect();
        SparseRow::from_dense(&dense)
    }

    #[test]
    fn sparse_row_basics() {
        let mut a = row(&[0, 3, 0, -2]);
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.get(1), r(3));
        assert_eq!(a.get(0), r(0));
        assert!(a.coeff(2).is_none());
        a.set(2, r(5));
        a.set(1, r(0));
        assert_eq!(a.iter().map(|(j, _)| j).collect::<Vec<_>>(), vec![2, 3]);
        a.scale(&r(2));
        assert_eq!(a.get(2), r(10));
        assert_eq!(a.get(3), r(-4));
    }

    #[test]
    fn axpy_merges_and_cancels() {
        let mut a = row(&[1, 0, 2, 3]);
        let b = row(&[0, 5, -1, 3]);
        // a += (-1) * b: entry 3 cancels (3 + -3 = 0).
        a.axpy(&r(-1), &b);
        assert_eq!(a.get(0), r(1));
        assert_eq!(a.get(1), r(-5));
        assert_eq!(a.get(2), r(3));
        assert!(a.coeff(3).is_none());
        assert_eq!(a.nnz(), 3);
        // No-ops.
        a.axpy(&r(0), &b);
        a.axpy(&r(7), &SparseRow::empty());
        assert_eq!(a.nnz(), 3);
    }

    #[test]
    fn pivot_produces_unit_column() {
        // x + y = 4 (slack s0 basic), 2x + y = 6 (slack s1 basic)
        let mut t = Tableau {
            rows: vec![row(&[1, 1, 1, 0]), row(&[2, 1, 0, 1])],
            rhs: vec![r(4), r(6)],
            basis: vec![2, 3],
            obj: row(&[3, 2, 0, 0]),
            obj_val: r(0),
            n_cols: 4,
        };
        t.pivot(1, 0); // x enters on row 1
        assert_eq!(t.rows[1].get(0), r(1));
        assert!(t.rows[0].coeff(0).is_none());
        assert_eq!(t.basis, vec![2, 0]);
        assert_eq!(t.value_of(0), r(3));
        assert_eq!(t.rhs[0], r(1));
        // obj row updated: 3x + 2y with x = 3 - y/2 - s1/2
        assert_eq!(t.obj_val, r(9));
        t.debug_check();
    }

    #[test]
    fn canonicalize_objective_zeroes_basic_costs() {
        let mut t = Tableau {
            rows: vec![row(&[1, 2, 1])],
            rhs: vec![r(5)],
            basis: vec![0],
            obj: row(&[4, 1, 0]),
            obj_val: r(0),
            n_cols: 3,
        };
        t.canonicalize_objective();
        assert!(t.obj.coeff(0).is_none());
        assert_eq!(t.obj.get(1), r(-7));
        assert_eq!(t.obj_val, r(20));
        t.debug_check();
    }
}
