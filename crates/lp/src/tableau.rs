//! Dense simplex tableau with exact rational entries.

use car_arith::Ratio;

/// A simplex tableau in canonical form: every basic column is a unit
/// vector, all right-hand sides are nonnegative, and an objective row of
/// reduced costs is maintained alongside.
///
/// The tableau represents the constraints `A·x = b, x ≥ 0` together with
/// an objective `z = obj_val + Σ obj[j]·x_j` expressed over the current
/// nonbasic variables.
#[derive(Debug, Clone)]
pub(crate) struct Tableau {
    /// Constraint coefficient rows (length `n_cols` each).
    pub rows: Vec<Vec<Ratio>>,
    /// Right-hand sides, one per row; invariant: nonnegative.
    pub rhs: Vec<Ratio>,
    /// Column index of the basic variable of each row.
    pub basis: Vec<usize>,
    /// Reduced-cost row (length `n_cols`).
    pub obj: Vec<Ratio>,
    /// Objective value at the current basic solution.
    pub obj_val: Ratio,
    /// Total number of columns (structural + slack + artificial).
    pub n_cols: usize,
}

impl Tableau {
    /// Pivots on `(row, col)`: `col` enters the basis, the variable basic
    /// in `row` leaves. Requires a nonzero pivot entry.
    pub fn pivot(&mut self, row: usize, col: usize) {
        let pivot = self.rows[row][col].clone();
        debug_assert!(!pivot.is_zero(), "pivot on zero entry");
        let inv = pivot.recip();
        for entry in &mut self.rows[row] {
            *entry *= &inv;
        }
        self.rhs[row] *= &inv;

        let pivot_row = self.rows[row].clone();
        let pivot_rhs = self.rhs[row].clone();
        // The systems this solver sees are very sparse; touching only the
        // nonzero pivot-row columns is the dominant speedup.
        let nonzero_cols: Vec<usize> =
            (0..self.n_cols).filter(|&j| !pivot_row[j].is_zero()).collect();
        for i in 0..self.rows.len() {
            if i == row {
                continue;
            }
            let factor = self.rows[i][col].clone();
            if factor.is_zero() {
                continue;
            }
            for &j in &nonzero_cols {
                let delta = &factor * &pivot_row[j];
                self.rows[i][j] -= &delta;
            }
            self.rhs[i] -= &(&factor * &pivot_rhs);
        }

        let factor = self.obj[col].clone();
        if !factor.is_zero() {
            for &j in &nonzero_cols {
                let delta = &factor * &pivot_row[j];
                self.obj[j] -= &delta;
            }
            self.obj_val += &(&factor * &pivot_rhs);
        }

        self.basis[row] = col;
    }

    /// Reads the value of column `col` at the current basic solution.
    pub fn value_of(&self, col: usize) -> Ratio {
        for (i, &b) in self.basis.iter().enumerate() {
            if b == col {
                return self.rhs[i].clone();
            }
        }
        Ratio::zero()
    }

    /// Rewrites the objective row so that reduced costs of basic columns
    /// are zero (canonical form), given raw costs already stored in
    /// `self.obj` with `self.obj_val = 0`.
    pub fn canonicalize_objective(&mut self) {
        for i in 0..self.rows.len() {
            let k = self.obj[self.basis[i]].clone();
            if k.is_zero() {
                continue;
            }
            for j in 0..self.n_cols {
                if self.rows[i][j].is_zero() {
                    continue;
                }
                let delta = &k * &self.rows[i][j];
                self.obj[j] -= &delta;
            }
            self.obj_val += &(&k * &self.rhs[i]);
        }
    }

    /// Asserts canonical-form invariants (debug builds only).
    pub fn debug_check(&self) {
        if cfg!(debug_assertions) {
            for (i, &b) in self.basis.iter().enumerate() {
                debug_assert!(self.rows[i][b] == Ratio::one(), "basic entry not 1");
                for (k, row) in self.rows.iter().enumerate() {
                    if k != i {
                        debug_assert!(row[b].is_zero(), "basic column not unit");
                    }
                }
                debug_assert!(self.obj[b].is_zero(), "reduced cost of basic var not 0");
                debug_assert!(!self.rhs[i].is_negative(), "negative rhs");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::int;

    fn r(v: i64) -> Ratio {
        int(v)
    }

    #[test]
    fn pivot_produces_unit_column() {
        // x + y = 4 (slack s0 basic), 2x + y = 6 (slack s1 basic)
        let mut t = Tableau {
            rows: vec![
                vec![r(1), r(1), r(1), r(0)],
                vec![r(2), r(1), r(0), r(1)],
            ],
            rhs: vec![r(4), r(6)],
            basis: vec![2, 3],
            obj: vec![r(3), r(2), r(0), r(0)],
            obj_val: r(0),
            n_cols: 4,
        };
        t.pivot(1, 0); // x enters on row 1
        assert_eq!(t.rows[1][0], r(1));
        assert!(t.rows[0][0].is_zero());
        assert_eq!(t.basis, vec![2, 0]);
        assert_eq!(t.value_of(0), r(3));
        assert_eq!(t.rhs[0], r(1));
        // obj row updated: 3x + 2y with x = 3 - y/2 - s1/2
        assert_eq!(t.obj_val, r(9));
        t.debug_check();
    }

    #[test]
    fn canonicalize_objective_zeroes_basic_costs() {
        let mut t = Tableau {
            rows: vec![vec![r(1), r(2), r(1)]],
            rhs: vec![r(5)],
            basis: vec![0],
            obj: vec![r(4), r(1), r(0)],
            obj_val: r(0),
            n_cols: 3,
        };
        t.canonicalize_objective();
        assert!(t.obj[0].is_zero());
        assert_eq!(t.obj[1], r(-7));
        assert_eq!(t.obj_val, r(20));
        t.debug_check();
    }
}
