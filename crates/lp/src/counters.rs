//! Monotonic per-thread pivot counter for the simplex engine.
//!
//! Tracks the deterministic work profile of the solver independently of
//! wall clock; bench telemetry reads deltas around a workload. Being
//! thread-local, a single-threaded run observes exact, reproducible
//! values (parallel workers keep their own tallies).

use std::cell::Cell;

thread_local! {
    static PIVOTS: Cell<u64> = const { Cell::new(0) };
}

/// Cumulative simplex pivots performed on this thread (monotonic;
/// subtract two snapshots to meter a region).
#[must_use]
pub fn pivot_count() -> u64 {
    PIVOTS.with(Cell::get)
}

#[inline]
pub(crate) fn count_pivot() {
    PIVOTS.with(|c| c.set(c.get() + 1));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{int, LinExpr};
    use crate::problem::{Problem, Relation};

    #[test]
    fn pivots_advance_monotonically() {
        let before = pivot_count();
        let mut p = Problem::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        p.add_constraint(LinExpr::from_terms([(x, 6), (y, 4)]), Relation::Le, int(24));
        p.add_constraint(LinExpr::from_terms([(x, 1), (y, 2)]), Relation::Le, int(6));
        let _ = p.maximize(&LinExpr::from_terms([(x, 5), (y, 4)]));
        assert!(pivot_count() > before);
    }
}
