//! Farkas certificates of infeasibility.
//!
//! When a system `{ A·x {≤,≥,=} b, x ≥ 0 }` has no solution, a *Farkas
//! certificate* is a vector of constraint multipliers whose combination
//! is self-contradictory: multipliers are nonnegative on `≤`-rows,
//! nonpositive on `≥`-rows and free on `=`-rows; the combined coefficient
//! of every variable is nonnegative while the combined right-hand side is
//! negative. Any `x ≥ 0` would then satisfy
//! `0 ≤ (Σ zᵢ aᵢ)·x ≤ Σ zᵢ bᵢ < 0` — impossible.
//!
//! Certificates are *checkable without trusting the solver*:
//! [`FarkasCertificate::verify`] re-evaluates the combination with exact
//! arithmetic directly against the problem. The CAR reasoner uses this
//! to make unsatisfiability answers independently auditable, mirroring
//! how extracted models make satisfiability answers auditable.

use crate::expr::LinExpr;
use crate::problem::{Problem, Relation};
use car_arith::Ratio;

/// An infeasibility certificate: one multiplier per constraint, in the
/// order the constraints were added to the [`Problem`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FarkasCertificate {
    /// The constraint multipliers `zᵢ`.
    pub multipliers: Vec<Ratio>,
}

impl FarkasCertificate {
    /// Checks the certificate against a problem with exact arithmetic:
    ///
    /// 1. sign conditions: `zᵢ ≥ 0` for `≤`-constraints, `zᵢ ≤ 0` for
    ///    `≥`-constraints (equalities are free);
    /// 2. `Σ zᵢ aᵢⱼ ≥ 0` for every variable `j`;
    /// 3. `Σ zᵢ bᵢ < 0`.
    ///
    /// A `true` result proves — independently of any simplex run — that
    /// no `x ≥ 0` satisfies all constraints.
    #[must_use]
    pub fn verify(&self, problem: &Problem) -> bool {
        if self.multipliers.len() != problem.num_constraints() {
            return false;
        }
        let mut combined = LinExpr::zero();
        let mut rhs = Ratio::zero();
        for (constraint, z) in problem.constraints().iter().zip(&self.multipliers) {
            match constraint.rel {
                Relation::Le if z.is_negative() => return false,
                Relation::Ge if z.is_positive() => return false,
                _ => {}
            }
            if z.is_zero() {
                continue;
            }
            combined.add_scaled(&constraint.expr, z);
            rhs += &(z * &constraint.rhs);
        }
        combined.iter().all(|(_, coeff)| !coeff.is_negative()) && rhs.is_negative()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{int, VarId};

    fn ge(p: &mut Problem, terms: &[(usize, i64)], rhs: i64) {
        p.add_constraint(
            LinExpr::from_terms(terms.iter().map(|&(v, c)| (VarId(v), c))),
            Relation::Ge,
            int(rhs),
        );
    }
    fn le(p: &mut Problem, terms: &[(usize, i64)], rhs: i64) {
        p.add_constraint(
            LinExpr::from_terms(terms.iter().map(|&(v, c)| (VarId(v), c))),
            Relation::Le,
            int(rhs),
        );
    }

    #[test]
    fn hand_built_certificate_verifies() {
        // x >= 2 and x <= 1: multipliers z = (-1, 1):
        // -1·(x) + 1·(x) = 0 >= 0 coefficients; rhs -2 + 1 = -1 < 0.
        let mut p = Problem::new();
        p.add_var("x");
        ge(&mut p, &[(0, 1)], 2);
        le(&mut p, &[(0, 1)], 1);
        let cert = FarkasCertificate { multipliers: vec![-int(1), int(1)] };
        assert!(cert.verify(&p));
    }

    #[test]
    fn wrong_signs_or_lengths_are_rejected() {
        let mut p = Problem::new();
        p.add_var("x");
        ge(&mut p, &[(0, 1)], 2);
        le(&mut p, &[(0, 1)], 1);
        // Positive multiplier on the >=-row: sign violation.
        let bad = FarkasCertificate { multipliers: vec![int(1), int(1)] };
        assert!(!bad.verify(&p));
        // Wrong length.
        let short = FarkasCertificate { multipliers: vec![int(1)] };
        assert!(!short.verify(&p));
        // Valid signs but no contradiction (combined rhs >= 0).
        let weak = FarkasCertificate { multipliers: vec![Ratio::zero(), int(1)] };
        assert!(!weak.verify(&p));
    }

    #[test]
    fn certificate_for_feasible_system_cannot_verify() {
        let mut p = Problem::new();
        p.add_var("x");
        le(&mut p, &[(0, 1)], 5);
        for z in [int(1), int(0), -int(3)] {
            let cert = FarkasCertificate { multipliers: vec![z] };
            // Soundness of the checker: a feasible system admits no
            // verifying certificate whatsoever.
            assert!(!cert.verify(&p) || p.feasible_point().is_none());
        }
    }

    #[test]
    fn extracted_certificates_verify_on_infeasible_systems() {
        // A family of infeasible systems; the solver-extracted
        // certificate must verify on each.
        let mut cases: Vec<Problem> = Vec::new();
        {
            let mut p = Problem::new();
            p.add_var("x");
            ge(&mut p, &[(0, 1)], 3);
            le(&mut p, &[(0, 1)], 2);
            cases.push(p);
        }
        {
            // x + y >= 4, x <= 1, y <= 2.
            let mut p = Problem::new();
            p.add_var("x");
            p.add_var("y");
            ge(&mut p, &[(0, 1), (1, 1)], 4);
            le(&mut p, &[(0, 1)], 1);
            le(&mut p, &[(1, 1)], 2);
            cases.push(p);
        }
        {
            // Equality clash: x + y = 1, x + y >= 3.
            let mut p = Problem::new();
            p.add_var("x");
            p.add_var("y");
            p.add_constraint(
                LinExpr::from_terms([(VarId(0), 1), (VarId(1), 1)]),
                Relation::Eq,
                int(1),
            );
            ge(&mut p, &[(0, 1), (1, 1)], 3);
            cases.push(p);
        }
        {
            // Homogeneous + probe shape (the reasoner's use-case):
            // 2x <= y, 2y <= x force both zero; x >= 1 contradicts.
            let mut p = Problem::new();
            p.add_var("x");
            p.add_var("y");
            le(&mut p, &[(0, 2), (1, -1)], 0);
            le(&mut p, &[(1, 2), (0, -1)], 0);
            ge(&mut p, &[(0, 1)], 1);
            cases.push(p);
        }
        for (i, p) in cases.iter().enumerate() {
            assert!(p.feasible_point().is_none(), "case {i} must be infeasible");
            let cert = p
                .certify_infeasible()
                .unwrap_or_else(|| panic!("case {i}: no certificate extracted"));
            assert!(cert.verify(p), "case {i}: certificate failed verification");
        }
    }

    mod properties {
        use super::*;
        use crate::expr::VarId;
        use crate::Relation;
        use proptest::prelude::*;

        fn arb_problem() -> impl Strategy<Value = Problem> {
            let constraint =
                (proptest::collection::vec(-3i64..4, 3), 0usize..3, -6i64..7);
            proptest::collection::vec(constraint, 1..6).prop_map(|rows| {
                let mut p = Problem::new();
                for i in 0..3 {
                    p.add_var(format!("v{i}"));
                }
                for (coeffs, rel, rhs) in rows {
                    let expr = LinExpr::from_terms(
                        coeffs.iter().enumerate().map(|(v, &c)| (VarId(v), c)),
                    );
                    let rel = match rel {
                        0 => Relation::Le,
                        1 => Relation::Ge,
                        _ => Relation::Eq,
                    };
                    p.add_constraint(expr, rel, int(rhs));
                }
                p
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Exactly one of: a feasible point, or a verifying Farkas
            /// certificate — never both, never neither.
            #[test]
            fn prop_feasibility_dichotomy(p in arb_problem()) {
                match (p.feasible_point(), p.certify_infeasible()) {
                    (Some(point), None) => prop_assert!(p.check_point(&point)),
                    (None, Some(cert)) => prop_assert!(cert.verify(&p)),
                    (feas, cert) => prop_assert!(
                        false,
                        "dichotomy violated: feasible={} cert={}",
                        feas.is_some(),
                        cert.is_some()
                    ),
                }
            }
        }
    }

    #[test]
    fn feasible_system_yields_no_certificate() {
        let mut p = Problem::new();
        p.add_var("x");
        ge(&mut p, &[(0, 1)], 1);
        le(&mut p, &[(0, 1)], 2);
        assert!(p.certify_infeasible().is_none());
    }
}
