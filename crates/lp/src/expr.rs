//! Sparse linear expressions over problem variables.

use car_arith::Ratio;
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a decision variable inside one [`crate::Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Position of the variable in solution vectors.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// A sparse linear expression `Σ cᵢ·xᵢ` (no constant term).
///
/// Zero coefficients are never stored, so two expressions are equal iff
/// they denote the same linear form.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LinExpr {
    terms: BTreeMap<VarId, Ratio>,
}

impl LinExpr {
    /// The zero expression.
    #[must_use]
    pub fn zero() -> LinExpr {
        LinExpr::default()
    }

    /// A single variable with coefficient one.
    #[must_use]
    pub fn var(v: VarId) -> LinExpr {
        let mut e = LinExpr::zero();
        e.add_term(v, Ratio::one());
        e
    }

    /// Builds an expression from `(variable, integer coefficient)` pairs.
    /// Repeated variables accumulate.
    #[must_use]
    pub fn from_terms<I>(terms: I) -> LinExpr
    where
        I: IntoIterator<Item = (VarId, i64)>,
    {
        let mut e = LinExpr::zero();
        for (v, c) in terms {
            e.add_term(v, Ratio::from(c));
        }
        e
    }

    /// Adds `coeff · var` to the expression.
    pub fn add_term(&mut self, var: VarId, coeff: Ratio) {
        if coeff.is_zero() {
            return;
        }
        let entry = self.terms.entry(var).or_insert_with(Ratio::zero);
        *entry += &coeff;
        if entry.is_zero() {
            self.terms.remove(&var);
        }
    }

    /// Adds `scale · other` to the expression.
    pub fn add_scaled(&mut self, other: &LinExpr, scale: &Ratio) {
        for (v, c) in &other.terms {
            self.add_term(*v, c * scale);
        }
    }

    /// Coefficient of `var` (zero if absent).
    #[must_use]
    pub fn coeff(&self, var: VarId) -> Ratio {
        self.terms.get(&var).cloned().unwrap_or_else(Ratio::zero)
    }

    /// Iterates over `(variable, nonzero coefficient)` pairs in variable
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, &Ratio)> {
        self.terms.iter().map(|(v, c)| (*v, c))
    }

    /// `true` iff the expression has no terms.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Number of nonzero terms.
    #[must_use]
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// `true` iff the expression has no terms (alias of [`Self::is_zero`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Evaluates the expression at a point (indexed by [`VarId::index`]).
    #[must_use]
    pub fn eval(&self, point: &[Ratio]) -> Ratio {
        let mut acc = Ratio::zero();
        for (v, c) in &self.terms {
            acc += &(c * &point[v.0]);
        }
        acc
    }

    /// Largest variable index referenced, if any.
    #[must_use]
    pub fn max_var(&self) -> Option<VarId> {
        self.terms.keys().next_back().copied()
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        let mut first = true;
        for (v, c) in &self.terms {
            if first {
                if c == &Ratio::one() {
                    write!(f, "x{}", v.0)?;
                } else {
                    write!(f, "{c}·x{}", v.0)?;
                }
                first = false;
            } else if c.is_negative() {
                let a = c.abs();
                if a == Ratio::one() {
                    write!(f, " - x{}", v.0)?;
                } else {
                    write!(f, " - {a}·x{}", v.0)?;
                }
            } else if c == &Ratio::one() {
                write!(f, " + x{}", v.0)?;
            } else {
                write!(f, " + {c}·x{}", v.0)?;
            }
        }
        Ok(())
    }
}

/// Convenience: an integer coefficient as an exact [`Ratio`] (test helper).
#[cfg(test)]
#[must_use]
pub(crate) fn int(v: i64) -> Ratio {
    Ratio::from_integer(car_arith::BigInt::from(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terms_accumulate_and_cancel() {
        let v = VarId(0);
        let w = VarId(1);
        let mut e = LinExpr::from_terms([(v, 2), (w, 3), (v, -2)]);
        assert_eq!(e.coeff(v), Ratio::zero());
        assert_eq!(e.coeff(w), int(3));
        assert_eq!(e.len(), 1);
        e.add_term(w, int(-3));
        assert!(e.is_zero());
        assert!(e.is_empty());
    }

    #[test]
    fn add_scaled() {
        let v = VarId(0);
        let w = VarId(1);
        let mut e = LinExpr::from_terms([(v, 1)]);
        let other = LinExpr::from_terms([(v, 1), (w, 2)]);
        e.add_scaled(&other, &int(3));
        assert_eq!(e.coeff(v), int(4));
        assert_eq!(e.coeff(w), int(6));
    }

    #[test]
    fn eval() {
        let e = LinExpr::from_terms([(VarId(0), 2), (VarId(2), -1)]);
        let point = vec![int(3), int(100), int(4)];
        assert_eq!(e.eval(&point), int(2));
        assert_eq!(LinExpr::zero().eval(&point), Ratio::zero());
    }

    #[test]
    fn display_is_readable() {
        let e = LinExpr::from_terms([(VarId(0), 1), (VarId(1), -2), (VarId(2), 1)]);
        assert_eq!(e.to_string(), "x0 - 2·x1 + x2");
        assert_eq!(LinExpr::zero().to_string(), "0");
    }

    #[test]
    fn max_var() {
        assert_eq!(LinExpr::zero().max_var(), None);
        let e = LinExpr::from_terms([(VarId(3), 1), (VarId(7), 2)]);
        assert_eq!(e.max_var(), Some(VarId(7)));
    }
}
