//! Linear-programming problem description and public solving entry points.

use crate::expr::{LinExpr, VarId};
use crate::simplex;
use car_arith::Ratio;
use std::fmt;

/// Direction of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `expr ≤ rhs`
    Le,
    /// `expr ≥ rhs`
    Ge,
    /// `expr = rhs`
    Eq,
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Relation::Le => "<=",
            Relation::Ge => ">=",
            Relation::Eq => "=",
        })
    }
}

/// One linear constraint `expr rel rhs`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Left-hand side linear form.
    pub expr: LinExpr,
    /// Constraint direction.
    pub rel: Relation,
    /// Right-hand-side constant.
    pub rhs: Ratio,
}

impl Constraint {
    /// `true` iff `point` satisfies the constraint.
    #[must_use]
    pub fn holds_at(&self, point: &[Ratio]) -> bool {
        let lhs = self.expr.eval(point);
        match self.rel {
            Relation::Le => lhs <= self.rhs,
            Relation::Ge => lhs >= self.rhs,
            Relation::Eq => lhs == self.rhs,
        }
    }

    /// `true` iff the right-hand side is zero (the constraint is
    /// homogeneous).
    #[must_use]
    pub fn is_homogeneous(&self) -> bool {
        self.rhs.is_zero()
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.expr, self.rel, self.rhs)
    }
}

/// Result of an optimization call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveResult {
    /// No point satisfies the constraints (with all variables `≥ 0`).
    Infeasible,
    /// The objective can be improved without bound.
    Unbounded,
    /// An optimal vertex was found.
    Optimal {
        /// Optimal objective value.
        value: Ratio,
        /// Optimal point, indexed by [`VarId::index`].
        point: Vec<Ratio>,
    },
}

/// A linear program over nonnegative variables.
///
/// All variables carry the implicit bound `x ≥ 0`; constraints are added
/// with [`Problem::add_constraint`]. Solving is exact: no floating point
/// is involved anywhere.
#[derive(Debug, Clone, Default)]
pub struct Problem {
    names: Vec<String>,
    constraints: Vec<Constraint>,
}

impl Problem {
    /// An empty problem with no variables or constraints.
    #[must_use]
    pub fn new() -> Problem {
        Problem::default()
    }

    /// Adds a decision variable (implicitly `≥ 0`) and returns its id.
    pub fn add_var(&mut self, name: impl Into<String>) -> VarId {
        self.names.push(name.into());
        VarId(self.names.len() - 1)
    }

    /// Number of variables added so far.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.names.len()
    }

    /// Diagnostic name of a variable.
    #[must_use]
    pub fn var_name(&self, v: VarId) -> &str {
        &self.names[v.0]
    }

    /// Adds the constraint `expr rel rhs`.
    ///
    /// # Panics
    /// Panics if `expr` references a variable not added to this problem.
    pub fn add_constraint(&mut self, expr: LinExpr, rel: Relation, rhs: Ratio) {
        if let Some(v) = expr.max_var() {
            assert!(
                v.index() < self.names.len(),
                "constraint references unknown variable x{}",
                v.index()
            );
        }
        self.constraints.push(Constraint { expr, rel, rhs });
    }

    /// The constraints added so far.
    #[must_use]
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Number of constraints.
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// `true` iff every constraint has a zero right-hand side.
    #[must_use]
    pub fn is_homogeneous(&self) -> bool {
        self.constraints.iter().all(Constraint::is_homogeneous)
    }

    /// Maximizes `objective` subject to the constraints.
    #[must_use]
    pub fn maximize(&self, objective: &LinExpr) -> SolveResult {
        simplex::solve(self, Some(objective))
    }

    /// [`Problem::maximize`] with cooperative interruption.
    ///
    /// # Errors
    /// [`crate::LpInterrupted`] as soon as `hooks` say stop (pivot cap
    /// reached or the poll callback returned `true`).
    pub fn maximize_with_hooks(
        &self,
        objective: &LinExpr,
        hooks: &crate::SolveHooks<'_>,
    ) -> Result<SolveResult, crate::LpInterrupted> {
        simplex::solve_with_hooks(self, Some(objective), hooks)
    }

    /// Minimizes `objective` subject to the constraints.
    #[must_use]
    pub fn minimize(&self, objective: &LinExpr) -> SolveResult {
        let mut neg = LinExpr::zero();
        neg.add_scaled(objective, &-Ratio::one());
        match simplex::solve(self, Some(&neg)) {
            SolveResult::Optimal { value, point } => {
                SolveResult::Optimal { value: -value, point }
            }
            other => other,
        }
    }

    /// Returns a feasible point, or `None` if the constraints are
    /// unsatisfiable over nonnegative variables.
    #[must_use]
    pub fn feasible_point(&self) -> Option<Vec<Ratio>> {
        match simplex::solve(self, None) {
            SolveResult::Optimal { point, .. } => Some(point),
            SolveResult::Infeasible => None,
            SolveResult::Unbounded => unreachable!("feasibility has no objective"),
        }
    }

    /// Attempts to produce a [`crate::FarkasCertificate`] proving the
    /// constraints infeasible over nonnegative variables. Returns `None`
    /// when the constraints are feasible. A returned certificate has
    /// already been verified against this problem.
    #[must_use]
    pub fn certify_infeasible(&self) -> Option<crate::FarkasCertificate> {
        crate::simplex::certify(self)
    }

    /// Verifies that `point` satisfies every constraint and every implicit
    /// nonnegativity bound. Used as an independent check in tests.
    #[must_use]
    pub fn check_point(&self, point: &[Ratio]) -> bool {
        point.len() >= self.names.len()
            && point.iter().all(|v| !v.is_negative())
            && self.constraints.iter().all(|c| c.holds_at(point))
    }
}

impl fmt::Display for Problem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "variables: {}", self.names.join(", "))?;
        for c in &self.constraints {
            writeln!(f, "  {c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::int;
    use proptest::prelude::*;

    #[test]
    fn empty_problem_is_feasible() {
        let p = Problem::new();
        assert_eq!(p.feasible_point(), Some(vec![]));
        assert!(p.is_homogeneous());
    }

    #[test]
    fn nonnegativity_is_implicit() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        p.add_constraint(LinExpr::var(x), Relation::Le, int(-1));
        assert!(p.feasible_point().is_none());
    }

    #[test]
    fn check_point_catches_violations() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        p.add_constraint(LinExpr::var(x), Relation::Ge, int(2));
        assert!(p.check_point(&[int(2)]));
        assert!(p.check_point(&[int(5)]));
        assert!(!p.check_point(&[int(1)]));
        assert!(!p.check_point(&[int(-3)]));
        assert!(!p.check_point(&[]));
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn constraint_with_unknown_variable_panics() {
        let mut p = Problem::new();
        p.add_constraint(LinExpr::var(VarId(0)), Relation::Le, int(1));
    }

    #[test]
    fn display_formats() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        p.add_constraint(LinExpr::var(x), Relation::Ge, int(1));
        let s = p.to_string();
        assert!(s.contains("x0 >= 1"), "{s}");
        assert_eq!(p.var_name(x), "x");
    }

    /// Random small LPs: whatever the solver returns must be consistent —
    /// feasible points must check out, and optimal values must dominate
    /// the value at any other feasible vertex we can construct.
    fn arb_problem() -> impl Strategy<Value = Problem> {
        let constraint =
            (proptest::collection::vec(-4i64..5, 3), 0usize..3, -10i64..11);
        proptest::collection::vec(constraint, 1..6).prop_map(|rows| {
            let mut p = Problem::new();
            let vars: Vec<VarId> = (0..3).map(|i| p.add_var(format!("v{i}"))).collect();
            for (coeffs, rel, rhs) in rows {
                let expr = LinExpr::from_terms(
                    vars.iter().copied().zip(coeffs.iter().copied()),
                );
                let rel = match rel {
                    0 => Relation::Le,
                    1 => Relation::Ge,
                    _ => Relation::Eq,
                };
                p.add_constraint(expr, rel, int(rhs));
            }
            p
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_feasible_points_verify(p in arb_problem()) {
            if let Some(point) = p.feasible_point() {
                prop_assert!(p.check_point(&point), "returned infeasible point for\n{p}");
            }
        }

        #[test]
        fn prop_optimum_dominates_feasible_point(p in arb_problem()) {
            let obj = LinExpr::from_terms([(VarId(0), 1), (VarId(1), 1), (VarId(2), 1)]);
            match p.maximize(&obj) {
                SolveResult::Optimal { value, point } => {
                    prop_assert!(p.check_point(&point));
                    prop_assert_eq!(obj.eval(&point), value.clone());
                    if let Some(fp) = p.feasible_point() {
                        prop_assert!(obj.eval(&fp) <= value);
                    }
                }
                SolveResult::Infeasible => {
                    prop_assert!(p.feasible_point().is_none());
                }
                SolveResult::Unbounded => {
                    // Unbounded implies feasible.
                    prop_assert!(p.feasible_point().is_some());
                }
            }
        }

        #[test]
        fn prop_minimize_maximize_duality(p in arb_problem()) {
            let obj = LinExpr::from_terms([(VarId(0), 2), (VarId(2), -1)]);
            let max = p.maximize(&obj);
            let mut neg = LinExpr::zero();
            neg.add_scaled(&obj, &-Ratio::one());
            let min_neg = p.minimize(&neg);
            match (max, min_neg) {
                (SolveResult::Optimal { value: a, .. }, SolveResult::Optimal { value: b, .. }) => {
                    prop_assert_eq!(a, -b);
                }
                (SolveResult::Infeasible, SolveResult::Infeasible) => {}
                (SolveResult::Unbounded, SolveResult::Unbounded) => {}
                (a, b) => prop_assert!(false, "mismatch {a:?} vs {b:?}"),
            }
        }
    }
}
