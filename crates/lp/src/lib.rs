//! # car-lp — exact linear programming over the rationals
//!
//! A from-scratch two-phase primal simplex solver with Bland's
//! anti-cycling rule, computing over exact rationals
//! ([`car_arith::Ratio`]), plus a support analysis for homogeneous
//! systems ([`support`]).
//!
//! This crate is the engine behind phase 2 of the CAR satisfiability
//! algorithm (Theorem 4.3 of the paper): the system `ΨS` of linear
//! disequations derived from a schema expansion is homogeneous, so its
//! solution set is a convex cone; deciding whether an *acceptable integer*
//! solution exists reduces to a polynomial number of exact rational
//! feasibility tests (rational feasibility yields integer feasibility by
//! clearing denominators, which [`scale_to_integers`] performs).
//!
//! ## Contract
//!
//! Every variable of a [`Problem`] is implicitly constrained to be
//! **nonnegative** — exactly what the unknowns `Var(X̄)` of `ΨS` require.
//!
//! ```
//! use car_lp::{Problem, Relation, LinExpr, SolveResult};
//! use car_arith::Ratio;
//!
//! let mut p = Problem::new();
//! let x = p.add_var("x");
//! let y = p.add_var("y");
//! // x + 2y <= 14, 3x - y >= 0, x - y <= 2
//! p.add_constraint(LinExpr::from_terms([(x, 1), (y, 2)]), Relation::Le, Ratio::from(14i64));
//! p.add_constraint(LinExpr::from_terms([(x, 3), (y, -1)]), Relation::Ge, Ratio::from(0i64));
//! p.add_constraint(LinExpr::from_terms([(x, 1), (y, -1)]), Relation::Le, Ratio::from(2i64));
//! // maximize 3x + 4y  ->  optimum 34 at (6, 4)
//! match p.maximize(&LinExpr::from_terms([(x, 3), (y, 4)])) {
//!     SolveResult::Optimal { value, point } => {
//!         assert_eq!(value, Ratio::from(34i64));
//!         assert_eq!(point[x.index()], Ratio::from(6i64));
//!         assert_eq!(point[y.index()], Ratio::from(4i64));
//!     }
//!     other => panic!("unexpected: {other:?}"),
//! }
//! ```

mod colgen;
mod cone;
mod counters;
mod expr;
mod farkas;
mod problem;
mod simplex;
mod tableau;

pub use colgen::{MasterStatus, RestrictedMaster};
pub use cone::{scale_to_integers, support, try_support, SupportAnalysis};
pub use counters::pivot_count;
pub use expr::{LinExpr, VarId};
pub use farkas::FarkasCertificate;
pub use problem::{Constraint, Problem, Relation, SolveResult};
pub use simplex::{LpInterrupted, SolveHooks};
