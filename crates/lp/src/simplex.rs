//! Two-phase primal simplex with Bland's anti-cycling rule.

use crate::expr::LinExpr;
use crate::problem::{Problem, Relation, SolveResult};
use crate::tableau::{SparseRow, Tableau};
use car_arith::Ratio;
use std::fmt;

/// A solve was interrupted by a [`SolveHooks`] condition (pivot cap hit
/// or external poll returned `true`) before reaching a verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LpInterrupted;

impl fmt::Display for LpInterrupted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("linear program interrupted before completion")
    }
}

impl std::error::Error for LpInterrupted {}

/// Cooperative interruption hooks for the simplex loops.
///
/// `max_pivots` caps the *total* pivot count of a solve (across both
/// phases); `poll` is consulted once per pivot and interrupts the solve
/// when it returns `true`. The default hooks never interrupt.
#[derive(Clone, Copy, Default)]
pub struct SolveHooks<'a> {
    /// Cap on total pivots across phase 1 and phase 2.
    pub max_pivots: Option<u64>,
    /// External stop condition, polled once per pivot.
    pub poll: Option<&'a (dyn Fn() -> bool + Sync)>,
}

impl fmt::Debug for SolveHooks<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SolveHooks")
            .field("max_pivots", &self.max_pivots)
            .field("poll", &self.poll.map(|_| "..."))
            .finish()
    }
}

impl SolveHooks<'_> {
    /// `Err(LpInterrupted)` once the hooks say stop.
    fn check(&self, pivots: u64) -> Result<(), LpInterrupted> {
        if self.max_pivots.is_some_and(|max| pivots >= max) {
            return Err(LpInterrupted);
        }
        if self.poll.is_some_and(|poll| poll()) {
            return Err(LpInterrupted);
        }
        Ok(())
    }
}

/// Outcome of running the pivoting loop to optimality.
pub(crate) enum LoopResult {
    Optimal,
    Unbounded,
}

/// Runs Bland-rule pivoting until no reduced cost is positive
/// (maximization) or the problem is detected unbounded.
///
/// `enterable` marks the columns allowed to enter the basis (used to keep
/// artificial columns out during phase 2). `total_pivots` accumulates
/// across calls so `hooks.max_pivots` caps a whole solve, not one phase.
pub(crate) fn optimize(
    t: &mut Tableau,
    enterable: &[bool],
    hooks: &SolveHooks<'_>,
    total_pivots: &mut u64,
) -> Result<LoopResult, LpInterrupted> {
    // Dantzig pricing (most positive reduced cost) is fast in practice
    // but can cycle on degenerate problems; after a generous pivot
    // budget, switch permanently to Bland's rule, which cannot cycle —
    // so termination is guaranteed while typical runs stay short.
    let bland_after = 4 * (t.rows.len() + t.n_cols) + 64;
    let mut pivots = 0usize;
    loop {
        hooks.check(*total_pivots)?;
        let use_bland = pivots >= bland_after;
        // Pricing iterates only the nonzeros of the reduced-cost row,
        // in increasing column order (so Bland's "first eligible" and
        // Dantzig's "first maximum" tie-breaks match a dense scan).
        let col = if use_bland {
            t.obj
                .iter()
                .find(|&(j, v)| enterable[j] && v.is_positive())
                .map(|(j, _)| j)
        } else {
            let mut best: Option<(usize, &Ratio)> = None;
            for (j, v) in t.obj.iter() {
                if enterable[j] && v.is_positive() && best.is_none_or(|(_, bv)| v > bv) {
                    best = Some((j, v));
                }
            }
            best.map(|(j, _)| j)
        };
        let Some(col) = col else {
            return Ok(LoopResult::Optimal);
        };
        // Ratio test; on ties pick the row whose basic variable has the
        // smallest column index (Bland's leaving rule — harmless under
        // Dantzig pricing and required once Bland pricing is active).
        let mut best: Option<(usize, Ratio)> = None;
        for i in 0..t.rows.len() {
            let Some(entry) = t.rows[i].coeff(col) else {
                continue;
            };
            if !entry.is_positive() {
                continue;
            }
            let ratio = &t.rhs[i] / entry;
            match &best {
                None => best = Some((i, ratio)),
                Some((bi, br)) => {
                    if ratio < *br || (ratio == *br && t.basis[i] < t.basis[*bi]) {
                        best = Some((i, ratio));
                    }
                }
            }
        }
        let Some((row, _)) = best else {
            return Ok(LoopResult::Unbounded);
        };
        t.pivot(row, col);
        pivots += 1;
        *total_pivots += 1;
    }
}

/// A problem converted to standard form `A·x = b, b ≥ 0` with slack,
/// surplus and artificial columns appended after the structural ones.
pub(crate) struct Standardized {
    pub(crate) tableau: Tableau,
    pub(crate) n_structural: usize,
    /// `true` per column iff it is artificial.
    pub(crate) is_artificial: Vec<bool>,
    pub(crate) has_artificials: bool,
    /// Per row: the slack/artificial column that formed the initial
    /// basis (used to read simplex multipliers off the phase-1 tableau).
    pub(crate) init_basis_cols: Vec<usize>,
    /// Per row: whether the original constraint was negated to make its
    /// right-hand side nonnegative.
    pub(crate) negated: Vec<bool>,
}

/// Builds the standard-form tableau with an all-slack/artificial basis.
pub(crate) fn standardize(problem: &Problem) -> Standardized {
    let n = problem.num_vars();
    let m = problem.constraints().len();

    // One pass to count extra columns.
    let mut n_cols = n;
    for c in problem.constraints() {
        let rhs_neg = c.rhs.is_negative();
        let rel = effective_relation(c.rel, rhs_neg);
        match rel {
            Relation::Le => n_cols += 1,
            Relation::Ge => n_cols += 2,
            Relation::Eq => n_cols += 1,
        }
    }

    let mut rows = Vec::with_capacity(m);
    let mut rhs = Vec::with_capacity(m);
    let mut basis = Vec::with_capacity(m);
    let mut is_artificial = vec![false; n_cols];
    let mut next_col = n;
    let mut has_artificials = false;
    let mut negated_flags = Vec::with_capacity(m);

    for c in problem.constraints() {
        let mut row = vec![Ratio::zero(); n_cols];
        let negate = c.rhs.is_negative();
        for (v, coeff) in c.expr.iter() {
            row[v.index()] = if negate { -coeff } else { coeff.clone() };
        }
        let b = if negate { -&c.rhs } else { c.rhs.clone() };
        let rel = effective_relation(c.rel, negate);
        match rel {
            Relation::Le => {
                row[next_col] = Ratio::one();
                basis.push(next_col);
                next_col += 1;
            }
            Relation::Ge => {
                row[next_col] = -Ratio::one(); // surplus
                next_col += 1;
                row[next_col] = Ratio::one(); // artificial
                is_artificial[next_col] = true;
                has_artificials = true;
                basis.push(next_col);
                next_col += 1;
            }
            Relation::Eq => {
                row[next_col] = Ratio::one(); // artificial
                is_artificial[next_col] = true;
                has_artificials = true;
                basis.push(next_col);
                next_col += 1;
            }
        }
        rows.push(SparseRow::from_dense(&row));
        rhs.push(b);
        negated_flags.push(negate);
    }
    debug_assert_eq!(next_col, n_cols);
    let init_basis_cols = basis.clone();

    let tableau = Tableau {
        rows,
        rhs,
        basis,
        obj: SparseRow::empty(),
        obj_val: Ratio::zero(),
        n_cols,
    };
    Standardized {
        tableau,
        n_structural: n,
        is_artificial,
        has_artificials,
        init_basis_cols,
        negated: negated_flags,
    }
}

/// The relation after normalizing the right-hand side to be nonnegative.
fn effective_relation(rel: Relation, negated: bool) -> Relation {
    if !negated {
        return rel;
    }
    match rel {
        Relation::Le => Relation::Ge,
        Relation::Ge => Relation::Le,
        Relation::Eq => Relation::Eq,
    }
}

/// Runs phase 1 (drive artificials to zero). Returns `false` if the
/// problem is infeasible. On success the tableau is feasible and no
/// artificial column is basic.
fn phase1(
    s: &mut Standardized,
    hooks: &SolveHooks<'_>,
    total_pivots: &mut u64,
) -> Result<bool, LpInterrupted> {
    if !s.has_artificials {
        return Ok(true);
    }
    let t = &mut s.tableau;
    // Maximize W = -Σ artificials: raw costs -1 on artificial columns.
    t.obj = SparseRow::empty();
    for (j, &artificial) in s.is_artificial.iter().enumerate() {
        if artificial {
            t.obj.set(j, -Ratio::one());
        }
    }
    t.obj_val = Ratio::zero();
    t.canonicalize_objective();

    let enterable: Vec<bool> = (0..t.n_cols).map(|j| !s.is_artificial[j]).collect();
    match optimize(t, &enterable, hooks, total_pivots)? {
        LoopResult::Unbounded => unreachable!("phase-1 objective is bounded above by 0"),
        LoopResult::Optimal => {}
    }
    if t.obj_val.is_negative() {
        return Ok(false); // some artificial stuck positive
    }

    // Drive remaining (degenerate, zero-valued) artificials out of the
    // basis; rows with no structural pivot available are redundant.
    let mut i = 0;
    while i < s.tableau.basis.len() {
        let b = s.tableau.basis[i];
        if s.is_artificial[b] {
            debug_assert!(s.tableau.rhs[i].is_zero());
            // Sparse iteration is in increasing column order, matching
            // the dense scan's choice of pivot column.
            let pivot_col = s.tableau.rows[i]
                .iter()
                .map(|(j, _)| j)
                .find(|&j| !s.is_artificial[j]);
            match pivot_col {
                Some(j) => s.tableau.pivot(i, j),
                None => {
                    // Redundant constraint: remove the row entirely.
                    s.tableau.rows.remove(i);
                    s.tableau.rhs.remove(i);
                    s.tableau.basis.remove(i);
                    continue;
                }
            }
        }
        i += 1;
    }
    Ok(true)
}

/// Solves `maximize objective` (or just feasibility when `objective` is
/// `None`) over the problem's constraints with all variables `≥ 0`.
pub(crate) fn solve(problem: &Problem, objective: Option<&LinExpr>) -> SolveResult {
    match solve_with_hooks(problem, objective, &SolveHooks::default()) {
        Ok(result) => result,
        Err(LpInterrupted) => unreachable!("default hooks never interrupt"),
    }
}

/// [`solve`] with cooperative interruption: checks `hooks` once per pivot
/// and returns `Err(LpInterrupted)` as soon as they say stop.
pub(crate) fn solve_with_hooks(
    problem: &Problem,
    objective: Option<&LinExpr>,
    hooks: &SolveHooks<'_>,
) -> Result<SolveResult, LpInterrupted> {
    if let Some(obj) = objective {
        if let Some(v) = obj.max_var() {
            assert!(
                v.index() < problem.num_vars(),
                "objective references unknown variable x{}",
                v.index()
            );
        }
    }

    let mut total_pivots = 0u64;
    let mut s = standardize(problem);
    if !phase1(&mut s, hooks, &mut total_pivots)? {
        return Ok(SolveResult::Infeasible);
    }

    let enterable: Vec<bool> =
        (0..s.tableau.n_cols).map(|j| !s.is_artificial[j]).collect();

    if let Some(obj) = objective {
        let t = &mut s.tableau;
        t.obj = SparseRow::empty();
        t.obj_val = Ratio::zero();
        for (v, c) in obj.iter() {
            t.obj.set(v.index(), c.clone());
        }
        t.canonicalize_objective();
        if let LoopResult::Unbounded = optimize(t, &enterable, hooks, &mut total_pivots)? {
            return Ok(SolveResult::Unbounded);
        }
    }

    s.tableau.debug_check();
    let point: Vec<Ratio> = (0..s.n_structural).map(|j| s.tableau.value_of(j)).collect();
    let value = match objective {
        Some(obj) => obj.eval(&point),
        None => Ratio::zero(),
    };
    debug_assert!(objective.is_none() || value == s.tableau.obj_val);
    Ok(SolveResult::Optimal { value, point })
}

/// Attempts to extract a Farkas infeasibility certificate. `None` means
/// the constraints are feasible.
pub(crate) fn certify(problem: &Problem) -> Option<crate::FarkasCertificate> {
    let mut s = standardize(problem);
    let mut total_pivots = 0u64;
    match phase1(&mut s, &SolveHooks::default(), &mut total_pivots) {
        Ok(true) => return None,
        Ok(false) => {}
        Err(LpInterrupted) => unreachable!("default hooks never interrupt"),
    }
    // Phase 1 stalled with a positive artificial sum: read the simplex
    // multipliers y off the reduced costs of each row's initial basis
    // column (cost 0 for slacks, -1 for artificials), then undo the
    // rhs-sign normalization. See `car-lp`'s farkas module for why the
    // result certifies infeasibility; the certificate is re-verified
    // exactly before being returned.
    let t = &s.tableau;
    let multipliers: Vec<Ratio> = s
        .init_basis_cols
        .iter()
        .zip(&s.negated)
        .map(|(&col, &negated)| {
            let cost = if s.is_artificial[col] { -Ratio::one() } else { Ratio::zero() };
            let y = &cost - &t.obj.get(col);
            if negated {
                -y
            } else {
                y
            }
        })
        .collect();
    let cert = crate::FarkasCertificate { multipliers };
    debug_assert!(cert.verify(problem), "extracted certificate must verify");
    cert.verify(problem).then_some(cert)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{int, VarId};

    fn le(p: &mut Problem, terms: &[(VarId, i64)], rhs: i64) {
        p.add_constraint(LinExpr::from_terms(terms.iter().copied()), Relation::Le, int(rhs));
    }
    fn ge(p: &mut Problem, terms: &[(VarId, i64)], rhs: i64) {
        p.add_constraint(LinExpr::from_terms(terms.iter().copied()), Relation::Ge, int(rhs));
    }
    fn eq(p: &mut Problem, terms: &[(VarId, i64)], rhs: i64) {
        p.add_constraint(LinExpr::from_terms(terms.iter().copied()), Relation::Eq, int(rhs));
    }

    #[test]
    fn textbook_maximization() {
        // max 5x + 4y s.t. 6x + 4y <= 24, x + 2y <= 6 -> 21 at (3, 3/2)
        let mut p = Problem::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        le(&mut p, &[(x, 6), (y, 4)], 24);
        le(&mut p, &[(x, 1), (y, 2)], 6);
        match p.maximize(&LinExpr::from_terms([(x, 5), (y, 4)])) {
            SolveResult::Optimal { value, point } => {
                assert_eq!(value, int(21));
                assert_eq!(point[0], int(3));
                assert_eq!(point[1], Ratio::new(3.into(), 2.into()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn infeasible_system() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        le(&mut p, &[(x, 1)], 1);
        ge(&mut p, &[(x, 1)], 2);
        assert!(matches!(p.maximize(&LinExpr::var(x)), SolveResult::Infeasible));
        assert!(p.feasible_point().is_none());
    }

    #[test]
    fn unbounded_objective() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        ge(&mut p, &[(x, 1), (y, -1)], 0);
        assert!(matches!(p.maximize(&LinExpr::var(x)), SolveResult::Unbounded));
    }

    #[test]
    fn equality_constraints() {
        // x + y = 10, x - y = 4 -> x = 7, y = 3
        let mut p = Problem::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        eq(&mut p, &[(x, 1), (y, 1)], 10);
        eq(&mut p, &[(x, 1), (y, -1)], 4);
        let point = p.feasible_point().expect("feasible");
        assert_eq!(point[0], int(7));
        assert_eq!(point[1], int(3));
    }

    #[test]
    fn negative_rhs_normalization() {
        // -x <= -3  <=>  x >= 3
        let mut p = Problem::new();
        let x = p.add_var("x");
        p.add_constraint(LinExpr::from_terms([(x, -1)]), Relation::Le, int(-3));
        le(&mut p, &[(x, 1)], 5);
        match p.maximize(&LinExpr::from_terms([(x, -1)])) {
            SolveResult::Optimal { point, .. } => assert_eq!(point[0], int(3)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn redundant_equality_rows_are_dropped() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        eq(&mut p, &[(x, 1), (y, 1)], 4);
        eq(&mut p, &[(x, 2), (y, 2)], 8); // same hyperplane
        match p.maximize(&LinExpr::var(x)) {
            SolveResult::Optimal { value, .. } => assert_eq!(value, int(4)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn degenerate_cycling_guard() {
        // Classic Beale cycling example; Bland's rule must terminate.
        // max 0.75a - 150b + 0.02c - 6d
        // s.t. 0.25a - 60b - 0.04c + 9d <= 0
        //      0.5a - 90b - 0.02c + 3d <= 0
        //      c <= 1
        let mut p = Problem::new();
        let a = p.add_var("a");
        let b = p.add_var("b");
        let c = p.add_var("c");
        let d = p.add_var("d");
        let q = |n: i64, den: i64| Ratio::new(n.into(), den.into());
        let mut e1 = LinExpr::zero();
        e1.add_term(a, q(1, 4));
        e1.add_term(b, int(-60));
        e1.add_term(c, q(-1, 25));
        e1.add_term(d, int(9));
        p.add_constraint(e1, Relation::Le, int(0));
        let mut e2 = LinExpr::zero();
        e2.add_term(a, q(1, 2));
        e2.add_term(b, int(-90));
        e2.add_term(c, q(-1, 50));
        e2.add_term(d, int(3));
        p.add_constraint(e2, Relation::Le, int(0));
        p.add_constraint(LinExpr::var(c), Relation::Le, int(1));
        let mut obj = LinExpr::zero();
        obj.add_term(a, q(3, 4));
        obj.add_term(b, int(-150));
        obj.add_term(c, q(1, 50));
        obj.add_term(d, int(-6));
        match p.maximize(&obj) {
            SolveResult::Optimal { value, .. } => {
                assert_eq!(value, q(1, 20));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn minimize_is_negated_maximize() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        ge(&mut p, &[(x, 1)], 3);
        le(&mut p, &[(x, 1)], 10);
        match p.minimize(&LinExpr::var(x)) {
            SolveResult::Optimal { value, point } => {
                assert_eq!(value, int(3));
                assert_eq!(point[0], int(3));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn feasible_point_satisfies_all_constraints() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        let z = p.add_var("z");
        ge(&mut p, &[(x, 2), (y, 1)], 7);
        le(&mut p, &[(y, 1), (z, 3)], 12);
        eq(&mut p, &[(x, 1), (z, -1)], 0);
        let point = p.feasible_point().expect("feasible");
        assert!(p.check_point(&point));
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn objective_with_unknown_variable_panics() {
        let p = Problem::new();
        let _ = p.maximize(&LinExpr::var(VarId(5)));
    }

    #[test]
    fn pivot_cap_interrupts() {
        // The textbook problem needs at least one pivot; a zero cap must
        // interrupt rather than answer.
        let mut p = Problem::new();
        let x = p.add_var("x");
        let y = p.add_var("y");
        le(&mut p, &[(x, 6), (y, 4)], 24);
        le(&mut p, &[(x, 1), (y, 2)], 6);
        let obj = LinExpr::from_terms([(x, 5), (y, 4)]);
        let hooks = SolveHooks { max_pivots: Some(0), poll: None };
        assert_eq!(p.maximize_with_hooks(&obj, &hooks), Err(LpInterrupted));
        // A generous cap reproduces the uncapped answer.
        let hooks = SolveHooks { max_pivots: Some(10_000), poll: None };
        assert_eq!(p.maximize_with_hooks(&obj, &hooks), Ok(p.maximize(&obj)));
    }

    #[test]
    fn poll_interrupts_immediately() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        ge(&mut p, &[(x, 1)], 3);
        let stop = || true;
        let hooks = SolveHooks { max_pivots: None, poll: Some(&stop) };
        assert_eq!(p.maximize_with_hooks(&LinExpr::var(x), &hooks), Err(LpInterrupted));
        let go = || false;
        let hooks = SolveHooks { max_pivots: None, poll: Some(&go) };
        assert!(p.maximize_with_hooks(&LinExpr::var(x), &hooks).is_ok());
    }
}
