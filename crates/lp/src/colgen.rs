//! Restricted-master support for column generation.
//!
//! A [`RestrictedMaster`] wraps a feasibility system `{A·x {≤,≥,=} b,
//! x ≥ 0}` in phase-1 form (maximize `−Σ artificials`) and keeps the
//! tableau alive between solves so that columns can be *appended
//! incrementally*: the caller prices candidate columns outside the LP
//! (the CAR reasoner uses a weight-guided DPLL search over compound
//! classes), inserts the promising ones with [`RestrictedMaster::add_column`],
//! and re-optimizes from the warm-started basis instead of re-solving
//! from scratch.
//!
//! Three properties make the incremental insertion exact:
//!
//! 1. **`B⁻¹` is free.** Each row's initial basic column (its slack or
//!    artificial) started as a unit vector, so in the current tableau the
//!    column of row `k`'s initial basis variable *is* the `k`-th column
//!    of `B⁻¹`. A new original column `a` therefore enters the tableau as
//!    `B⁻¹·a`, computed by a sparse dot against those columns.
//! 2. **Duals are free.** The simplex multiplier of row `k` is
//!    `cost(init_k) − obj[init_k]` (cost `−1` for artificials, `0` for
//!    slacks), sign-adjusted for rows whose right-hand side was negated
//!    during standardization — the same extraction
//!    `car_lp::simplex::certify` uses for Farkas certificates.
//! 3. **Phase 1 never mutates the row structure here.** Unlike the full
//!    two-phase solver, the master *never* drives degenerate artificials
//!    out of the basis and never deletes redundant rows; row indices and
//!    the initial-basis bookkeeping stay valid across any number of
//!    `add_column`/`solve` rounds.
//!
//! When the master is infeasible, [`RestrictedMaster::duals`] is exactly
//! a Farkas certificate of the restricted system (the same multipliers
//! [`crate::Problem::certify_infeasible`] would extract), which is what
//! makes lazy UNSAT answers carry eager-shaped certificates.

use crate::problem::Problem;
use crate::simplex::{optimize, standardize, LoopResult, LpInterrupted, SolveHooks, Standardized};
use crate::tableau::SparseRow;
use car_arith::Ratio;

/// Verdict of a [`RestrictedMaster::solve`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MasterStatus {
    /// Every artificial is zero: the restricted system has a feasible
    /// nonnegative solution.
    Feasible,
    /// Phase 1 stalled with a positive artificial sum: the restricted
    /// system is infeasible (and [`RestrictedMaster::duals`] certifies it).
    Infeasible,
}

/// A warm-startable phase-1 master problem over a growing column set.
///
/// Construction standardizes the problem once; [`Self::solve`] runs the
/// shared pivoting loop ([`crate::simplex::optimize`]) to phase-1
/// optimality, and [`Self::add_column`] appends a structural column
/// without restarting. Pivot counts accumulate across the master's
/// lifetime, so a `SolveHooks::max_pivots` cap bounds the *total* work.
pub struct RestrictedMaster {
    s: Standardized,
    total_pivots: u64,
}

impl RestrictedMaster {
    /// Standardizes `problem` and installs the phase-1 objective
    /// (`maximize −Σ artificials`). No pivoting happens yet.
    #[must_use]
    pub fn new(problem: &Problem) -> RestrictedMaster {
        let mut s = standardize(problem);
        if s.has_artificials {
            let t = &mut s.tableau;
            t.obj = SparseRow::empty();
            for (j, &artificial) in s.is_artificial.iter().enumerate() {
                if artificial {
                    t.obj.set(j, -Ratio::one());
                }
            }
            t.obj_val = Ratio::zero();
            t.canonicalize_objective();
        }
        RestrictedMaster { s, total_pivots: 0 }
    }

    /// Number of constraint rows (one dual per row).
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.s.negated.len()
    }

    /// Total pivots performed across all [`Self::solve`] calls so far.
    #[must_use]
    pub fn pivots(&self) -> u64 {
        self.total_pivots
    }

    /// Current phase-1 objective value `−Σ artificials` (zero iff the
    /// last solve ended feasible; negative measures the infeasibility).
    #[must_use]
    pub fn infeasibility(&self) -> Ratio {
        self.s.tableau.obj_val.clone()
    }

    /// Re-optimizes the phase-1 objective from the current basis.
    ///
    /// # Errors
    ///
    /// Returns [`LpInterrupted`] when `hooks` stop the solve first; the
    /// tableau stays canonical and a later call resumes where it left
    /// off.
    pub fn solve(&mut self, hooks: &SolveHooks<'_>) -> Result<MasterStatus, LpInterrupted> {
        if !self.s.has_artificials {
            return Ok(MasterStatus::Feasible);
        }
        let enterable: Vec<bool> =
            (0..self.s.tableau.n_cols).map(|j| !self.s.is_artificial[j]).collect();
        match optimize(&mut self.s.tableau, &enterable, hooks, &mut self.total_pivots)? {
            LoopResult::Unbounded => unreachable!("phase-1 objective is bounded above by 0"),
            LoopResult::Optimal => {}
        }
        Ok(if self.s.tableau.obj_val.is_negative() {
            MasterStatus::Infeasible
        } else {
            MasterStatus::Feasible
        })
    }

    /// Simplex multipliers of the current basis, one per constraint row
    /// in the order the constraints were added, expressed against the
    /// *original* (pre-standardization) row orientation.
    ///
    /// After an [`MasterStatus::Infeasible`] solve these multipliers are
    /// a verifying [`crate::FarkasCertificate`] for the restricted
    /// problem.
    #[must_use]
    pub fn duals(&self) -> Vec<Ratio> {
        let t = &self.s.tableau;
        self.s
            .init_basis_cols
            .iter()
            .zip(&self.s.negated)
            .map(|(&col, &negated)| {
                let cost =
                    if self.s.is_artificial[col] { -Ratio::one() } else { Ratio::zero() };
                let y = &cost - &t.obj.get(col);
                if negated {
                    -y
                } else {
                    y
                }
            })
            .collect()
    }

    /// Phase-1 reduced cost of a *candidate* column with the given
    /// nonzero entries `(row, coefficient)` in original row orientation:
    /// `−y·a`. Positive means entering the column can shrink the
    /// artificial sum (improve feasibility); nonpositive columns cannot
    /// help the current basis.
    #[must_use]
    pub fn reduced_cost(&self, entries: &[(usize, Ratio)]) -> Ratio {
        let duals = self.duals();
        let mut rc = Ratio::zero();
        for (row, a) in entries {
            assert!(*row < duals.len(), "entry references row {row} of {}", duals.len());
            rc -= &(&duals[*row] * a);
        }
        rc
    }

    /// Appends a structural column whose original-orientation nonzero
    /// entries are `(row, coefficient)`. The column arrives nonbasic with
    /// its tableau representation (`B⁻¹·a`) and canonical reduced cost
    /// already in place, so the next [`Self::solve`] resumes warm.
    pub fn add_column(&mut self, entries: &[(usize, Ratio)]) {
        let m = self.num_rows();
        let adjusted: Vec<(usize, Ratio)> = entries
            .iter()
            .map(|(row, a)| {
                assert!(*row < m, "column entry references row {row} of {m}");
                (*row, if self.s.negated[*row] { -a } else { a.clone() })
            })
            .collect();
        let rc = self.reduced_cost(entries);

        let j = self.s.tableau.n_cols;
        for i in 0..self.s.tableau.rows.len() {
            let mut v = Ratio::zero();
            for (row, a) in &adjusted {
                let binv = self.s.tableau.rows[i].get(self.s.init_basis_cols[*row]);
                v += &(a * &binv);
            }
            self.s.tableau.rows[i].set(j, v);
        }
        self.s.tableau.obj.set(j, rc);
        self.s.tableau.n_cols += 1;
        self.s.is_artificial.push(false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{int, LinExpr, VarId};
    use crate::problem::Relation;
    use crate::FarkasCertificate;

    fn constraint(p: &mut Problem, terms: &[(usize, i64)], rel: Relation, rhs: i64) {
        p.add_constraint(
            LinExpr::from_terms(terms.iter().map(|&(v, c)| (VarId(v), c))),
            rel,
            int(rhs),
        );
    }

    #[test]
    fn feasible_system_reports_feasible() {
        // x >= 1, x <= 3: feasible (artificial on the >=-row must leave).
        let mut p = Problem::new();
        p.add_var("x");
        constraint(&mut p, &[(0, 1)], Relation::Ge, 1);
        constraint(&mut p, &[(0, 1)], Relation::Le, 3);
        let mut m = RestrictedMaster::new(&p);
        assert_eq!(m.solve(&SolveHooks::default()), Ok(MasterStatus::Feasible));
        assert!(m.infeasibility().is_zero());
    }

    #[test]
    fn all_le_system_is_trivially_feasible() {
        let mut p = Problem::new();
        p.add_var("x");
        constraint(&mut p, &[(0, 1)], Relation::Le, 3);
        let mut m = RestrictedMaster::new(&p);
        assert_eq!(m.solve(&SolveHooks::default()), Ok(MasterStatus::Feasible));
        assert_eq!(m.duals(), vec![Ratio::zero()]);
        assert_eq!(m.pivots(), 0);
    }

    #[test]
    fn infeasible_duals_are_a_farkas_certificate() {
        // x <= 1, x >= 2: infeasible.
        let mut p = Problem::new();
        p.add_var("x");
        constraint(&mut p, &[(0, 1)], Relation::Le, 1);
        constraint(&mut p, &[(0, 1)], Relation::Ge, 2);
        let mut m = RestrictedMaster::new(&p);
        assert_eq!(m.solve(&SolveHooks::default()), Ok(MasterStatus::Infeasible));
        assert!(m.infeasibility().is_negative());
        let cert = FarkasCertificate { multipliers: m.duals() };
        assert!(cert.verify(&p), "master duals must certify infeasibility");
        // Same extraction as the one-shot certifier.
        assert_eq!(p.certify_infeasible(), Some(cert));
    }

    #[test]
    fn added_column_restores_feasibility() {
        // x <= 0 and x >= 1 conflict; a fresh column with a +1 entry in
        // the >=-row (a new object that can absorb the demand) fixes it.
        let mut p = Problem::new();
        p.add_var("x");
        constraint(&mut p, &[(0, 1)], Relation::Le, 0);
        constraint(&mut p, &[(0, 1)], Relation::Ge, 1);
        let mut m = RestrictedMaster::new(&p);
        assert_eq!(m.solve(&SolveHooks::default()), Ok(MasterStatus::Infeasible));

        // A column that only loads the <=-row cannot help.
        let useless = [(0usize, int(1))];
        assert!(!m.reduced_cost(&useless).is_positive());
        m.add_column(&useless);
        assert_eq!(m.solve(&SolveHooks::default()), Ok(MasterStatus::Infeasible));

        // A column serving the >=-row prices positive and repairs it.
        let useful = [(1usize, int(1))];
        assert!(m.reduced_cost(&useful).is_positive());
        m.add_column(&useful);
        assert_eq!(m.solve(&SolveHooks::default()), Ok(MasterStatus::Feasible));

        // Cross-check: the same extended system is feasible from scratch.
        let mut fresh = Problem::new();
        fresh.add_var("x");
        fresh.add_var("z_useless");
        fresh.add_var("z_useful");
        constraint(&mut fresh, &[(0, 1), (1, 1)], Relation::Le, 0);
        constraint(&mut fresh, &[(0, 1), (2, 1)], Relation::Ge, 1);
        assert!(fresh.feasible_point().is_some());
    }

    #[test]
    fn negated_rows_are_sign_adjusted() {
        // -x <= -3 standardizes negated (x >= 3); x <= 1 conflicts.
        let mut p = Problem::new();
        p.add_var("x");
        constraint(&mut p, &[(0, -1)], Relation::Le, -3);
        constraint(&mut p, &[(0, 1)], Relation::Le, 1);
        let mut m = RestrictedMaster::new(&p);
        assert_eq!(m.solve(&SolveHooks::default()), Ok(MasterStatus::Infeasible));
        let cert = FarkasCertificate { multipliers: m.duals() };
        assert!(cert.verify(&p));

        // Entries are given in *original* orientation: -1 in the negated
        // row means the new variable relaxes x >= 3.
        let col = [(0usize, int(-1))];
        assert!(m.reduced_cost(&col).is_positive());
        m.add_column(&col);
        assert_eq!(m.solve(&SolveHooks::default()), Ok(MasterStatus::Feasible));
    }

    #[test]
    fn equality_rows_participate() {
        // x = 2 with x <= 1: infeasible until a column loads the =-row.
        let mut p = Problem::new();
        p.add_var("x");
        constraint(&mut p, &[(0, 1)], Relation::Eq, 2);
        constraint(&mut p, &[(0, 1)], Relation::Le, 1);
        let mut m = RestrictedMaster::new(&p);
        assert_eq!(m.solve(&SolveHooks::default()), Ok(MasterStatus::Infeasible));
        m.add_column(&[(0, int(1))]);
        assert_eq!(m.solve(&SolveHooks::default()), Ok(MasterStatus::Feasible));
    }

    #[test]
    fn interruption_leaves_master_resumable() {
        let mut p = Problem::new();
        p.add_var("x");
        constraint(&mut p, &[(0, 1)], Relation::Ge, 1);
        constraint(&mut p, &[(0, 1)], Relation::Le, 3);
        let mut m = RestrictedMaster::new(&p);
        let hooks = SolveHooks { max_pivots: Some(0), poll: None };
        assert_eq!(m.solve(&hooks), Err(LpInterrupted));
        // Lifting the cap finishes the same solve.
        assert_eq!(m.solve(&SolveHooks::default()), Ok(MasterStatus::Feasible));
    }

    #[test]
    fn incremental_matches_fresh_solve_on_homogeneous_rows() {
        // The reasoner's shape: homogeneous >=-rows plus one inhomogeneous
        // target row. cc0 alone cannot satisfy "att of cc0 needs a filler"
        // until the filler column exists.
        //   row0 (target):   cc0            >= 1
        //   row1 (lower):    filler - cc0   >= 0
        let mut p = Problem::new();
        p.add_var("cc0");
        constraint(&mut p, &[(0, 1)], Relation::Ge, 1);
        constraint(&mut p, &[(0, -1)], Relation::Ge, 0);
        let mut m = RestrictedMaster::new(&p);
        assert_eq!(m.solve(&SolveHooks::default()), Ok(MasterStatus::Infeasible));
        // The filler column enters row1 with +1.
        let filler = [(1usize, int(1))];
        assert!(m.reduced_cost(&filler).is_positive());
        m.add_column(&filler);
        assert_eq!(m.solve(&SolveHooks::default()), Ok(MasterStatus::Feasible));

        let mut fresh = Problem::new();
        fresh.add_var("cc0");
        fresh.add_var("filler");
        constraint(&mut fresh, &[(0, 1)], Relation::Ge, 1);
        constraint(&mut fresh, &[(0, -1), (1, 1)], Relation::Ge, 0);
        assert!(fresh.feasible_point().is_some());
    }
}
