//! Support analysis for homogeneous systems.
//!
//! The system `ΨS` built from a CAR schema expansion is *homogeneous*
//! (every disequation has a zero constant term), so its solution set over
//! nonnegative variables is a convex cone: closed under addition and
//! under scaling by positive rationals. Two consequences drive phase 2 of
//! the satisfiability algorithm:
//!
//! 1. a variable is positive in *some* solution iff the system stays
//!    feasible with `x ≥ 1` added (scale any witness), and
//! 2. the sum of such witnesses is a single solution positive on the
//!    entire support — the "maximal" solution used by Theorem 3.3.
//!
//! Rational solutions scale to integer ones by clearing denominators
//! ([`scale_to_integers`]), which is exactly the integer-solution argument
//! the paper borrows from [LN90] and [Pap81] in Theorem 4.3.

use crate::expr::LinExpr;
use crate::problem::{Problem, Relation};
use crate::simplex::{LpInterrupted, SolveHooks};
use car_arith::{lcm, BigInt, Ratio};

/// Result of [`support`]: which variables can be strictly positive, and a
/// single solution witnessing all of them at once.
#[derive(Debug, Clone)]
pub struct SupportAnalysis {
    /// `in_support[j]` iff variable `j` is positive in some solution.
    pub in_support: Vec<bool>,
    /// A solution of the system that is strictly positive on exactly the
    /// variables in the support (all-zero when the support is empty).
    pub witness: Vec<Ratio>,
    /// Number of LP feasibility calls performed (for statistics).
    pub lp_calls: usize,
}

/// Computes the support of the solution cone of a homogeneous problem.
///
/// Runs at most one LP feasibility test per variable; every returned
/// witness short-circuits the variables it already proves positive.
///
/// # Panics
/// Panics if the problem is not homogeneous (the cone reasoning would be
/// unsound otherwise).
#[must_use]
pub fn support(problem: &Problem) -> SupportAnalysis {
    match try_support(problem, &SolveHooks::default()) {
        Ok(analysis) => analysis,
        Err(LpInterrupted) => unreachable!("default hooks never interrupt"),
    }
}

/// [`support`] with cooperative interruption: the `hooks` are threaded
/// into every underlying LP solve and polled once per simplex pivot.
///
/// # Errors
/// [`LpInterrupted`] as soon as the hooks say stop.
///
/// # Panics
/// Panics if the problem is not homogeneous.
pub fn try_support(
    problem: &Problem,
    hooks: &SolveHooks<'_>,
) -> Result<SupportAnalysis, LpInterrupted> {
    assert!(
        problem.is_homogeneous(),
        "support analysis requires a homogeneous system"
    );
    let n = problem.num_vars();
    let mut in_support = vec![false; n];
    let mut decided = vec![false; n];
    let mut witness = vec![Ratio::zero(); n];
    let mut lp_calls = 0;

    let absorb = |point: &[Ratio],
                      witness: &mut Vec<Ratio>,
                      in_support: &mut Vec<bool>,
                      decided: &mut Vec<bool>| {
        for (k, v) in point.iter().enumerate().take(n) {
            witness[k] += v;
            if v.is_positive() {
                in_support[k] = true;
                decided[k] = true;
            }
        }
    };

    // The `Each` probe adds one row per probed variable; exact-rational
    // tableaus that tall develop enormous subdeterminant entries, so it
    // is only worthwhile once few variables remain. Until then the
    // single-row `Some` probe absorbs the support in vertex-sized
    // batches.
    const ALL_PROBE_LIMIT: usize = 96;
    loop {
        let undecided: Vec<usize> = (0..n).filter(|&j| !decided[j]).collect();
        if undecided.is_empty() {
            break;
        }
        // Optimistic probe: can all still-undecided variables be positive
        // simultaneously? (In category-β schemas this succeeds immediately,
        // collapsing the whole analysis to one LP call.)
        if undecided.len() <= ALL_PROBE_LIMIT {
            lp_calls += 1;
            if let Some(point) = positivity_probe(problem, &undecided, ProbeMode::Each, hooks)? {
                absorb(&point, &mut witness, &mut in_support, &mut decided);
                debug_assert!(undecided.iter().all(|&j| decided[j]));
                break;
            }
        }
        // Pessimistic probe: can ANY still-undecided variable be positive?
        // If not, all of them are forced to zero — settled in one call.
        // Otherwise the witness proves at least one more variable positive,
        // guaranteeing progress: at most |support| + 2 calls total.
        lp_calls += 1;
        match positivity_probe(problem, &undecided, ProbeMode::Some, hooks)? {
            Some(point) => {
                let before: usize = decided.iter().filter(|&&d| d).count();
                absorb(&point, &mut witness, &mut in_support, &mut decided);
                debug_assert!(
                    decided.iter().filter(|&&d| d).count() > before,
                    "sum-probe witness must decide at least one variable"
                );
            }
            None => {
                for &j in &undecided {
                    decided[j] = true; // all remaining are forced to zero
                }
            }
        }
    }

    debug_assert!(problem.check_point(&witness));
    debug_assert!((0..n).all(|j| in_support[j] == witness[j].is_positive()));
    Ok(SupportAnalysis { in_support, witness, lp_calls })
}

/// How a positivity probe quantifies over its variable set.
enum ProbeMode {
    /// Every listed variable must be simultaneously positive.
    Each,
    /// At least one listed variable must be positive.
    Some,
}

/// Decides whether the cone contains a point positive on the probe set
/// (in the [`ProbeMode`] sense) and returns such a point.
///
/// Rather than bolting `x_j ≥ 1` rows onto the system — inhomogeneous
/// rows that force the simplex through a full phase 1 with one artificial
/// variable each — this maximizes a fresh variable `t` subject to
/// `x_j − t ≥ 0` (or `Σ x_j − t ≥ 0`) and `t ≤ 1`. Every row except
/// `t ≤ 1` keeps a zero right-hand side, so the all-slack basis is
/// feasible... almost: `≥`-rows still standardize with (degenerate)
/// artificials, but driving a zero-valued artificial out is a handful of
/// degenerate pivots, not a search. By the cone's scalability, the probe
/// succeeds iff the optimal `t` is strictly positive.
fn positivity_probe(
    problem: &Problem,
    vars: &[usize],
    mode: ProbeMode,
    hooks: &SolveHooks<'_>,
) -> Result<Option<Vec<Ratio>>, LpInterrupted> {
    let mut p = problem.clone();
    let t = p.add_var("probe_t");
    match mode {
        ProbeMode::Each => {
            for &j in vars {
                let mut expr = LinExpr::var(crate::VarId(j));
                expr.add_term(t, -Ratio::one());
                p.add_constraint(expr, Relation::Ge, Ratio::zero());
            }
        }
        ProbeMode::Some => {
            // Box each probed variable at 1 and maximize their sum: the
            // optimum is positive iff some probed variable can be
            // positive, and — unlike a thin `max t` objective, which
            // stops at a sparse vertex — sum-maximization drives *most*
            // of the reachable support to its box bound, so one call
            // absorbs a large batch.
            let mut objective = LinExpr::zero();
            for &j in vars {
                objective.add_term(crate::VarId(j), Ratio::one());
                p.add_constraint(LinExpr::var(crate::VarId(j)), Relation::Le, Ratio::one());
            }
            return match p.maximize_with_hooks(&objective, hooks)? {
                crate::SolveResult::Optimal { value, mut point } if value.is_positive() => {
                    point.truncate(problem.num_vars());
                    debug_assert!(problem.check_point(&point));
                    Ok(Some(point))
                }
                crate::SolveResult::Optimal { .. } => Ok(None),
                other => {
                    unreachable!("probe is feasible (x = 0) and box-bounded: {other:?}")
                }
            };
        }
    }
    p.add_constraint(LinExpr::var(t), Relation::Le, Ratio::one());
    match p.maximize_with_hooks(&LinExpr::var(t), hooks)? {
        crate::SolveResult::Optimal { value, mut point } if value.is_positive() => {
            point.truncate(problem.num_vars());
            debug_assert!(problem.check_point(&point));
            Ok(Some(point))
        }
        crate::SolveResult::Optimal { .. } => Ok(None),
        other => unreachable!("probe is feasible (x = 0) and bounded (t ≤ 1): {other:?}"),
    }
}

/// Scales a nonnegative rational solution of a homogeneous system to the
/// smallest integer multiple: multiplies by the least common multiple of
/// all denominators and returns the resulting integers.
#[must_use]
pub fn scale_to_integers(point: &[Ratio]) -> Vec<BigInt> {
    let mut scale = BigInt::one();
    for v in point {
        scale = lcm(&scale, v.denom());
    }
    point
        .iter()
        .map(|v| {
            let scaled = v * &Ratio::from_integer(scale.clone());
            debug_assert!(scaled.is_integer());
            scaled.numer().clone()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{int, VarId};

    fn homogeneous(pairs: &[(&[(usize, i64)], Relation)], n: usize) -> Problem {
        let mut p = Problem::new();
        for i in 0..n {
            p.add_var(format!("x{i}"));
        }
        for (terms, rel) in pairs {
            let expr = LinExpr::from_terms(terms.iter().map(|&(v, c)| (VarId(v), c)));
            p.add_constraint(expr, *rel, Ratio::zero());
        }
        p
    }

    #[test]
    fn all_variables_free_cone() {
        // No constraints: everything is in the support.
        let p = homogeneous(&[], 3);
        let s = support(&p);
        assert_eq!(s.in_support, vec![true, true, true]);
        assert!(s.witness.iter().all(Ratio::is_positive));
    }

    #[test]
    fn forced_zero_variable() {
        // x0 <= 0 forces x0 = 0; x1 stays free.
        let p = homogeneous(&[(&[(0, 1)], Relation::Le)], 2);
        let s = support(&p);
        assert_eq!(s.in_support, vec![false, true]);
        assert!(s.witness[0].is_zero());
        assert!(s.witness[1].is_positive());
    }

    #[test]
    fn chained_implications() {
        // x0 <= x1, x1 <= x2: all can be positive together.
        let p = homogeneous(
            &[
                (&[(0, 1), (1, -1)], Relation::Le),
                (&[(1, 1), (2, -1)], Relation::Le),
            ],
            3,
        );
        let s = support(&p);
        assert_eq!(s.in_support, vec![true, true, true]);
    }

    #[test]
    fn mutual_exclusion_still_in_joint_support() {
        // 2·x0 <= x1 and 2·x1 <= x0 force both to zero.
        let p = homogeneous(
            &[
                (&[(0, 2), (1, -1)], Relation::Le),
                (&[(1, 2), (0, -1)], Relation::Le),
            ],
            2,
        );
        let s = support(&p);
        assert_eq!(s.in_support, vec![false, false]);
        assert!(s.witness.iter().all(Ratio::is_zero));
    }

    #[test]
    fn lp_call_count_is_bounded_by_vars() {
        let p = homogeneous(&[], 5);
        let s = support(&p);
        // One witness proves all five positive: exactly 1 call.
        assert_eq!(s.lp_calls, 1);
    }

    #[test]
    #[should_panic(expected = "homogeneous")]
    fn non_homogeneous_input_panics() {
        let mut p = Problem::new();
        let x = p.add_var("x");
        p.add_constraint(LinExpr::var(x), Relation::Le, int(3));
        let _ = support(&p);
    }

    #[test]
    fn scale_to_integers_clears_denominators() {
        let point = vec![
            Ratio::new(1.into(), 2.into()),
            Ratio::new(2.into(), 3.into()),
            Ratio::zero(),
        ];
        let ints = scale_to_integers(&point);
        assert_eq!(ints, vec![BigInt::from(3), BigInt::from(4), BigInt::zero()]);
    }

    #[test]
    fn scale_to_integers_identity_on_integers() {
        let point = vec![int(3), int(0), int(7)];
        let ints = scale_to_integers(&point);
        assert_eq!(ints, vec![BigInt::from(3), BigInt::zero(), BigInt::from(7)]);
    }

    #[test]
    fn try_support_honors_interruption_hooks() {
        let p = homogeneous(
            &[
                (&[(0, 1), (1, -1)], Relation::Le),
                (&[(1, 1), (2, -1)], Relation::Le),
            ],
            3,
        );
        let stop = || true;
        let hooks = SolveHooks { max_pivots: None, poll: Some(&stop) };
        assert!(matches!(try_support(&p, &hooks), Err(LpInterrupted)));
        let lenient = SolveHooks::default();
        let s = try_support(&p, &lenient).unwrap();
        assert_eq!(s.in_support, support(&p).in_support);
    }
}
