//! Hand-written lexer for the CAR schema syntax.

use crate::error::ParseError;
use crate::token::{Pos, Token, TokenKind};

/// Tokenizes input text. `#` and `//` start comments that run to the end
/// of the line.
pub fn lex(input: &str) -> Result<Vec<Token>, ParseError> {
    let mut tokens = Vec::new();
    let mut chars = input.chars().peekable();
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! bump {
        () => {{
            let c = chars.next();
            if c == Some('\n') {
                line += 1;
                col = 1;
            } else if c.is_some() {
                col += 1;
            }
            c
        }};
    }

    loop {
        let pos = Pos { line, col };
        let Some(&c) = chars.peek() else {
            tokens.push(Token { kind: TokenKind::Eof, pos });
            return Ok(tokens);
        };
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                bump!();
            }
            '#' => {
                while chars.peek().is_some_and(|&c| c != '\n') {
                    bump!();
                }
            }
            '/' => {
                bump!();
                if chars.peek() == Some(&'/') {
                    while chars.peek().is_some_and(|&c| c != '\n') {
                        bump!();
                    }
                } else {
                    return Err(ParseError::Lex { pos, found: '/' });
                }
            }
            '(' => {
                bump!();
                tokens.push(Token { kind: TokenKind::LParen, pos });
            }
            ')' => {
                bump!();
                tokens.push(Token { kind: TokenKind::RParen, pos });
            }
            '[' => {
                bump!();
                tokens.push(Token { kind: TokenKind::LBracket, pos });
            }
            ']' => {
                bump!();
                tokens.push(Token { kind: TokenKind::RBracket, pos });
            }
            ',' => {
                bump!();
                tokens.push(Token { kind: TokenKind::Comma, pos });
            }
            ':' => {
                bump!();
                tokens.push(Token { kind: TokenKind::Colon, pos });
            }
            ';' => {
                bump!();
                tokens.push(Token { kind: TokenKind::Semicolon, pos });
            }
            '*' => {
                bump!();
                tokens.push(Token { kind: TokenKind::Star, pos });
            }
            '&' | '∧' => {
                bump!();
                tokens.push(Token { kind: TokenKind::KwAnd, pos });
            }
            '|' | '∨' => {
                bump!();
                tokens.push(Token { kind: TokenKind::KwOr, pos });
            }
            '~' | '¬' => {
                bump!();
                tokens.push(Token { kind: TokenKind::KwNot, pos });
            }
            '0'..='9' => {
                let mut value: u64 = 0;
                while let Some(&d) = chars.peek() {
                    let Some(digit) = d.to_digit(10) else { break };
                    value = value
                        .checked_mul(10)
                        .and_then(|v| v.checked_add(u64::from(digit)))
                        .ok_or(ParseError::NumberOverflow { pos })?;
                    bump!();
                }
                tokens.push(Token { kind: TokenKind::Nat(value), pos });
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut word = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        word.push(c);
                        bump!();
                    } else {
                        break;
                    }
                }
                let kind = match word.as_str() {
                    "class" => TokenKind::KwClass,
                    "isa" => TokenKind::KwIsa,
                    "attributes" => TokenKind::KwAttributes,
                    "participates_in" => TokenKind::KwParticipatesIn,
                    "endclass" => TokenKind::KwEndClass,
                    "relation" => TokenKind::KwRelation,
                    "constraints" => TokenKind::KwConstraints,
                    "endrelation" => TokenKind::KwEndRelation,
                    "and" => TokenKind::KwAnd,
                    "or" => TokenKind::KwOr,
                    "not" => TokenKind::KwNot,
                    "inv" => TokenKind::KwInv,
                    "inf" => TokenKind::Star,
                    _ => TokenKind::Ident(word),
                };
                tokens.push(Token { kind, pos });
            }
            other => return Err(ParseError::Lex { pos, found: other }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        lex(input).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            kinds("class Person isa endclass"),
            vec![
                TokenKind::KwClass,
                TokenKind::Ident("Person".into()),
                TokenKind::KwIsa,
                TokenKind::KwEndClass,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn operators_ascii_and_unicode() {
        assert_eq!(kinds("and & ∧"), vec![TokenKind::KwAnd; 3].into_iter().chain([TokenKind::Eof]).collect::<Vec<_>>());
        assert_eq!(kinds("or | ∨")[..3], vec![TokenKind::KwOr; 3][..]);
        assert_eq!(kinds("not ~ ¬")[..3], vec![TokenKind::KwNot; 3][..]);
    }

    #[test]
    fn cardinality_tokens() {
        assert_eq!(
            kinds("(1, 20) (0, *) (2, inf)"),
            vec![
                TokenKind::LParen,
                TokenKind::Nat(1),
                TokenKind::Comma,
                TokenKind::Nat(20),
                TokenKind::RParen,
                TokenKind::LParen,
                TokenKind::Nat(0),
                TokenKind::Comma,
                TokenKind::Star,
                TokenKind::RParen,
                TokenKind::LParen,
                TokenKind::Nat(2),
                TokenKind::Comma,
                TokenKind::Star,
                TokenKind::RParen,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("class # a comment\n// another\nPerson"),
            vec![TokenKind::KwClass, TokenKind::Ident("Person".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn positions_are_tracked() {
        let tokens = lex("class\n  Person").unwrap();
        assert_eq!(tokens[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(tokens[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn bad_character_errors() {
        let err = lex("class $").unwrap_err();
        assert!(matches!(err, ParseError::Lex { found: '$', .. }));
        assert!(err.to_string().contains('$'));
        // A single slash (not a comment) is also an error.
        assert!(lex("a / b").is_err());
    }

    #[test]
    fn number_overflow_is_reported() {
        let err = lex("99999999999999999999999").unwrap_err();
        assert!(matches!(err, ParseError::NumberOverflow { .. }));
    }

    #[test]
    fn identifiers_with_underscores_and_digits() {
        assert_eq!(
            kinds("Grad_Student2"),
            vec![TokenKind::Ident("Grad_Student2".into()), TokenKind::Eof]
        );
    }
}
