//! Tokens of the CAR schema surface syntax.

use std::fmt;

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier (class, attribute, relation or role name).
    Ident(String),
    /// Natural-number literal.
    Nat(u64),
    /// `class`
    KwClass,
    /// `isa`
    KwIsa,
    /// `attributes`
    KwAttributes,
    /// `participates_in`
    KwParticipatesIn,
    /// `endclass`
    KwEndClass,
    /// `relation`
    KwRelation,
    /// `constraints`
    KwConstraints,
    /// `endrelation`
    KwEndRelation,
    /// `and` / `&`
    KwAnd,
    /// `or` / `|`
    KwOr,
    /// `not` / `~`
    KwNot,
    /// `inv`
    KwInv,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `;`
    Semicolon,
    /// `*` or `inf` (infinity in cardinalities)
    Star,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier '{s}'"),
            TokenKind::Nat(n) => write!(f, "number {n}"),
            TokenKind::KwClass => write!(f, "'class'"),
            TokenKind::KwIsa => write!(f, "'isa'"),
            TokenKind::KwAttributes => write!(f, "'attributes'"),
            TokenKind::KwParticipatesIn => write!(f, "'participates_in'"),
            TokenKind::KwEndClass => write!(f, "'endclass'"),
            TokenKind::KwRelation => write!(f, "'relation'"),
            TokenKind::KwConstraints => write!(f, "'constraints'"),
            TokenKind::KwEndRelation => write!(f, "'endrelation'"),
            TokenKind::KwAnd => write!(f, "'and'"),
            TokenKind::KwOr => write!(f, "'or'"),
            TokenKind::KwNot => write!(f, "'not'"),
            TokenKind::KwInv => write!(f, "'inv'"),
            TokenKind::LParen => write!(f, "'('"),
            TokenKind::RParen => write!(f, "')'"),
            TokenKind::LBracket => write!(f, "'['"),
            TokenKind::RBracket => write!(f, "']'"),
            TokenKind::Comma => write!(f, "','"),
            TokenKind::Colon => write!(f, "':'"),
            TokenKind::Semicolon => write!(f, "';'"),
            TokenKind::Star => write!(f, "'*'"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token.
    pub kind: TokenKind,
    /// Where it starts.
    pub pos: Pos,
}
