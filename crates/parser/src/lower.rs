//! Lowering the AST to a validated `car_core::Schema`.
//!
//! Two passes: relations are declared first so that participation
//! specifications may reference relations defined later in the text; then
//! class definitions and relation constraints are installed. All name
//! resolution goes through the `SchemaBuilder` interners, so a class name
//! that only occurs inside a formula is still a class of the alphabet.
//!
//! Before lowering, [`validate`] walks the AST and reports every
//! definition-level error — duplicate class/relation definitions,
//! invalid `(min, max)` cardinalities, roles that do not belong to their
//! relation, participations in undefined relations — with the source
//! position of the offending token. The `SchemaBuilder`'s own validation
//! still runs afterwards as a position-less backstop, so nothing the
//! core rejects is ever silently accepted here.

use crate::ast::*;
use crate::error::{ParseError, SpannedSchemaError};
use crate::token::Pos;
use car_core::syntax::{
    Card, ClassClause, ClassFormula, ClassLiteral, RoleClause, RoleLiteral, SchemaBuilder,
};
use car_core::{AttRef, Schema, SchemaError};
use std::collections::{HashMap, HashSet};

/// Name-resolution strictness for class references inside formulas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Strictness {
    /// A class name that only occurs inside a formula joins the
    /// alphabet as a fresh unconstrained class (the paper's convention).
    Lenient,
    /// Every class referenced in a formula must be introduced by a
    /// `class ... endclass` definition.
    Strict,
}

/// Lowers a parsed schema with lenient class-reference resolution.
pub fn lower(ast: &AstSchema) -> Result<Schema, ParseError> {
    lower_with(ast, Strictness::Lenient)
}

/// Lowers a parsed schema, rejecting references to undeclared classes.
pub(crate) fn lower_strict(ast: &AstSchema) -> Result<Schema, ParseError> {
    lower_with(ast, Strictness::Strict)
}

fn lower_with(ast: &AstSchema, strictness: Strictness) -> Result<Schema, ParseError> {
    let errors = validate(ast, strictness);
    if !errors.is_empty() {
        return Err(ParseError::Invalid { errors });
    }

    let mut b = SchemaBuilder::new();

    // Pass 1: declare relations (and their roles).
    let mut rel_ids = Vec::with_capacity(ast.relations.len());
    for rel in &ast.relations {
        let id = b.relation(&rel.name, rel.roles.iter().map(String::as_str));
        rel_ids.push(id);
    }

    // Pass 2a: relation constraints.
    for (rel, &id) in ast.relations.iter().zip(&rel_ids) {
        for clause in &rel.constraints {
            let literals = clause
                .literals
                .iter()
                .map(|lit| RoleLiteral {
                    role: b.role(&lit.role),
                    formula: lower_formula(&mut b, &lit.formula),
                })
                .collect();
            b.relation_constraint(id, RoleClause::new(literals));
        }
    }

    // Pass 2b: class definitions.
    for class in &ast.classes {
        let id = b.class(&class.name);
        let isa = class.isa.as_ref().map(|f| lower_formula(&mut b, f));
        let attrs: Vec<(AttRef, Card, ClassFormula)> = class
            .attrs
            .iter()
            .map(|spec| {
                let att = match &spec.att {
                    AstAttRef::Direct(name) => AttRef::Direct(b.attribute(name)),
                    AstAttRef::Inverse(name) => AttRef::Inverse(b.attribute(name)),
                };
                let ty = spec
                    .ty
                    .as_ref()
                    .map_or_else(ClassFormula::top, |f| lower_formula(&mut b, f));
                (att, lower_card(spec.card), ty)
            })
            .collect();
        let parts: Vec<_> = class
            .participations
            .iter()
            .map(|p| {
                // Reference the relation by name; unknown names become
                // fresh relation symbols that fail validation with an
                // UndefinedRelation error.
                let rel = b.relation_ref(&p.rel);
                let role = b.role(&p.role);
                (rel, role, lower_card(p.card))
            })
            .collect();

        let mut cb = b.define_class(id);
        if let Some(isa) = isa {
            cb = cb.isa(isa);
        }
        for (att, card, ty) in attrs {
            cb = cb.attr(att, card, ty);
        }
        for (rel, role, card) in parts {
            cb = cb.participates(rel, role, card);
        }
        cb.finish();
    }

    b.build().map_err(ParseError::from)
}

/// AST-level validation with source positions. Mirrors (and pre-empts)
/// the `SchemaBuilder` checks so that the common definition errors are
/// reported where they occur in the text; under [`Strictness::Strict`]
/// it additionally rejects formula references to undeclared classes.
fn validate(ast: &AstSchema, strictness: Strictness) -> Vec<SpannedSchemaError> {
    let mut errors = Vec::new();
    let mut push = |pos: Pos, error: SchemaError| {
        errors.push(SpannedSchemaError { pos: Some(pos), error });
    };

    // Relations: duplicates, arity, role sets, constraint clauses.
    let mut rel_roles: HashMap<&str, &[String]> = HashMap::new();
    for rel in &ast.relations {
        if rel_roles.insert(&rel.name, &rel.roles).is_some() {
            push(rel.pos, SchemaError::DuplicateRelDef { rel: rel.name.clone() });
        }
        if rel.roles.len() < 2 {
            push(rel.pos, SchemaError::BadArity { rel: rel.name.clone(), arity: rel.roles.len() });
        }
        let mut seen_roles = HashSet::new();
        for role in &rel.roles {
            if !seen_roles.insert(role.as_str()) {
                push(
                    rel.pos,
                    SchemaError::DuplicateRole { rel: rel.name.clone(), role: role.clone() },
                );
            }
        }
        for clause in &rel.constraints {
            let mut seen_in_clause = HashSet::new();
            for lit in &clause.literals {
                if !rel.roles.contains(&lit.role) {
                    push(
                        lit.pos,
                        SchemaError::UnknownRole { rel: rel.name.clone(), role: lit.role.clone() },
                    );
                } else if !seen_in_clause.insert(lit.role.as_str()) {
                    push(
                        lit.pos,
                        SchemaError::RepeatedRoleInClause {
                            rel: rel.name.clone(),
                            role: lit.role.clone(),
                        },
                    );
                }
            }
        }
    }

    // Classes: duplicates, attribute specs, participations.
    let mut class_names = HashSet::new();
    for class in &ast.classes {
        if !class_names.insert(class.name.as_str()) {
            push(class.pos, SchemaError::DuplicateClassDef { class: class.name.clone() });
        }
        let mut seen_attrs = HashSet::new();
        for spec in &class.attrs {
            if !card_ok(spec.card) {
                push(
                    spec.pos,
                    SchemaError::InvalidCard {
                        card: lower_card(spec.card),
                        context: format!(
                            "attribute '{}' of class '{}'",
                            spec.att.name(),
                            class.name
                        ),
                    },
                );
            }
            if !seen_attrs.insert(&spec.att) {
                push(
                    spec.pos,
                    SchemaError::DuplicateAttrSpec {
                        class: class.name.clone(),
                        attr: spec.att.name().to_owned(),
                    },
                );
            }
        }
        for p in &class.participations {
            if !card_ok(p.card) {
                push(
                    p.pos,
                    SchemaError::InvalidCard {
                        card: lower_card(p.card),
                        context: format!(
                            "participation of class '{}' in relation '{}'",
                            class.name, p.rel
                        ),
                    },
                );
            }
            match rel_roles.get(p.rel.as_str()) {
                None => push(p.pos, SchemaError::UndefinedRelation { rel: p.rel.clone() }),
                Some(roles) if !roles.contains(&p.role) => push(
                    p.pos,
                    SchemaError::UnknownRole { rel: p.rel.clone(), role: p.role.clone() },
                ),
                Some(_) => {}
            }
        }
    }

    if strictness == Strictness::Strict {
        let mut check_formula = |f: &AstFormula| {
            for clause in &f.clauses {
                for lit in clause {
                    if !class_names.contains(lit.class.as_str()) {
                        push(
                            lit.pos,
                            SchemaError::UndeclaredClass { class: lit.class.clone() },
                        );
                    }
                }
            }
        };
        for class in &ast.classes {
            if let Some(isa) = &class.isa {
                check_formula(isa);
            }
            for spec in &class.attrs {
                if let Some(ty) = &spec.ty {
                    check_formula(ty);
                }
            }
        }
        for rel in &ast.relations {
            for clause in &rel.constraints {
                for lit in &clause.literals {
                    check_formula(&lit.formula);
                }
            }
        }
    }

    errors
}

fn card_ok(c: AstCard) -> bool {
    match c.max {
        Some(max) => c.min <= max,
        None => true,
    }
}

fn lower_formula(b: &mut SchemaBuilder, f: &AstFormula) -> ClassFormula {
    let mut out = ClassFormula::top();
    for clause in &f.clauses {
        let literals = clause
            .iter()
            .map(|l| {
                let id = b.class(&l.class);
                if l.positive {
                    ClassLiteral::pos(id)
                } else {
                    ClassLiteral::neg(id)
                }
            })
            .collect();
        out.push_clause(ClassClause::new(literals));
    }
    out
}

fn lower_card(c: AstCard) -> Card {
    Card { min: c.min, max: c.max }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_schema, parse_schema_strict};
    use car_core::SchemaError;

    fn invalid_errors(err: ParseError) -> Vec<SpannedSchemaError> {
        match err {
            ParseError::Invalid { errors } => errors,
            other => panic!("expected validation errors, got {other:?}"),
        }
    }

    #[test]
    fn full_pipeline_builds_schema() {
        let s = parse_schema(
            "class Person endclass
             class Student
               isa Person and not Professor
               participates_in Enrollment[enrolls] : (1, 6)
             endclass
             class Professor isa Person endclass
             relation Enrollment(enrolled_in, enrolls)
               constraints (enrolls : Student)
             endrelation",
        )
        .unwrap();
        assert_eq!(s.num_classes(), 3);
        assert_eq!(s.num_rels(), 1);
        let student = s.class_id("Student").unwrap();
        assert_eq!(s.class_def(student).participations.len(), 1);
        assert_eq!(s.class_def(student).isa.clauses.len(), 2);
    }

    #[test]
    fn participation_may_precede_relation_definition() {
        let s = parse_schema(
            "class A participates_in R[u] : (1, 2) endclass
             relation R(u, v) endrelation",
        )
        .unwrap();
        assert!(s.rel_id("R").is_some());
    }

    #[test]
    fn classes_only_in_formulas_join_the_alphabet() {
        let s = parse_schema("class A isa not Ghost endclass").unwrap();
        assert!(s.class_id("Ghost").is_some());
        assert_eq!(s.num_classes(), 2);
    }

    #[test]
    fn undefined_relation_is_a_validation_error() {
        let err = parse_schema("class A participates_in R[u] : (1, 2) endclass").unwrap_err();
        let errors = invalid_errors(err);
        assert!(matches!(errors[0].error, SchemaError::UndefinedRelation { .. }));
        assert!(errors[0].pos.is_some(), "participation errors carry positions");
    }

    #[test]
    fn invalid_cardinality_is_a_validation_error() {
        let err = parse_schema("class A attributes f : (5, 2) T endclass").unwrap_err();
        assert!(err.to_string().contains("invalid cardinality"));
    }

    #[test]
    fn attribute_without_type_gets_top() {
        let s = parse_schema("class A attributes f : (1, 2) endclass").unwrap();
        let a = s.class_id("A").unwrap();
        assert!(s.class_def(a).attrs[0].ty.is_top());
    }

    #[test]
    fn duplicate_class_definition_is_reported_at_the_second_site() {
        let err = parse_schema(
            "class A endclass
             class A endclass",
        )
        .unwrap_err();
        let errors = invalid_errors(err);
        assert_eq!(errors.len(), 1);
        assert!(matches!(errors[0].error, SchemaError::DuplicateClassDef { .. }));
        let pos = errors[0].pos.expect("duplicate definitions carry positions");
        assert_eq!(pos.line, 2);
    }

    #[test]
    fn duplicate_relation_definition_is_reported_with_position() {
        let err = parse_schema(
            "relation R(u, v) endrelation
             relation R(u, v) endrelation",
        )
        .unwrap_err();
        let errors = invalid_errors(err);
        assert!(matches!(errors[0].error, SchemaError::DuplicateRelDef { .. }));
        assert_eq!(errors[0].pos.unwrap().line, 2);
    }

    #[test]
    fn invalid_cardinality_points_at_the_offending_spec() {
        let err = parse_schema(
            "class A
               attributes f : (1, 1) T;
                          g : (5, 2)
             endclass",
        )
        .unwrap_err();
        let errors = invalid_errors(err);
        assert_eq!(errors.len(), 1);
        assert!(matches!(
            errors[0].error,
            SchemaError::InvalidCard { card: Card { min: 5, max: Some(2) }, .. }
        ));
        assert_eq!(errors[0].pos.unwrap().line, 3);
    }

    #[test]
    fn unknown_constraint_role_points_at_the_literal() {
        let err = parse_schema(
            "relation R(u, v)
               constraints (u : A) or (w : B)
             endrelation",
        )
        .unwrap_err();
        let errors = invalid_errors(err);
        assert_eq!(errors.len(), 1);
        assert!(
            matches!(&errors[0].error, SchemaError::UnknownRole { rel, role }
                if rel == "R" && role == "w")
        );
        let pos = errors[0].pos.unwrap();
        assert_eq!((pos.line, pos.col), (2, 40));
    }

    #[test]
    fn participation_with_foreign_role_is_rejected() {
        let err = parse_schema(
            "class A participates_in R[w] : (1, 2) endclass
             relation R(u, v) endrelation",
        )
        .unwrap_err();
        let errors = invalid_errors(err);
        assert!(
            matches!(&errors[0].error, SchemaError::UnknownRole { rel, role }
                if rel == "R" && role == "w")
        );
        assert_eq!(errors[0].pos.unwrap().line, 1);
    }

    #[test]
    fn all_validation_errors_are_collected_in_one_pass() {
        let err = parse_schema(
            "class A attributes f : (3, 1) endclass
             class A endclass
             class B participates_in S[u] : (0, 1) endclass",
        )
        .unwrap_err();
        let errors = invalid_errors(err);
        assert_eq!(errors.len(), 3, "{errors:?}");
        assert!(matches!(errors[0].error, SchemaError::InvalidCard { .. }));
        assert!(matches!(errors[1].error, SchemaError::DuplicateClassDef { .. }));
        assert!(matches!(errors[2].error, SchemaError::UndefinedRelation { .. }));
    }

    #[test]
    fn strict_mode_rejects_undeclared_classes_with_positions() {
        let text = "class A isa not Ghost endclass";
        assert!(parse_schema(text).is_ok(), "lenient mode interns Ghost");
        let err = parse_schema_strict(text).unwrap_err();
        let errors = invalid_errors(err);
        assert!(
            matches!(&errors[0].error, SchemaError::UndeclaredClass { class } if class == "Ghost")
        );
        let pos = errors[0].pos.unwrap();
        assert_eq!((pos.line, pos.col), (1, 17));
    }

    #[test]
    fn strict_mode_checks_attr_types_and_role_constraints() {
        let err = parse_schema_strict(
            "class A attributes f : (0, 1) Phantom endclass
             relation R(u, v) constraints (u : Wraith) endrelation",
        )
        .unwrap_err();
        let errors = invalid_errors(err);
        let names: Vec<&str> = errors
            .iter()
            .filter_map(|e| match &e.error {
                SchemaError::UndeclaredClass { class } => Some(class.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(names, ["Phantom", "Wraith"]);
    }

    #[test]
    fn strict_mode_accepts_fully_declared_schemas() {
        let s = parse_schema_strict(
            "class Person endclass
             class Student isa Person endclass
             relation Advises(advisor, advisee)
               constraints (advisee : Student)
             endrelation",
        )
        .unwrap();
        assert_eq!(s.num_classes(), 2);
    }

    #[test]
    fn spanned_errors_render_with_their_position() {
        let err = parse_schema(
            "class A endclass
             class A endclass",
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("2:20: class 'A' defined twice"), "{msg}");
    }
}
