//! Lowering the AST to a validated `car_core::Schema`.
//!
//! Two passes: relations are declared first so that participation
//! specifications may reference relations defined later in the text; then
//! class definitions and relation constraints are installed. All name
//! resolution goes through the `SchemaBuilder` interners, so a class name
//! that only occurs inside a formula is still a class of the alphabet.

use crate::ast::*;
use crate::error::ParseError;
use car_core::syntax::{
    Card, ClassClause, ClassFormula, ClassLiteral, RoleClause, RoleLiteral, SchemaBuilder,
};
use car_core::{AttRef, Schema};

/// Lowers a parsed schema.
pub fn lower(ast: &AstSchema) -> Result<Schema, ParseError> {
    let mut b = SchemaBuilder::new();

    // Pass 1: declare relations (and their roles).
    let mut rel_ids = Vec::with_capacity(ast.relations.len());
    for rel in &ast.relations {
        let id = b.relation(&rel.name, rel.roles.iter().map(String::as_str));
        rel_ids.push(id);
    }

    // Pass 2a: relation constraints.
    for (rel, &id) in ast.relations.iter().zip(&rel_ids) {
        for clause in &rel.constraints {
            let literals = clause
                .literals
                .iter()
                .map(|(role, formula)| RoleLiteral {
                    role: b.role(role),
                    formula: lower_formula(&mut b, formula),
                })
                .collect();
            b.relation_constraint(id, RoleClause::new(literals));
        }
    }

    // Pass 2b: class definitions.
    for class in &ast.classes {
        let id = b.class(&class.name);
        let isa = class.isa.as_ref().map(|f| lower_formula(&mut b, f));
        let attrs: Vec<(AttRef, Card, ClassFormula)> = class
            .attrs
            .iter()
            .map(|spec| {
                let att = match &spec.att {
                    AstAttRef::Direct(name) => AttRef::Direct(b.attribute(name)),
                    AstAttRef::Inverse(name) => AttRef::Inverse(b.attribute(name)),
                };
                let ty = spec
                    .ty
                    .as_ref()
                    .map_or_else(ClassFormula::top, |f| lower_formula(&mut b, f));
                (att, lower_card(spec.card), ty)
            })
            .collect();
        let parts: Vec<_> = class
            .participations
            .iter()
            .map(|p| {
                // Reference the relation by name; unknown names become
                // fresh relation symbols that fail validation with an
                // UndefinedRelation error.
                let rel = b.relation_ref(&p.rel);
                let role = b.role(&p.role);
                (rel, role, lower_card(p.card))
            })
            .collect();

        let mut cb = b.define_class(id);
        if let Some(isa) = isa {
            cb = cb.isa(isa);
        }
        for (att, card, ty) in attrs {
            cb = cb.attr(att, card, ty);
        }
        for (rel, role, card) in parts {
            cb = cb.participates(rel, role, card);
        }
        cb.finish();
    }

    b.build().map_err(ParseError::from)
}

fn lower_formula(b: &mut SchemaBuilder, f: &AstFormula) -> ClassFormula {
    let mut out = ClassFormula::top();
    for clause in &f.clauses {
        let literals = clause
            .iter()
            .map(|l| {
                let id = b.class(&l.class);
                if l.positive {
                    ClassLiteral::pos(id)
                } else {
                    ClassLiteral::neg(id)
                }
            })
            .collect();
        out.push_clause(ClassClause::new(literals));
    }
    out
}

fn lower_card(c: AstCard) -> Card {
    Card { min: c.min, max: c.max }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_schema;
    use car_core::SchemaError;

    #[test]
    fn full_pipeline_builds_schema() {
        let s = parse_schema(
            "class Person endclass
             class Student
               isa Person and not Professor
               participates_in Enrollment[enrolls] : (1, 6)
             endclass
             class Professor isa Person endclass
             relation Enrollment(enrolled_in, enrolls)
               constraints (enrolls : Student)
             endrelation",
        )
        .unwrap();
        assert_eq!(s.num_classes(), 3);
        assert_eq!(s.num_rels(), 1);
        let student = s.class_id("Student").unwrap();
        assert_eq!(s.class_def(student).participations.len(), 1);
        assert_eq!(s.class_def(student).isa.clauses.len(), 2);
    }

    #[test]
    fn participation_may_precede_relation_definition() {
        let s = parse_schema(
            "class A participates_in R[u] : (1, 2) endclass
             relation R(u, v) endrelation",
        )
        .unwrap();
        assert!(s.rel_id("R").is_some());
    }

    #[test]
    fn classes_only_in_formulas_join_the_alphabet() {
        let s = parse_schema("class A isa not Ghost endclass").unwrap();
        assert!(s.class_id("Ghost").is_some());
        assert_eq!(s.num_classes(), 2);
    }

    #[test]
    fn undefined_relation_is_a_validation_error() {
        let err = parse_schema("class A participates_in R[u] : (1, 2) endclass").unwrap_err();
        match err {
            ParseError::Invalid { errors } => {
                assert!(matches!(errors[0], SchemaError::UndefinedRelation { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn invalid_cardinality_is_a_validation_error() {
        let err =
            parse_schema("class A attributes f : (5, 2) T endclass").unwrap_err();
        assert!(err.to_string().contains("invalid cardinality"));
    }

    #[test]
    fn attribute_without_type_gets_top() {
        let s = parse_schema("class A attributes f : (1, 2) endclass").unwrap();
        let a = s.class_id("A").unwrap();
        assert!(s.class_def(a).attrs[0].ty.is_top());
    }
}
