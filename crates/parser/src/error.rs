//! Parser error type with source positions.

use crate::token::Pos;
use car_core::SchemaError;
use std::fmt;

/// A schema-validation error with an optional source position.
///
/// Errors detected by the parser's own AST validation pass point at the
/// offending token; errors only detected later, inside
/// `car_core::SchemaBuilder`, have no position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedSchemaError {
    /// Where in the source the error was detected, if known.
    pub pos: Option<Pos>,
    /// The underlying validation error.
    pub error: SchemaError,
}

impl fmt::Display for SpannedSchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pos {
            Some(pos) => write!(f, "{pos}: {}", self.error),
            None => write!(f, "{}", self.error),
        }
    }
}

/// A lexical, syntactic or schema-validation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Unexpected character during lexing.
    Lex {
        /// Where.
        pos: Pos,
        /// The offending character.
        found: char,
    },
    /// A number too large to represent.
    NumberOverflow {
        /// Where.
        pos: Pos,
    },
    /// Parenthesized clauses nested beyond the parser's depth limit.
    /// The recursive-descent parser recurses per nesting level, so
    /// unbounded depth on untrusted input would overflow the stack and
    /// abort the process instead of returning an error.
    NestingTooDeep {
        /// Where the limit was exceeded.
        pos: Pos,
        /// The maximum supported nesting depth.
        limit: usize,
    },
    /// Unexpected token during parsing.
    Unexpected {
        /// Where.
        pos: Pos,
        /// What was found.
        found: String,
        /// What the parser wanted.
        expected: &'static str,
    },
    /// The parsed schema failed validation.
    Invalid {
        /// All validation errors, in order of detection.
        errors: Vec<SpannedSchemaError>,
    },
}

impl ParseError {
    pub(crate) fn unexpected(pos: Pos, found: impl fmt::Display, expected: &'static str) -> Self {
        ParseError::Unexpected { pos, found: found.to_string(), expected }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex { pos, found } => {
                write!(f, "{pos}: unexpected character '{found}'")
            }
            ParseError::NumberOverflow { pos } => {
                write!(f, "{pos}: number literal out of range")
            }
            ParseError::NestingTooDeep { pos, limit } => {
                write!(f, "{pos}: parentheses nested deeper than {limit} levels")
            }
            ParseError::Unexpected { pos, found, expected } => {
                write!(f, "{pos}: expected {expected}, found {found}")
            }
            ParseError::Invalid { errors } => {
                write!(f, "schema validation failed: ")?;
                for (i, e) in errors.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{e}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<Vec<SchemaError>> for ParseError {
    fn from(errors: Vec<SchemaError>) -> ParseError {
        ParseError::Invalid {
            errors: errors
                .into_iter()
                .map(|error| SpannedSchemaError { pos: None, error })
                .collect(),
        }
    }
}
