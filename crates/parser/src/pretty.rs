//! Rendering a schema back to the concrete syntax.

use car_core::syntax::{Card, ClassFormula, Schema};
use car_core::AttRef;
use std::fmt::Write;

/// Renders a schema in the paper's concrete syntax. The output parses
/// back ([`crate::parse_schema`]) to a schema equal to the input up to
/// symbol interning order.
#[must_use]
pub fn pretty(schema: &Schema) -> String {
    let mut out = String::new();

    for (class, def) in schema.classes() {
        let _ = writeln!(out, "class {}", schema.class_name(class));
        if !def.isa.is_top() {
            let _ = writeln!(out, "  isa {}", fmt_formula(schema, &def.isa));
        }
        if !def.attrs.is_empty() {
            let _ = write!(out, "  attributes ");
            for (i, spec) in def.attrs.iter().enumerate() {
                if i > 0 {
                    let _ = write!(out, ";\n             ");
                }
                let att = match spec.att {
                    AttRef::Direct(a) => schema.symbols().attr_name(a).to_owned(),
                    AttRef::Inverse(a) => {
                        format!("(inv {})", schema.symbols().attr_name(a))
                    }
                };
                let _ = write!(out, "{att} : {}", fmt_card(spec.card));
                if !spec.ty.is_top() {
                    let _ = write!(out, " {}", fmt_formula(schema, &spec.ty));
                }
            }
            let _ = writeln!(out);
        }
        if !def.participations.is_empty() {
            let _ = write!(out, "  participates_in ");
            for (i, p) in def.participations.iter().enumerate() {
                if i > 0 {
                    let _ = write!(out, ";\n                  ");
                }
                let _ = write!(
                    out,
                    "{}[{}] : {}",
                    schema.symbols().rel_name(p.rel),
                    schema.symbols().role_name(p.role),
                    fmt_card(p.card)
                );
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out, "endclass\n");
    }

    for (rel, def) in schema.relations() {
        let roles: Vec<&str> =
            def.roles.iter().map(|&r| schema.symbols().role_name(r)).collect();
        let _ = writeln!(out, "relation {}({})", schema.symbols().rel_name(rel), roles.join(", "));
        if !def.constraints.is_empty() {
            let _ = write!(out, "  constraints ");
            for (i, clause) in def.constraints.iter().enumerate() {
                if i > 0 {
                    let _ = write!(out, ";\n              ");
                }
                let lits: Vec<String> = clause
                    .literals
                    .iter()
                    .map(|l| {
                        format!(
                            "({} : {})",
                            schema.symbols().role_name(l.role),
                            fmt_formula(schema, &l.formula)
                        )
                    })
                    .collect();
                let _ = write!(out, "{}", lits.join(" or "));
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out, "endrelation\n");
    }

    out
}

fn fmt_card(card: Card) -> String {
    match card.max {
        Some(max) => format!("({}, {})", card.min, max),
        None => format!("({}, *)", card.min),
    }
}

fn fmt_formula(schema: &Schema, f: &ClassFormula) -> String {
    let clauses: Vec<String> = f
        .clauses
        .iter()
        .map(|clause| {
            let lits: Vec<String> = clause
                .literals
                .iter()
                .map(|l| {
                    if l.positive {
                        schema.class_name(l.class).to_owned()
                    } else {
                        format!("not {}", schema.class_name(l.class))
                    }
                })
                .collect();
            let joined = lits.join(" or ");
            if clause.literals.len() > 1 && f.clauses.len() > 1 {
                format!("({joined})")
            } else {
                joined
            }
        })
        .collect();
    clauses.join(" and ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_schema;

    const UNIVERSITY: &str = "
        class Person
          attributes name : (1, 1) String
        endclass
        class Professor
          isa Person
          attributes (inv taught_by) : (1, 2) Course
        endclass
        class Student
          isa Person and not Professor
          participates_in Enrollment[enrolls] : (1, 6)
        endclass
        class Course
          isa not Person
          attributes taught_by : (1, 1) Professor or Grad_Student
          participates_in Enrollment[enrolled_in] : (5, 100)
        endclass
        class Grad_Student isa Student endclass
        relation Enrollment(enrolled_in, enrolls)
          constraints (enrolled_in : Course);
                      (enrolls : Student);
                      (enrolled_in : not Adv_Course) or (enrolls : Grad_Student)
        endrelation
    ";

    /// Round-tripping may permute declaration order (the printer emits
    /// id order; reparsing interns in mention order), but the *set* of
    /// printed definition blocks must be stable.
    #[test]
    fn round_trip_preserves_definition_blocks() {
        fn blocks(text: &str) -> std::collections::BTreeSet<String> {
            text.split("\n\n")
                .map(str::trim)
                .filter(|b| !b.is_empty())
                .map(str::to_owned)
                .collect()
        }
        let s1 = parse_schema(UNIVERSITY).unwrap();
        let p1 = pretty(&s1);
        let s2 = parse_schema(&p1).expect("pretty output parses");
        let p2 = pretty(&s2);
        assert_eq!(blocks(&p1), blocks(&p2), "{p1}\n=====\n{p2}");
        assert_eq!(s1.num_classes(), s2.num_classes());
        assert_eq!(s1.num_rels(), s2.num_rels());
        assert_eq!(s1.num_attrs(), s2.num_attrs());
    }

    #[test]
    fn round_trip_preserves_semantics() {
        use car_core::reasoner::Reasoner;
        let s1 = parse_schema(UNIVERSITY).unwrap();
        let s2 = parse_schema(&pretty(&s1)).unwrap();
        let r1 = Reasoner::new(&s1);
        let r2 = Reasoner::new(&s2);
        for class in ["Person", "Professor", "Student", "Course", "Grad_Student"] {
            let c1 = s1.class_id(class).unwrap();
            let c2 = s2.class_id(class).unwrap();
            assert_eq!(r1.is_satisfiable(c1), r2.is_satisfiable(c2), "{class}");
        }
    }

    #[test]
    fn formula_formatting_parenthesizes_only_when_needed() {
        let s = parse_schema("class A isa (X or Y) and Z endclass").unwrap();
        let out = pretty(&s);
        assert!(out.contains("isa (X or Y) and Z"), "{out}");
        let s = parse_schema("class A isa X or Y endclass").unwrap();
        let out = pretty(&s);
        assert!(out.contains("isa X or Y"), "{out}");
    }

    #[test]
    fn infinity_renders_as_star() {
        let s = parse_schema("class A attributes f : (2, *) T endclass").unwrap();
        assert!(pretty(&s).contains("f : (2, *) T"));
    }
}
