//! Untyped syntax tree produced by the parser, before name resolution.
//!
//! Every definition-like node carries the [`Pos`] of its defining token
//! so that validation errors detected after parsing (duplicate
//! definitions, invalid cardinalities, unknown roles, undeclared
//! classes) can point back into the source text.

use crate::token::Pos;

/// A parsed schema: class and relation definitions in source order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AstSchema {
    /// Class definitions.
    pub classes: Vec<AstClassDef>,
    /// Relation definitions.
    pub relations: Vec<AstRelDef>,
}

/// A parsed class definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AstClassDef {
    /// Position of the class name.
    pub pos: Pos,
    /// Class name.
    pub name: String,
    /// The isa formula, if present.
    pub isa: Option<AstFormula>,
    /// Attribute specifications.
    pub attrs: Vec<AstAttrSpec>,
    /// Participation specifications.
    pub participations: Vec<AstParticipation>,
}

/// A class-formula in CNF: clauses of literals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AstFormula {
    /// The conjuncts; each inner vector is one disjunctive clause.
    pub clauses: Vec<Vec<AstLiteral>>,
}

/// A possibly negated class name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AstLiteral {
    /// Position of the class name.
    pub pos: Pos,
    /// The class name.
    pub class: String,
    /// `false` for `not C`.
    pub positive: bool,
}

/// Attribute reference: direct or inverse.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AstAttRef {
    /// `f`
    Direct(String),
    /// `(inv f)`
    Inverse(String),
}

impl AstAttRef {
    /// The underlying attribute name.
    #[must_use]
    pub fn name(&self) -> &str {
        match self {
            AstAttRef::Direct(n) | AstAttRef::Inverse(n) => n,
        }
    }
}

/// A cardinality `(min, max)`; `max = None` is `∞`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AstCard {
    /// Lower bound.
    pub min: u64,
    /// Upper bound, `None` for `*`.
    pub max: Option<u64>,
}

/// One attribute specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AstAttrSpec {
    /// Position of the attribute reference.
    pub pos: Pos,
    /// The attribute or inverse attribute.
    pub att: AstAttRef,
    /// The cardinality (defaults to `(0, *)` when omitted).
    pub card: AstCard,
    /// The filler type (`None` means unconstrained).
    pub ty: Option<AstFormula>,
}

/// One participation specification `R[U] : (x, y)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AstParticipation {
    /// Position of the relation name.
    pub pos: Pos,
    /// Relation name.
    pub rel: String,
    /// Role name.
    pub role: String,
    /// The cardinality.
    pub card: AstCard,
}

/// A parsed relation definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AstRelDef {
    /// Position of the relation name.
    pub pos: Pos,
    /// Relation name.
    pub name: String,
    /// Role names in declaration order.
    pub roles: Vec<String>,
    /// Role-clauses of the constraints part.
    pub constraints: Vec<AstRoleClause>,
}

/// A disjunction of `(role : formula)` literals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AstRoleClause {
    /// The literals.
    pub literals: Vec<AstRoleLiteral>,
}

/// One `(role : formula)` literal of a role-clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AstRoleLiteral {
    /// Position of the role name.
    pub pos: Pos,
    /// The role name.
    pub role: String,
    /// The formula constraining the role's filler.
    pub formula: AstFormula,
}
