//! Recursive-descent parser for the CAR schema syntax.
//!
//! Grammar (CNF formulas: `or` binds tighter than `and`; parentheses may
//! wrap a single disjunctive clause):
//!
//! ```text
//! schema        := (class_def | relation_def)* EOF
//! class_def     := 'class' IDENT ['isa' formula]
//!                  ['attributes' attr_spec (';' attr_spec)*]
//!                  ['participates_in' participation (';' participation)*]
//!                  'endclass'
//! attr_spec     := att_ref ':' [card] [formula]
//! att_ref       := IDENT | '(' 'inv' IDENT ')'
//! card          := '(' NAT ',' (NAT | '*') ')'
//! participation := IDENT '[' IDENT ']' ':' card
//! formula       := clause ('and' clause)*
//! clause        := term ('or' term)*
//! term          := ['not'] IDENT | '(' clause ')'
//! relation_def  := 'relation' IDENT '(' IDENT (',' IDENT)* ')'
//!                  ['constraints' role_clause (';' role_clause)*]
//!                  'endrelation'
//! role_clause   := role_lit ('or' role_lit)*
//! role_lit      := '(' IDENT ':' formula ')'
//! ```

use crate::ast::*;
use crate::error::ParseError;
use crate::token::{Token, TokenKind};

/// Maximum nesting depth of parenthesized clauses. Far beyond any
/// legitimate CNF schema (parentheses only group one clause level), and
/// small enough that the recursive-descent parser cannot be driven into
/// a stack overflow by untrusted input.
const MAX_NESTING: usize = 64;

/// Parses a token stream (ending in `Eof`) into an AST.
pub fn parse(tokens: &[Token]) -> Result<AstSchema, ParseError> {
    let mut p = Parser { tokens, pos: 0 };
    p.schema()
}

struct Parser<'t> {
    tokens: &'t [Token],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek2(&self) -> &Token {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> &Token {
        let t = &self.tokens[self.pos.min(self.tokens.len() - 1)];
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, kind: &TokenKind, what: &'static str) -> Result<(), ParseError> {
        if &self.peek().kind == kind {
            self.bump();
            Ok(())
        } else {
            Err(ParseError::unexpected(self.peek().pos, &self.peek().kind, what))
        }
    }

    fn ident(&mut self, what: &'static str) -> Result<String, ParseError> {
        match &self.peek().kind {
            TokenKind::Ident(name) => {
                let name = name.clone();
                self.bump();
                Ok(name)
            }
            other => Err(ParseError::unexpected(self.peek().pos, other, what)),
        }
    }

    fn schema(&mut self) -> Result<AstSchema, ParseError> {
        let mut schema = AstSchema::default();
        loop {
            match self.peek().kind {
                TokenKind::KwClass => schema.classes.push(self.class_def()?),
                TokenKind::KwRelation => schema.relations.push(self.relation_def()?),
                TokenKind::Eof => return Ok(schema),
                ref other => {
                    return Err(ParseError::unexpected(
                        self.peek().pos,
                        other,
                        "'class', 'relation' or end of input",
                    ))
                }
            }
        }
    }

    fn class_def(&mut self) -> Result<AstClassDef, ParseError> {
        self.expect(&TokenKind::KwClass, "'class'")?;
        let pos = self.peek().pos;
        let name = self.ident("class name")?;
        let mut def =
            AstClassDef { pos, name, isa: None, attrs: Vec::new(), participations: Vec::new() };
        if self.peek().kind == TokenKind::KwIsa {
            self.bump();
            def.isa = Some(self.formula()?);
        }
        if self.peek().kind == TokenKind::KwAttributes {
            self.bump();
            def.attrs.push(self.attr_spec()?);
            while self.peek().kind == TokenKind::Semicolon
                && !matches!(
                    self.peek2().kind,
                    TokenKind::KwParticipatesIn | TokenKind::KwEndClass
                )
            {
                self.bump();
                def.attrs.push(self.attr_spec()?);
            }
            // Tolerate a trailing semicolon before the next section.
            if self.peek().kind == TokenKind::Semicolon {
                self.bump();
            }
        }
        if self.peek().kind == TokenKind::KwParticipatesIn {
            self.bump();
            def.participations.push(self.participation()?);
            while self.peek().kind == TokenKind::Semicolon {
                self.bump();
                if self.peek().kind == TokenKind::KwEndClass {
                    break;
                }
                def.participations.push(self.participation()?);
            }
        }
        self.expect(&TokenKind::KwEndClass, "'endclass'")?;
        Ok(def)
    }

    fn attr_spec(&mut self) -> Result<AstAttrSpec, ParseError> {
        let pos = self.peek().pos;
        let att = if self.peek().kind == TokenKind::LParen {
            self.bump();
            self.expect(&TokenKind::KwInv, "'inv'")?;
            let name = self.ident("attribute name")?;
            self.expect(&TokenKind::RParen, "')'")?;
            AstAttRef::Inverse(name)
        } else {
            AstAttRef::Direct(self.ident("attribute name")?)
        };
        self.expect(&TokenKind::Colon, "':'")?;
        // Optional cardinality: '(' NAT ... — distinguished from a
        // parenthesized clause by the token after '('.
        let card = if self.peek().kind == TokenKind::LParen
            && matches!(self.peek2().kind, TokenKind::Nat(_))
        {
            self.card()?
        } else {
            AstCard { min: 0, max: None }
        };
        // Optional filler type.
        let ty = if self.starts_formula() { Some(self.formula()?) } else { None };
        Ok(AstAttrSpec { pos, att, card, ty })
    }

    fn starts_formula(&self) -> bool {
        matches!(
            self.peek().kind,
            TokenKind::Ident(_) | TokenKind::KwNot | TokenKind::LParen
        )
    }

    fn card(&mut self) -> Result<AstCard, ParseError> {
        self.expect(&TokenKind::LParen, "'('")?;
        let min = match self.peek().kind {
            TokenKind::Nat(n) => {
                self.bump();
                n
            }
            ref other => {
                return Err(ParseError::unexpected(self.peek().pos, other, "lower bound"))
            }
        };
        self.expect(&TokenKind::Comma, "','")?;
        let max = match self.peek().kind {
            TokenKind::Nat(n) => {
                self.bump();
                Some(n)
            }
            TokenKind::Star => {
                self.bump();
                None
            }
            ref other => {
                return Err(ParseError::unexpected(
                    self.peek().pos,
                    other,
                    "upper bound or '*'",
                ))
            }
        };
        self.expect(&TokenKind::RParen, "')'")?;
        Ok(AstCard { min, max })
    }

    fn participation(&mut self) -> Result<AstParticipation, ParseError> {
        let pos = self.peek().pos;
        let rel = self.ident("relation name")?;
        self.expect(&TokenKind::LBracket, "'['")?;
        let role = self.ident("role name")?;
        self.expect(&TokenKind::RBracket, "']'")?;
        self.expect(&TokenKind::Colon, "':'")?;
        let card = self.card()?;
        Ok(AstParticipation { pos, rel, role, card })
    }

    fn formula(&mut self) -> Result<AstFormula, ParseError> {
        let mut clauses = vec![self.clause(0)?];
        while self.peek().kind == TokenKind::KwAnd {
            self.bump();
            clauses.push(self.clause(0)?);
        }
        Ok(AstFormula { clauses })
    }

    fn clause(&mut self, depth: usize) -> Result<Vec<AstLiteral>, ParseError> {
        let mut literals = self.term(depth)?;
        while self.peek().kind == TokenKind::KwOr {
            self.bump();
            literals.extend(self.term(depth)?);
        }
        Ok(literals)
    }

    fn term(&mut self, depth: usize) -> Result<Vec<AstLiteral>, ParseError> {
        match self.peek().kind {
            TokenKind::KwNot => {
                self.bump();
                let pos = self.peek().pos;
                let class = self.ident("class name after 'not'")?;
                Ok(vec![AstLiteral { pos, class, positive: false }])
            }
            TokenKind::Ident(_) => {
                let pos = self.peek().pos;
                let class = self.ident("class name")?;
                Ok(vec![AstLiteral { pos, class, positive: true }])
            }
            TokenKind::LParen => {
                // Each nesting level recurses, so depth must be bounded
                // or adversarial input (`((((…A…))))`) overflows the
                // stack and aborts instead of erroring.
                if depth >= MAX_NESTING {
                    return Err(ParseError::NestingTooDeep {
                        pos: self.peek().pos,
                        limit: MAX_NESTING,
                    });
                }
                self.bump();
                let inner = self.clause(depth + 1)?;
                self.expect(&TokenKind::RParen, "')'")?;
                Ok(inner)
            }
            ref other => Err(ParseError::unexpected(
                self.peek().pos,
                other,
                "class literal or '('",
            )),
        }
    }

    fn relation_def(&mut self) -> Result<AstRelDef, ParseError> {
        self.expect(&TokenKind::KwRelation, "'relation'")?;
        let pos = self.peek().pos;
        let name = self.ident("relation name")?;
        self.expect(&TokenKind::LParen, "'('")?;
        let mut roles = vec![self.ident("role name")?];
        while self.peek().kind == TokenKind::Comma {
            self.bump();
            roles.push(self.ident("role name")?);
        }
        self.expect(&TokenKind::RParen, "')'")?;
        let mut constraints = Vec::new();
        if self.peek().kind == TokenKind::KwConstraints {
            self.bump();
            constraints.push(self.role_clause()?);
            while self.peek().kind == TokenKind::Semicolon {
                self.bump();
                if self.peek().kind == TokenKind::KwEndRelation {
                    break;
                }
                constraints.push(self.role_clause()?);
            }
        }
        self.expect(&TokenKind::KwEndRelation, "'endrelation'")?;
        Ok(AstRelDef { pos, name, roles, constraints })
    }

    fn role_clause(&mut self) -> Result<AstRoleClause, ParseError> {
        let mut literals = vec![self.role_literal()?];
        while self.peek().kind == TokenKind::KwOr {
            self.bump();
            literals.push(self.role_literal()?);
        }
        Ok(AstRoleClause { literals })
    }

    fn role_literal(&mut self) -> Result<AstRoleLiteral, ParseError> {
        self.expect(&TokenKind::LParen, "'('")?;
        let pos = self.peek().pos;
        let role = self.ident("role name")?;
        self.expect(&TokenKind::Colon, "':'")?;
        let formula = self.formula()?;
        self.expect(&TokenKind::RParen, "')'")?;
        Ok(AstRoleLiteral { pos, role, formula })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_text(input: &str) -> Result<AstSchema, ParseError> {
        parse(&lex(input)?)
    }

    #[test]
    fn minimal_class() {
        let s = parse_text("class Person endclass").unwrap();
        assert_eq!(s.classes.len(), 1);
        assert_eq!(s.classes[0].name, "Person");
        assert!(s.classes[0].isa.is_none());
    }

    #[test]
    fn isa_formula_cnf_precedence() {
        let s = parse_text("class S isa Person and not Professor or Grad endclass").unwrap();
        let isa = s.classes[0].isa.as_ref().unwrap();
        // (Person) ∧ (¬Professor ∨ Grad)
        assert_eq!(isa.clauses.len(), 2);
        assert_eq!(isa.clauses[0].len(), 1);
        assert_eq!(isa.clauses[1].len(), 2);
        assert!(!isa.clauses[1][0].positive);
        assert_eq!(isa.clauses[1][1].class, "Grad");
    }

    #[test]
    fn parenthesized_clause() {
        let s = parse_text("class S isa (A or B) and C endclass").unwrap();
        let isa = s.classes[0].isa.as_ref().unwrap();
        assert_eq!(isa.clauses.len(), 2);
        assert_eq!(isa.clauses[0].len(), 2);
    }

    #[test]
    fn attribute_specs() {
        let s = parse_text(
            "class Course
               attributes taught_by : (1, 1) Professor or Grad;
                          (inv teaches) : (0, *) Person;
                          free_form : Topic
             endclass",
        )
        .unwrap();
        let attrs = &s.classes[0].attrs;
        assert_eq!(attrs.len(), 3);
        assert_eq!(attrs[0].att, AstAttRef::Direct("taught_by".into()));
        assert_eq!(attrs[0].card, AstCard { min: 1, max: Some(1) });
        assert_eq!(attrs[0].ty.as_ref().unwrap().clauses[0].len(), 2);
        assert_eq!(attrs[1].att, AstAttRef::Inverse("teaches".into()));
        assert_eq!(attrs[1].card, AstCard { min: 0, max: None });
        // Omitted cardinality defaults to (0, *).
        assert_eq!(attrs[2].card, AstCard { min: 0, max: None });
        assert!(attrs[2].ty.is_some());
    }

    #[test]
    fn attribute_type_starting_with_paren_is_not_a_card() {
        let s = parse_text("class A attributes f : (X or Y) endclass").unwrap();
        let spec = &s.classes[0].attrs[0];
        assert_eq!(spec.card, AstCard { min: 0, max: None });
        assert_eq!(spec.ty.as_ref().unwrap().clauses[0].len(), 2);
    }

    #[test]
    fn participations() {
        let s = parse_text(
            "class Student
               participates_in Enrollment[enrolls] : (1, 6);
                               Exam[of] : (0, *)
             endclass",
        )
        .unwrap();
        let parts = &s.classes[0].participations;
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].rel, "Enrollment");
        assert_eq!(parts[0].role, "enrolls");
        assert_eq!(parts[0].card, AstCard { min: 1, max: Some(6) });
        assert_eq!(parts[1].card.max, None);
    }

    #[test]
    fn relation_with_constraints() {
        let s = parse_text(
            "relation Enrollment(enrolled_in, enrolls)
               constraints (enrolled_in : Course);
                           (enrolled_in : not Adv_Course) or (enrolls : Grad_Student)
             endrelation",
        )
        .unwrap();
        let r = &s.relations[0];
        assert_eq!(r.name, "Enrollment");
        assert_eq!(r.roles, vec!["enrolled_in", "enrolls"]);
        assert_eq!(r.constraints.len(), 2);
        assert_eq!(r.constraints[1].literals.len(), 2);
        assert_eq!(r.constraints[1].literals[1].role, "enrolls");
    }

    #[test]
    fn trailing_semicolons_are_tolerated() {
        let s = parse_text(
            "class A attributes f : (1, 1) T; participates_in R[u] : (0, 2); endclass
             relation R(u, v) constraints (u : A); endrelation",
        )
        .unwrap();
        assert_eq!(s.classes[0].attrs.len(), 1);
        assert_eq!(s.classes[0].participations.len(), 1);
        assert_eq!(s.relations[0].constraints.len(), 1);
    }

    #[test]
    fn error_messages_carry_positions() {
        let err = parse_text("class endclass").unwrap_err();
        match err {
            ParseError::Unexpected { pos, expected, .. } => {
                assert_eq!(pos.line, 1);
                assert_eq!(expected, "class name");
            }
            other => panic!("unexpected error {other:?}"),
        }
        let err = parse_text("class A isa endclass").unwrap_err();
        assert!(err.to_string().contains("class literal"));
    }

    #[test]
    fn unexpected_top_level_token() {
        let err = parse_text("blah").unwrap_err();
        assert!(err.to_string().contains("'class', 'relation'"));
    }

    #[test]
    fn nesting_within_the_limit_parses() {
        let text = format!("class A isa {}B{} endclass", "(".repeat(60), ")".repeat(60));
        let s = parse_text(&text).unwrap();
        assert_eq!(s.classes[0].isa.as_ref().unwrap().clauses.len(), 1);
    }

    #[test]
    fn runaway_nesting_errors_instead_of_overflowing_the_stack() {
        // Regression: before the depth limit, each '(' recursed
        // term→clause→term, so ~100k parens aborted the process with a
        // stack overflow — a remote crash once schemas arrive over a
        // socket.
        let text = format!("class A isa {}B{} endclass", "(".repeat(100_000), ")".repeat(100_000));
        match parse_text(&text).unwrap_err() {
            ParseError::NestingTooDeep { limit, .. } => assert_eq!(limit, 64),
            other => panic!("expected NestingTooDeep, got {other:?}"),
        }
    }
}
