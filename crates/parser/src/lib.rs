//! # car-parser — concrete syntax for CAR schemas
//!
//! A lexer, recursive-descent parser and pretty-printer for the schema
//! syntax used in the paper's figures, ASCII-ized:
//!
//! ```text
//! class Student
//!   isa Person and not Professor
//!   attributes student_id : (1, 1) String
//!   participates_in Enrollment[enrolls] : (1, 6)
//! endclass
//!
//! relation Enrollment(enrolled_in, enrolls)
//!   constraints (enrolled_in : Course);
//!               (enrolls : Student);
//!               (enrolled_in : not Adv_Course) or (enrolls : Grad_Student)
//! endrelation
//! ```
//!
//! * class-formulae are CNF: `or` binds tighter than `and`, and a
//!   parenthesized clause may appear anywhere a clause may
//!   (`A and (B or C)`); `not`/`~` negates a class symbol;
//! * cardinalities are `(min, max)` with `*` or `inf` for `∞`; an omitted
//!   cardinality means `(0, *)`;
//! * `(inv A)` references the inverse of attribute `A`;
//! * `#` and `//` start line comments.
//!
//! [`parse_schema`] produces a validated [`car_core::Schema`];
//! [`pretty`] renders a schema back to this syntax, and
//! `parse_schema(&pretty(&s))` reproduces `s` up to symbol interning
//! order (property-tested in the workspace integration tests).

mod ast;
mod error;
mod lexer;
mod lower;
mod parser;
mod pretty;
mod token;

pub use ast::{
    AstAttRef, AstAttrSpec, AstCard, AstClassDef, AstFormula, AstLiteral, AstParticipation,
    AstRelDef, AstRoleClause, AstRoleLiteral, AstSchema,
};
pub use error::{ParseError, SpannedSchemaError};
pub use pretty::pretty;
pub use token::Pos;

use car_core::Schema;

/// Parses schema text into a validated [`Schema`].
///
/// Definition-level validation errors (duplicate definitions, invalid
/// cardinalities, unknown roles, undefined relations) are reported with
/// the source position of the offending token
/// ([`SpannedSchemaError`]). Class names that only occur inside
/// formulas join the alphabet as fresh classes — use
/// [`parse_schema_strict`] to reject them instead.
///
/// # Errors
/// [`ParseError`] on lexical or syntactic errors (with source position)
/// and on schema-validation errors.
pub fn parse_schema(input: &str) -> Result<Schema, ParseError> {
    let ast = parse_ast(input)?;
    lower::lower(&ast)
}

/// Like [`parse_schema`], but additionally rejects references to
/// classes that are never introduced by a `class ... endclass`
/// definition ([`car_core::SchemaError::UndeclaredClass`], with the
/// position of the offending formula literal).
///
/// # Errors
/// [`ParseError`] on lexical, syntactic or schema-validation errors.
pub fn parse_schema_strict(input: &str) -> Result<Schema, ParseError> {
    let ast = parse_ast(input)?;
    lower::lower_strict(&ast)
}

/// Parses schema text to the untyped AST (mainly for tooling and tests).
///
/// # Errors
/// [`ParseError`] on lexical or syntactic errors.
pub fn parse_ast(input: &str) -> Result<AstSchema, ParseError> {
    let tokens = lexer::lex(input)?;
    parser::parse(&tokens)
}
