//! Connection-dense polling reactor: hold tens of thousands of idle
//! connections on a handful of threads.
//!
//! The legacy `--net-mode threads` path spawns one OS thread per
//! connection, so a fleet's memory and scheduler cost scales with
//! *connected* clients. This module replaces that with a classic
//! single-threaded epoll event loop plus a small fixed worker pool:
//!
//! * **One event-loop thread** owns the `epoll` instance, the
//!   (nonblocking) listener, and every connection's state machine. It
//!   never executes protocol operations — a long reasoning query can
//!   never stall readiness polling.
//! * **A fixed worker pool** (`--net-workers`, default 4) executes
//!   decoded frames via [`Service::execute_frame`] and hands finished
//!   responses back through a completion queue + wakeup `eventfd`.
//!   Leader-based query coalescing, admission control, and per-round
//!   budgets live in the service layer and work unchanged: a coalescing
//!   leader drains its batch inside its own worker call, so the pool
//!   can never deadlock on followers alone.
//! * **Per-connection state machines** decode frames incrementally
//!   from a byte buffer ([`FrameDecoder`] — the same decoder the
//!   threads path uses, which is what keeps framing bit-identical
//!   across modes). Reads are bounded: while an operation is in flight
//!   (at most one per connection, preserving pipelined response order)
//!   the connection's `EPOLLIN` interest is masked, so a client cannot
//!   grow the server's buffers by streaming requests faster than they
//!   are answered.
//! * **Write backpressure**: responses go to a per-connection output
//!   buffer; a partial `write` re-arms `EPOLLOUT` instead of blocking
//!   a thread. A client that stops reading accumulates output only up
//!   to `max_write_buffer_bytes`, then is disconnected.
//!
//! Everything is std-only: the handful of syscalls epoll needs are
//! declared directly in [`sys`] (libc is always linked; no crates).
//!
//! Graceful shutdown mirrors the threads path: stop accepting,
//! half-close every connection's read side, finish in-flight requests
//! and flush their responses, then close. See `DESIGN.md` §15.

use crate::protocol::{err_response, Decoded, FrameDecoder, WireError};
use crate::service::{NetCounters, Service};
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

/// Direct syscall declarations for the readiness API. `std::net` has no
/// portable non-blocking readiness interface; these five calls are the
/// entire surface the reactor needs, and libc is always linked into
/// Rust binaries on Linux, so plain `extern "C"` declarations suffice.
pub mod sys {
    use std::os::fd::RawFd;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;

    const F_GETFL: i32 = 3;
    const F_SETFL: i32 = 4;
    const O_NONBLOCK: i32 = 0o4000;

    /// The kernel's `struct epoll_event`. Packed on x86-64 (the kernel
    /// ABI omits the padding there); naturally aligned elsewhere.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy, Default)]
    pub struct EpollEvent {
        pub events: u32,
        /// User token (we store a connection id, never a pointer).
        pub data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32)
            -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
        fn close(fd: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    fn last_err() -> std::io::Error {
        std::io::Error::last_os_error()
    }

    /// Sets `O_NONBLOCK` via `fcntl` (the reactor never wants a
    /// blocking socket).
    pub fn set_nonblocking(fd: RawFd) -> std::io::Result<()> {
        // SAFETY: fcntl on a valid fd with F_GETFL/F_SETFL touches no
        // caller memory.
        unsafe {
            let flags = fcntl(fd, F_GETFL, 0);
            if flags < 0 {
                return Err(last_err());
            }
            if fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0 {
                return Err(last_err());
            }
        }
        Ok(())
    }

    /// An owned epoll instance.
    pub struct Epoll {
        fd: RawFd,
    }

    impl Epoll {
        /// Creates the epoll fd (close-on-exec).
        ///
        /// # Errors
        /// Propagates `epoll_create1` failure.
        pub fn new() -> std::io::Result<Epoll> {
            // SAFETY: no pointers involved.
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(last_err());
            }
            Ok(Epoll { fd })
        }

        fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> std::io::Result<()> {
            let mut ev = EpollEvent { events, data: token };
            // SAFETY: `ev` outlives the call; the kernel copies it.
            if unsafe { epoll_ctl(self.fd, op, fd, &mut ev) } < 0 {
                return Err(last_err());
            }
            Ok(())
        }

        /// Registers `fd` with the given interest set and token.
        ///
        /// # Errors
        /// Propagates `epoll_ctl` failure.
        pub fn add(&self, fd: RawFd, token: u64, events: u32) -> std::io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, events, token)
        }

        /// Changes `fd`'s interest set.
        ///
        /// # Errors
        /// Propagates `epoll_ctl` failure.
        pub fn modify(&self, fd: RawFd, token: u64, events: u32) -> std::io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, events, token)
        }

        /// Deregisters `fd`.
        pub fn del(&self, fd: RawFd) {
            let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, 0);
        }

        /// Waits for readiness events; retries `EINTR` internally.
        ///
        /// # Errors
        /// Propagates non-`EINTR` `epoll_wait` failures.
        pub fn wait(
            &self,
            events: &mut [EpollEvent],
            timeout_ms: i32,
        ) -> std::io::Result<usize> {
            loop {
                // SAFETY: `events` is a valid mutable slice; the kernel
                // writes at most `events.len()` entries.
                let n = unsafe {
                    epoll_wait(
                        self.fd,
                        events.as_mut_ptr(),
                        events.len() as i32,
                        timeout_ms,
                    )
                };
                if n >= 0 {
                    return Ok(n as usize);
                }
                let err = last_err();
                if err.kind() != std::io::ErrorKind::Interrupted {
                    return Err(err);
                }
            }
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            // SAFETY: we own the fd.
            unsafe { close(self.fd) };
        }
    }

    /// A nonblocking `eventfd` used to wake an epoll loop from other
    /// threads (worker completions, stop/drain requests) — and to
    /// unblock the legacy accept loop without the old trick of dialing
    /// a throwaway connection to ourselves.
    pub struct Wakeup {
        fd: RawFd,
    }

    impl Wakeup {
        /// Creates the eventfd (nonblocking, close-on-exec).
        ///
        /// # Errors
        /// Propagates `eventfd` failure.
        pub fn new() -> std::io::Result<Wakeup> {
            // SAFETY: no pointers involved.
            let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
            if fd < 0 {
                return Err(last_err());
            }
            Ok(Wakeup { fd })
        }

        /// The fd to register with an [`Epoll`].
        #[must_use]
        pub fn raw_fd(&self) -> RawFd {
            self.fd
        }

        /// Makes the fd readable, waking any epoll waiter.
        pub fn notify(&self) {
            let one: u64 = 1;
            // SAFETY: writes 8 bytes from a live stack value.
            unsafe { write(self.fd, std::ptr::addr_of!(one).cast(), 8) };
        }

        /// Consumes pending notifications so the (level-triggered) fd
        /// stops polling readable.
        pub fn drain(&self) {
            let mut counter: u64 = 0;
            // SAFETY: reads 8 bytes into a live stack value.
            while unsafe { read(self.fd, std::ptr::addr_of_mut!(counter).cast(), 8) } == 8 {}
        }
    }

    impl Drop for Wakeup {
        fn drop(&mut self) {
            // SAFETY: we own the fd.
            unsafe { close(self.fd) };
        }
    }

    /// Raises the soft `RLIMIT_NOFILE` to the hard cap and returns the
    /// resulting soft limit. Connection-dense tools (the reactor load
    /// generator) call this so 10k+ sockets don't trip the default
    /// 1024-fd soft limit.
    #[must_use]
    pub fn raise_fd_limit() -> u64 {
        #[repr(C)]
        struct RLimit {
            cur: u64,
            max: u64,
        }
        extern "C" {
            fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
            fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
        }
        const RLIMIT_NOFILE: i32 = 7;
        let mut lim = RLimit { cur: 0, max: 0 };
        // SAFETY: `lim` is a live stack value of the C layout.
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
            return 0;
        }
        if lim.cur < lim.max {
            let raised = RLimit { cur: lim.max, max: lim.max };
            // SAFETY: passes a live, initialized struct by pointer.
            if unsafe { setrlimit(RLIMIT_NOFILE, &raised) } == 0 {
                return raised.cur;
            }
        }
        lim.cur
    }
}

use sys::{Epoll, EpollEvent, Wakeup};

/// Epoll token of the listener.
const TOKEN_LISTENER: u64 = 0;
/// Epoll token of the wakeup eventfd.
const TOKEN_WAKE: u64 = 1;
/// First connection token.
const TOKEN_CONN0: u64 = 2;

/// Events fetched per `epoll_wait` call.
const MAX_EVENTS: usize = 1024;

/// Read chunk size per `read` call.
const READ_CHUNK: usize = 16 * 1024;

/// A control request from the server handle to the event loop.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Control {
    /// Stop accepting, half-close reads, finish in-flight work, flush,
    /// then exit when the last connection closes.
    Drain,
    /// Tear everything down now.
    Stop,
}

/// One decoded frame awaiting a worker.
struct Job {
    conn: u64,
    raw: Vec<u8>,
}

/// A finished response on its way back to the event loop.
struct Completion {
    conn: u64,
    response: String,
}

/// State shared between the event loop, the workers, and the server
/// handle.
struct Shared {
    jobs: Mutex<VecDeque<Job>>,
    jobs_ready: Condvar,
    workers_stop: AtomicBool,
    completions: Mutex<Vec<Completion>>,
    control: Mutex<Option<Control>>,
    wake: Wakeup,
    counters: Arc<NetCounters>,
}

impl Shared {
    fn push_control(&self, control: Control) {
        let mut slot = self.control.lock().unwrap_or_else(PoisonError::into_inner);
        // Stop outranks Drain; never downgrade.
        if *slot != Some(Control::Stop) {
            *slot = Some(control);
        }
        drop(slot);
        self.wake.notify();
    }
}

fn worker_loop(shared: &Shared, service: &Service) {
    loop {
        let job = {
            let mut queue = shared.jobs.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if shared.workers_stop.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(job) = queue.pop_front() {
                    shared
                        .counters
                        .worker_queue_depth
                        .store(queue.len() as u64, Ordering::Relaxed);
                    break job;
                }
                queue = shared
                    .jobs_ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let response = service.execute_frame(&job.raw);
        shared
            .completions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(Completion { conn: job.conn, response });
        shared.wake.notify();
    }
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Pending output; `out_pos` is the write cursor (both reset when
    /// fully flushed).
    out: Vec<u8>,
    out_pos: usize,
    /// Current epoll interest set (to skip redundant `EPOLL_CTL_MOD`s).
    interest: u32,
    /// An operation is in flight in the worker pool. At most one per
    /// connection: preserves pipelined response order and bounds the
    /// job queue at the number of connections.
    busy: bool,
    /// EOF observed (client half-closed, or a server drain half-closed
    /// the read side). Buffered frames still finish.
    read_closed: bool,
    /// `decoder.finish()` already consumed the final partial frame.
    finished: bool,
}

impl Conn {
    fn pending_out(&self) -> usize {
        self.out.len() - self.out_pos
    }
}

/// The event-loop state. Owned by the loop thread.
struct EventLoop {
    epoll: Epoll,
    listener: TcpListener,
    shared: Arc<Shared>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    accepting: bool,
    draining: bool,
    max_frame: usize,
    max_write_buffer: usize,
}

impl EventLoop {
    fn counters(&self) -> &NetCounters {
        &self.shared.counters
    }

    fn run(mut self) {
        let mut events = vec![EpollEvent::default(); MAX_EVENTS];
        loop {
            let n = match self.epoll.wait(&mut events, -1) {
                Ok(n) => n,
                Err(_) => return self.teardown(),
            };
            self.counters().wakeups.fetch_add(1, Ordering::Relaxed);
            for event in events.iter().take(n) {
                let (token, revents) = (event.data, event.events);
                match token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKE => self.shared.wake.drain(),
                    _ => self.conn_ready(token, revents),
                }
            }
            self.apply_completions();
            let control = self
                .shared
                .control
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take();
            match control {
                Some(Control::Stop) => return self.teardown(),
                Some(Control::Drain) => self.begin_drain(),
                None => {}
            }
            if self.draining && self.conns.is_empty() {
                return;
            }
        }
    }

    fn teardown(&mut self) {
        for (_, conn) in self.conns.drain() {
            self.epoll.del(conn.stream.as_raw_fd());
        }
        self.counters().conns_open.store(0, Ordering::Relaxed);
    }

    /// Accepts until the backlog is empty (level-triggered listener).
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if !self.accepting {
                        continue; // drain raced an incoming connection
                    }
                    if sys::set_nonblocking(stream.as_raw_fd()).is_err() {
                        continue;
                    }
                    stream.set_nodelay(true).ok();
                    let token = self.next_token;
                    self.next_token += 1;
                    let interest = sys::EPOLLIN | sys::EPOLLRDHUP;
                    if self
                        .epoll
                        .add(stream.as_raw_fd(), token, interest)
                        .is_err()
                    {
                        continue;
                    }
                    self.conns.insert(
                        token,
                        Conn {
                            stream,
                            decoder: FrameDecoder::new(self.max_frame),
                            out: Vec::new(),
                            out_pos: 0,
                            interest,
                            busy: false,
                            read_closed: false,
                            finished: false,
                        },
                    );
                    self.counters().conns_accepted.fetch_add(1, Ordering::Relaxed);
                    self.counters()
                        .conns_open
                        .store(self.conns.len() as u64, Ordering::Relaxed);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                // Transient accept errors (ECONNABORTED, EMFILE, …):
                // stop this round; the level-triggered listener will
                // re-fire while the backlog is non-empty.
                Err(_) => break,
            }
        }
    }

    fn conn_ready(&mut self, token: u64, revents: u32) {
        if !self.conns.contains_key(&token) {
            return; // closed earlier in this batch
        }
        if revents & sys::EPOLLERR != 0 {
            self.close_conn(token);
            return;
        }
        if revents & sys::EPOLLOUT != 0 && !self.flush(token) {
            return;
        }
        if revents & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP) != 0 {
            self.read_and_pump(token);
        } else {
            self.refresh_interest(token);
            self.maybe_close(token);
        }
    }

    /// Reads available bytes and advances the state machine until the
    /// connection is busy (op in flight), out of input, or closed.
    fn read_and_pump(&mut self, token: u64) {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            if !self.pump(token) {
                return; // closed
            }
            let Some(conn) = self.conns.get_mut(&token) else { return };
            if conn.busy || conn.decoder.has_event() || conn.read_closed {
                break;
            }
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.read_closed = true;
                    // Loop once more: pump() surfaces the final
                    // partial frame via `finish()`.
                }
                Ok(n) => conn.decoder.push(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            }
        }
        self.refresh_interest(token);
        self.maybe_close(token);
    }

    /// Processes decoded events until one is dispatched to a worker (or
    /// none remain). Returns false if the connection was closed.
    fn pump(&mut self, token: u64) -> bool {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else { return false };
            if conn.busy {
                return true;
            }
            let event = match conn.decoder.next_event() {
                Some(event) => event,
                None if conn.read_closed && !conn.finished => {
                    conn.finished = true;
                    match conn.decoder.finish() {
                        Some(event) => event,
                        None => return true,
                    }
                }
                None => return true,
            };
            match event {
                Decoded::TooLarge => {
                    self.shared
                        .counters
                        .frames_oversized
                        .fetch_add(1, Ordering::Relaxed);
                    let max = self.max_frame;
                    let response = err_response(
                        None,
                        &WireError::new(
                            "frame_too_large",
                            format!("request frame exceeds {max} bytes"),
                        ),
                    );
                    if !self.enqueue_output(token, response.as_bytes()) {
                        return false;
                    }
                }
                Decoded::Frame(raw) => {
                    if raw.iter().all(u8::is_ascii_whitespace) {
                        continue; // blank line between frames
                    }
                    conn.busy = true;
                    self.shared
                        .counters
                        .frames_decoded
                        .fetch_add(1, Ordering::Relaxed);
                    let mut queue = self
                        .shared
                        .jobs
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner);
                    queue.push_back(Job { conn: token, raw });
                    self.shared
                        .counters
                        .worker_queue_depth
                        .store(queue.len() as u64, Ordering::Relaxed);
                    drop(queue);
                    self.shared.jobs_ready.notify_one();
                    return true;
                }
            }
        }
    }

    /// Appends bytes to the connection's output buffer, enforcing the
    /// backpressure cap, and attempts a flush. Returns false if the
    /// connection was closed (cap exceeded or write error).
    fn enqueue_output(&mut self, token: u64, bytes: &[u8]) -> bool {
        {
            let Some(conn) = self.conns.get_mut(&token) else { return false };
            conn.out.extend_from_slice(bytes);
        }
        if !self.flush(token) {
            return false;
        }
        // The cap applies to what the socket would not take: a prompt
        // reader drains through the kernel and never accumulates here,
        // while a stalled one is disconnected rather than buffered
        // without bound.
        let over_cap = self
            .conns
            .get(&token)
            .is_some_and(|conn| conn.pending_out() > self.max_write_buffer);
        if over_cap {
            self.shared
                .counters
                .write_buffer_disconnects
                .fetch_add(1, Ordering::Relaxed);
            self.close_conn(token);
            return false;
        }
        true
    }

    /// Writes as much pending output as the socket accepts. A partial
    /// write or `WouldBlock` counts one backpressure stall and arms
    /// `EPOLLOUT`. Returns false if the connection was closed.
    fn flush(&mut self, token: u64) -> bool {
        let close = {
            let Some(conn) = self.conns.get_mut(&token) else { return false };
            let mut close = false;
            while conn.out_pos < conn.out.len() {
                match conn.stream.write(&conn.out[conn.out_pos..]) {
                    Ok(0) => {
                        close = true;
                        break;
                    }
                    Ok(n) => {
                        conn.out_pos += n;
                        if conn.out_pos < conn.out.len() {
                            // Kernel buffer full mid-response.
                            self.shared
                                .counters
                                .backpressure_stalls
                                .fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        self.shared
                            .counters
                            .backpressure_stalls
                            .fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => {
                        close = true;
                        break;
                    }
                }
            }
            if conn.out_pos == conn.out.len() {
                conn.out.clear();
                conn.out_pos = 0;
            }
            close
        };
        if close {
            self.close_conn(token);
            return false;
        }
        self.refresh_interest(token);
        true
    }

    /// Recomputes the epoll interest set from the state machine: read
    /// only while nothing is pending (bounded accumulation), write only
    /// while output is stalled.
    fn refresh_interest(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        let mut want = sys::EPOLLRDHUP;
        if !conn.busy && !conn.read_closed && !conn.decoder.has_event() {
            want |= sys::EPOLLIN;
        }
        if conn.out_pos < conn.out.len() {
            want |= sys::EPOLLOUT;
        }
        if want != conn.interest {
            if self
                .epoll
                .modify(conn.stream.as_raw_fd(), token, want)
                .is_err()
            {
                self.close_conn(token);
                return;
            }
            conn.interest = want;
        }
    }

    /// Closes the connection once EOF was seen, every buffered frame
    /// was answered, and the output is flushed.
    fn maybe_close(&mut self, token: u64) {
        let Some(conn) = self.conns.get(&token) else { return };
        if conn.read_closed
            && conn.finished
            && !conn.busy
            && !conn.decoder.has_event()
            && conn.pending_out() == 0
        {
            self.close_conn(token);
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            self.epoll.del(conn.stream.as_raw_fd());
        }
        self.counters()
            .conns_open
            .store(self.conns.len() as u64, Ordering::Relaxed);
    }

    fn apply_completions(&mut self) {
        let done = std::mem::take(
            &mut *self
                .shared
                .completions
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        for Completion { conn: token, response } in done {
            let Some(conn) = self.conns.get_mut(&token) else {
                continue; // connection died while the op ran
            };
            conn.busy = false;
            if !self.enqueue_output(token, response.as_bytes()) {
                continue;
            }
            // Resume: next buffered frame, or re-arm EPOLLIN.
            self.read_and_pump(token);
        }
    }

    /// Graceful drain: stop accepting, half-close every read side.
    /// Already-received frames (including in-flight ops) finish and
    /// flush; then each connection closes.
    fn begin_drain(&mut self) {
        if self.draining {
            return;
        }
        self.draining = true;
        self.accepting = false;
        self.epoll.del(self.listener.as_raw_fd());
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            if let Some(conn) = self.conns.get_mut(&token) {
                let _ = conn.stream.shutdown(std::net::Shutdown::Read);
                conn.read_closed = true;
            }
            self.read_and_pump(token);
        }
    }
}

/// A running reactor: the event-loop thread plus its worker pool.
pub(crate) struct Handle {
    shared: Arc<Shared>,
    loop_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Handle {
    /// Starts the event loop and `workers` protocol workers over an
    /// already-bound listener.
    ///
    /// # Errors
    /// Propagates epoll/eventfd setup failures.
    pub fn spawn(
        listener: TcpListener,
        service: Arc<Service>,
        workers: usize,
    ) -> std::io::Result<Handle> {
        listener.set_nonblocking(true)?;
        let epoll = Epoll::new()?;
        let wake = Wakeup::new()?;
        epoll.add(listener.as_raw_fd(), TOKEN_LISTENER, sys::EPOLLIN)?;
        epoll.add(wake.raw_fd(), TOKEN_WAKE, sys::EPOLLIN)?;
        let shared = Arc::new(Shared {
            jobs: Mutex::new(VecDeque::new()),
            jobs_ready: Condvar::new(),
            workers_stop: AtomicBool::new(false),
            completions: Mutex::new(Vec::new()),
            control: Mutex::new(None),
            wake,
            counters: Arc::clone(service.net_counters()),
        });
        let worker_handles: Vec<JoinHandle<()>> = (0..workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let service = Arc::clone(&service);
                std::thread::spawn(move || worker_loop(&shared, &service))
            })
            .collect();
        let config = service.config();
        let event_loop = EventLoop {
            epoll,
            listener,
            shared: Arc::clone(&shared),
            conns: HashMap::new(),
            next_token: TOKEN_CONN0,
            accepting: true,
            draining: false,
            max_frame: config.max_frame_bytes,
            max_write_buffer: config.max_write_buffer_bytes,
        };
        let loop_thread = std::thread::spawn(move || event_loop.run());
        Ok(Handle { shared, loop_thread: Some(loop_thread), workers: worker_handles })
    }

    /// Asks the loop to drain gracefully (see [`EventLoop::begin_drain`]).
    pub fn request_drain(&self) {
        self.shared.push_control(Control::Drain);
    }

    /// Asks the loop to tear down immediately.
    pub fn request_stop(&self) {
        self.shared.push_control(Control::Stop);
    }

    /// Open connections right now (the loop's gauge).
    pub fn conns_open(&self) -> u64 {
        self.shared.counters.conns_open.load(Ordering::Relaxed)
    }

    /// Joins the event loop, then stops and joins the workers.
    pub fn join_all(&mut self) {
        if let Some(handle) = self.loop_thread.take() {
            let _ = handle.join();
        }
        self.shared.workers_stop.store(true, Ordering::SeqCst);
        self.shared.jobs_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wakeup_makes_an_epoll_wait_return() {
        let epoll = Epoll::new().unwrap();
        let wake = Wakeup::new().unwrap();
        epoll.add(wake.raw_fd(), 7, sys::EPOLLIN).unwrap();
        let mut events = [EpollEvent::default(); 4];
        // Nothing pending: a zero-timeout wait returns no events.
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
        wake.notify();
        assert_eq!(epoll.wait(&mut events, 1000).unwrap(), 1);
        let data = events[0].data;
        assert_eq!(data, 7);
        // Drained, the fd stops polling readable.
        wake.drain();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn fd_limit_raise_reports_a_usable_limit() {
        assert!(sys::raise_fd_limit() >= 1024 || sys::raise_fd_limit() == 0);
    }
}
