//! Wire protocol: line-delimited JSON requests and responses.
//!
//! Every frame is one JSON object on one line. Requests carry:
//!
//! * `"op"` — the operation name (required);
//! * `"id"` — an optional client-chosen `u64`, echoed verbatim in the
//!   response so clients can pipeline requests;
//! * `"tenant"` — the tenant name (defaults to `"default"`); quotas and
//!   workspace namespaces are per-tenant;
//! * `"workspace"` — the workspace name (required for all workspace
//!   ops).
//!
//! Operations: `ping`, `open` (with `"schema"` DSL text and optional
//! `"replace"`), `close`, `apply` (with `"deltas"`), `undo`, `redo`,
//! `query` (with `"queries"`), `stats`, `list`, and `shutdown`
//! (honored only with `--allow-remote-shutdown`).
//!
//! Responses are `{"id":…,"ok":true,…}` or
//! `{"id":…,"ok":false,"error":{"kind":…,"message":…,…}}`. A malformed
//! frame produces an error response with a byte/line position — it
//! never tears down the connection.
//!
//! Formulae on the wire are CNF: an array of clauses, each an array of
//! literals `{"class":"Name"}` or `{"class":"Name","neg":true}`. An
//! empty array is ⊤. Cardinalities are two-element arrays
//! `[min, max]` with `null` max meaning ∞.

use crate::json::{self, obj, s, Json};
use car_core::syntax::{Card, ClassClause, ClassFormula, ClassLiteral, Schema};
use car_core::{EditError, Query, ReasonerError, RoleLiteralSpec, SchemaDelta};
use car_parser::ParseError;

/// A protocol-level error: machine-readable kind, human message, and an
/// optional source position (line/col for schema text, byte offset for
/// JSON frames).
#[derive(Debug, Clone, PartialEq)]
pub struct WireError {
    /// Stable machine-readable discriminator, e.g. `"bad_request"`.
    pub kind: &'static str,
    /// Human-readable description.
    pub message: String,
    /// 1-based line in embedded schema text, if known.
    pub line: Option<u32>,
    /// 1-based column in embedded schema text, if known.
    pub col: Option<u32>,
    /// 0-based byte offset into the frame, if known.
    pub offset: Option<usize>,
}

impl WireError {
    /// An error with no position.
    #[must_use]
    pub fn new(kind: &'static str, message: impl Into<String>) -> WireError {
        WireError { kind, message: message.into(), line: None, col: None, offset: None }
    }

    /// A `bad_request` error (shape problems in an otherwise valid JSON
    /// frame).
    #[must_use]
    pub fn bad_request(message: impl Into<String>) -> WireError {
        WireError::new("bad_request", message)
    }

    /// The error object for the wire.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields = vec![("kind", s(self.kind)), ("message", s(&self.message))];
        if let Some(line) = self.line {
            fields.push(("line", Json::UInt(u64::from(line))));
        }
        if let Some(col) = self.col {
            fields.push(("col", Json::UInt(u64::from(col))));
        }
        if let Some(offset) = self.offset {
            fields.push(("offset", Json::UInt(offset as u64)));
        }
        obj(fields)
    }
}

impl From<&ParseError> for WireError {
    fn from(e: &ParseError) -> WireError {
        let (kind, pos) = match e {
            ParseError::Invalid { errors } => {
                ("invalid_schema", errors.first().and_then(|se| se.pos))
            }
            ParseError::Lex { pos, .. }
            | ParseError::NumberOverflow { pos }
            | ParseError::NestingTooDeep { pos, .. }
            | ParseError::Unexpected { pos, .. } => ("parse", Some(*pos)),
        };
        WireError {
            kind,
            message: e.to_string(),
            line: pos.map(|p| p.line),
            col: pos.map(|p| p.col),
            offset: None,
        }
    }
}

impl From<&EditError> for WireError {
    fn from(e: &EditError) -> WireError {
        let kind = match e {
            EditError::UnknownClass { .. } => "unknown_class",
            EditError::DuplicateClass { .. } => "duplicate_class",
            EditError::UnknownRelation { .. } => "unknown_relation",
            EditError::UnknownRole { .. } => "unknown_role",
            EditError::ClassReferenced { .. } => "class_referenced",
            EditError::RelationReferenced { .. } => "relation_referenced",
            EditError::Invalid(_) => "invalid_schema",
        };
        WireError::new(kind, e.to_string())
    }
}

/// Request envelope fields shared by every operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Client-chosen request id, echoed in the response.
    pub id: Option<u64>,
    /// Tenant name.
    pub tenant: String,
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answers `{"ok":true,"pong":true}`.
    Ping,
    /// Create (or with `replace` overwrite) a workspace from schema
    /// text.
    Open {
        /// Workspace name.
        workspace: String,
        /// Schema DSL text.
        schema: String,
        /// Overwrite an existing workspace instead of erroring.
        replace: bool,
    },
    /// Drop a workspace.
    Close {
        /// Workspace name.
        workspace: String,
    },
    /// Apply deltas sequentially; stops at the first failure.
    Apply {
        /// Workspace name.
        workspace: String,
        /// Name-addressed edits, applied in order.
        deltas: Vec<WireDelta>,
    },
    /// Undo the last applied delta.
    Undo {
        /// Workspace name.
        workspace: String,
    },
    /// Redo the last undone delta.
    Redo {
        /// Workspace name.
        workspace: String,
    },
    /// Answer reasoning queries (batched and possibly coalesced with
    /// concurrent requests).
    Query {
        /// Workspace name.
        workspace: String,
        /// Name-addressed queries.
        queries: Vec<WireQuery>,
    },
    /// Workspace statistics.
    Stats {
        /// Workspace name.
        workspace: String,
    },
    /// List this tenant's workspaces.
    List,
    /// Server health: role (leader/follower), per-workspace lease
    /// epochs and fencing state, recovery counters, durability
    /// counters.
    Health,
    /// Ask the server to drain and exit gracefully (snapshotting every
    /// workspace). Honored only when the operator started the server
    /// with remote shutdown enabled; otherwise answered with
    /// `forbidden`.
    Shutdown,
}

/// A name-addressed [`SchemaDelta`] as it appears on the wire. Class
/// formulae are resolved against the workspace's *current* schema at
/// apply time (deltas in one `apply` are resolved one at a time, so a
/// delta may reference a class added earlier in the same request).
#[derive(Debug, Clone, PartialEq)]
pub enum WireDelta {
    /// `{"kind":"add_class","name":…}`
    AddClass {
        /// New class name.
        name: String,
    },
    /// `{"kind":"remove_class","name":…}`
    RemoveClass {
        /// Class to remove.
        name: String,
    },
    /// `{"kind":"set_isa","class":…,"isa":<formula>}`
    SetIsa {
        /// Class being redefined.
        class: String,
        /// New isa formula (empty = ⊤, clearing it).
        isa: WireFormula,
    },
    /// `{"kind":"set_attribute","class":…,"attr":…,"inverse":…,"spec":
    /// {"card":…,"type":<formula>} | null}`
    SetAttribute {
        /// Class being redefined.
        class: String,
        /// Attribute name.
        attr: String,
        /// Address the `inv attr` specification.
        inverse: bool,
        /// `Some` replaces/adds, `None` removes.
        spec: Option<(Card, WireFormula)>,
    },
    /// `{"kind":"set_participation","class":…,"rel":…,"role":…,
    /// "card":[min,max] | null}`
    SetParticipation {
        /// Class being redefined.
        class: String,
        /// Relation name.
        rel: String,
        /// Role name.
        role: String,
        /// `Some` replaces/adds, `None` removes.
        card: Option<Card>,
    },
    /// `{"kind":"set_relation","name":…,"roles":[…],"constraints":
    /// [[{"role":…,"formula":<formula>},…],…]}`
    SetRelation {
        /// Relation name.
        name: String,
        /// Role names in tuple order.
        roles: Vec<String>,
        /// Role clauses.
        constraints: Vec<Vec<(String, WireFormula)>>,
    },
    /// `{"kind":"remove_relation","name":…}`
    RemoveRelation {
        /// Relation to remove.
        name: String,
    },
}

/// CNF formula with name-addressed literals: clauses of
/// `(class name, negated)`.
pub type WireFormula = Vec<Vec<(String, bool)>>;

/// A name-addressed [`Query`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireQuery {
    /// `{"kind":"satisfiable","class":…}`
    Satisfiable(String),
    /// `{"kind":"coherent"}`
    Coherent,
    /// `{"kind":"subsumes","sup":…,"sub":…}`
    Subsumes {
        /// Candidate subsumer.
        sup: String,
        /// Candidate subsumee.
        sub: String,
    },
    /// `{"kind":"disjoint","a":…,"b":…}`
    Disjoint(String, String),
    /// `{"kind":"equivalent","a":…,"b":…}`
    Equivalent(String, String),
}

impl WireQuery {
    /// Resolves class names against `schema`. The error is the first
    /// unknown class name.
    ///
    /// # Errors
    /// The unresolvable name.
    pub fn resolve(&self, schema: &Schema) -> Result<Query, String> {
        let id = |name: &String| schema.class_id(name).ok_or_else(|| name.clone());
        Ok(match self {
            WireQuery::Satisfiable(c) => Query::IsSatisfiable(id(c)?),
            WireQuery::Coherent => Query::IsCoherent,
            WireQuery::Subsumes { sup, sub } => {
                Query::Subsumes { sup: id(sup)?, sub: id(sub)? }
            }
            WireQuery::Disjoint(a, b) => Query::Disjoint(id(a)?, id(b)?),
            WireQuery::Equivalent(a, b) => Query::Equivalent(id(a)?, id(b)?),
        })
    }
}

fn resolve_formula(wire: &WireFormula, schema: &Schema) -> Result<ClassFormula, WireError> {
    let mut clauses = Vec::with_capacity(wire.len());
    for clause in wire {
        let mut literals = Vec::with_capacity(clause.len());
        for (name, neg) in clause {
            let class = schema.class_id(name).ok_or_else(|| {
                WireError::new("unknown_class", format!("unknown class '{name}' in formula"))
            })?;
            literals.push(ClassLiteral { class, positive: !neg });
        }
        clauses.push(ClassClause::new(literals));
    }
    Ok(ClassFormula { clauses })
}

impl WireDelta {
    /// Resolves the delta's formulae against the current `schema` into
    /// a typed [`SchemaDelta`].
    ///
    /// # Errors
    /// `unknown_class` if a formula references a class the schema does
    /// not have. (Name errors for the delta's *target* symbols are left
    /// to [`car_core::incremental::apply_delta`], which reports them as
    /// [`EditError`]s.)
    pub fn resolve(&self, schema: &Schema) -> Result<SchemaDelta, WireError> {
        Ok(match self {
            WireDelta::AddClass { name } => SchemaDelta::AddClass { name: name.clone() },
            WireDelta::RemoveClass { name } => {
                SchemaDelta::RemoveClass { name: name.clone() }
            }
            WireDelta::SetIsa { class, isa } => SchemaDelta::SetIsa {
                class: class.clone(),
                isa: resolve_formula(isa, schema)?,
            },
            WireDelta::SetAttribute { class, attr, inverse, spec } => {
                let spec = match spec {
                    Some((card, ty)) => Some((*card, resolve_formula(ty, schema)?)),
                    None => None,
                };
                SchemaDelta::SetAttribute {
                    class: class.clone(),
                    attr: attr.clone(),
                    inverse: *inverse,
                    spec,
                }
            }
            WireDelta::SetParticipation { class, rel, role, card } => {
                SchemaDelta::SetParticipation {
                    class: class.clone(),
                    rel: rel.clone(),
                    role: role.clone(),
                    card: *card,
                }
            }
            WireDelta::SetRelation { name, roles, constraints } => {
                let mut clauses = Vec::with_capacity(constraints.len());
                for clause in constraints {
                    let mut lits = Vec::with_capacity(clause.len());
                    for (role, formula) in clause {
                        lits.push(RoleLiteralSpec {
                            role: role.clone(),
                            formula: resolve_formula(formula, schema)?,
                        });
                    }
                    clauses.push(lits);
                }
                SchemaDelta::SetRelation {
                    name: name.clone(),
                    roles: roles.clone(),
                    constraints: clauses,
                }
            }
            WireDelta::RemoveRelation { name } => {
                SchemaDelta::RemoveRelation { name: name.clone() }
            }
        })
    }
}

// ---------------------------------------------------------------------
// Request parsing
// ---------------------------------------------------------------------

fn str_field(v: &Json, key: &str) -> Result<String, WireError> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| WireError::bad_request(format!("missing or non-string field '{key}'")))
}

fn workspace_field(v: &Json) -> Result<String, WireError> {
    str_field(v, "workspace")
}

fn parse_card(v: &Json) -> Result<Card, WireError> {
    let items = v
        .as_arr()
        .filter(|a| a.len() == 2)
        .ok_or_else(|| WireError::bad_request("cardinality must be [min, max]"))?;
    let min = items[0]
        .as_u64()
        .ok_or_else(|| WireError::bad_request("cardinality min must be a nonnegative integer"))?;
    let max = if items[1].is_null() {
        None
    } else {
        Some(items[1].as_u64().ok_or_else(|| {
            WireError::bad_request("cardinality max must be a nonnegative integer or null")
        })?)
    };
    Ok(Card { min, max })
}

fn parse_formula(v: &Json) -> Result<WireFormula, WireError> {
    let clauses = v
        .as_arr()
        .ok_or_else(|| WireError::bad_request("formula must be an array of clauses"))?;
    let mut out = Vec::with_capacity(clauses.len());
    for clause in clauses {
        let lits = clause
            .as_arr()
            .ok_or_else(|| WireError::bad_request("formula clause must be an array of literals"))?;
        let mut clause_out = Vec::with_capacity(lits.len());
        for lit in lits {
            let class = str_field(lit, "class")?;
            let neg = lit.get("neg").and_then(Json::as_bool).unwrap_or(false);
            clause_out.push((class, neg));
        }
        out.push(clause_out);
    }
    Ok(out)
}

fn parse_delta(v: &Json) -> Result<WireDelta, WireError> {
    let kind = str_field(v, "kind")?;
    Ok(match kind.as_str() {
        "add_class" => WireDelta::AddClass { name: str_field(v, "name")? },
        "remove_class" => WireDelta::RemoveClass { name: str_field(v, "name")? },
        "set_isa" => {
            let isa = match v.get("isa") {
                None => Vec::new(),
                Some(j) if j.is_null() => Vec::new(),
                Some(j) => parse_formula(j)?,
            };
            WireDelta::SetIsa { class: str_field(v, "class")?, isa }
        }
        "set_attribute" => {
            let spec = match v.get("spec") {
                None => None,
                Some(j) if j.is_null() => None,
                Some(j) => {
                    let card = j
                        .get("card")
                        .map(parse_card)
                        .transpose()?
                        .unwrap_or(Card { min: 0, max: None });
                    let ty = match j.get("type") {
                        None => Vec::new(),
                        Some(t) if t.is_null() => Vec::new(),
                        Some(t) => parse_formula(t)?,
                    };
                    Some((card, ty))
                }
            };
            WireDelta::SetAttribute {
                class: str_field(v, "class")?,
                attr: str_field(v, "attr")?,
                inverse: v.get("inverse").and_then(Json::as_bool).unwrap_or(false),
                spec,
            }
        }
        "set_participation" => {
            let card = match v.get("card") {
                None => None,
                Some(j) if j.is_null() => None,
                Some(j) => Some(parse_card(j)?),
            };
            WireDelta::SetParticipation {
                class: str_field(v, "class")?,
                rel: str_field(v, "rel")?,
                role: str_field(v, "role")?,
                card,
            }
        }
        "set_relation" => {
            let roles_json = v
                .get("roles")
                .and_then(Json::as_arr)
                .ok_or_else(|| WireError::bad_request("set_relation needs a 'roles' array"))?;
            let mut roles = Vec::with_capacity(roles_json.len());
            for r in roles_json {
                roles.push(
                    r.as_str()
                        .map(str::to_owned)
                        .ok_or_else(|| WireError::bad_request("role names must be strings"))?,
                );
            }
            let mut constraints = Vec::new();
            if let Some(cs) = v.get("constraints") {
                let cs = cs
                    .as_arr()
                    .ok_or_else(|| WireError::bad_request("'constraints' must be an array"))?;
                for clause in cs {
                    let lits = clause.as_arr().ok_or_else(|| {
                        WireError::bad_request("constraint clause must be an array")
                    })?;
                    let mut clause_out = Vec::with_capacity(lits.len());
                    for lit in lits {
                        let role = str_field(lit, "role")?;
                        let formula = match lit.get("formula") {
                            None => Vec::new(),
                            Some(f) => parse_formula(f)?,
                        };
                        clause_out.push((role, formula));
                    }
                    constraints.push(clause_out);
                }
            }
            WireDelta::SetRelation { name: str_field(v, "name")?, roles, constraints }
        }
        "remove_relation" => WireDelta::RemoveRelation { name: str_field(v, "name")? },
        other => {
            return Err(WireError::bad_request(format!("unknown delta kind '{other}'")));
        }
    })
}

fn parse_query(v: &Json) -> Result<WireQuery, WireError> {
    let kind = str_field(v, "kind")?;
    Ok(match kind.as_str() {
        "satisfiable" => WireQuery::Satisfiable(str_field(v, "class")?),
        "coherent" => WireQuery::Coherent,
        "subsumes" => {
            WireQuery::Subsumes { sup: str_field(v, "sup")?, sub: str_field(v, "sub")? }
        }
        "disjoint" => WireQuery::Disjoint(str_field(v, "a")?, str_field(v, "b")?),
        "equivalent" => WireQuery::Equivalent(str_field(v, "a")?, str_field(v, "b")?),
        other => {
            return Err(WireError::bad_request(format!("unknown query kind '{other}'")));
        }
    })
}

/// Parses one already-JSON-decoded frame into an envelope and request.
///
/// The envelope is returned even on error when it can be extracted, so
/// the error response can still echo the request id.
///
/// # Errors
/// `bad_request` on shape problems.
pub fn parse_request(frame: &Json) -> (Envelope, Result<Request, WireError>) {
    let envelope = Envelope {
        id: frame.get("id").and_then(Json::as_u64),
        tenant: frame
            .get("tenant")
            .and_then(Json::as_str)
            .unwrap_or("default")
            .to_owned(),
    };
    let request = parse_request_body(frame);
    (envelope, request)
}

fn parse_request_body(frame: &Json) -> Result<Request, WireError> {
    if !matches!(frame, Json::Obj(_)) {
        return Err(WireError::bad_request("frame must be a JSON object"));
    }
    let op = str_field(frame, "op")?;
    Ok(match op.as_str() {
        "ping" => Request::Ping,
        "open" => Request::Open {
            workspace: workspace_field(frame)?,
            schema: str_field(frame, "schema")?,
            replace: frame.get("replace").and_then(Json::as_bool).unwrap_or(false),
        },
        "close" => Request::Close { workspace: workspace_field(frame)? },
        "apply" => {
            let deltas_json = frame
                .get("deltas")
                .and_then(Json::as_arr)
                .ok_or_else(|| WireError::bad_request("apply needs a 'deltas' array"))?;
            let mut deltas = Vec::with_capacity(deltas_json.len());
            for d in deltas_json {
                deltas.push(parse_delta(d)?);
            }
            Request::Apply { workspace: workspace_field(frame)?, deltas }
        }
        "undo" => Request::Undo { workspace: workspace_field(frame)? },
        "redo" => Request::Redo { workspace: workspace_field(frame)? },
        "query" => {
            let queries_json = frame
                .get("queries")
                .and_then(Json::as_arr)
                .ok_or_else(|| WireError::bad_request("query needs a 'queries' array"))?;
            let mut queries = Vec::with_capacity(queries_json.len());
            for q in queries_json {
                queries.push(parse_query(q)?);
            }
            Request::Query { workspace: workspace_field(frame)?, queries }
        }
        "stats" => Request::Stats { workspace: workspace_field(frame)? },
        "list" => Request::List,
        "health" => Request::Health,
        "shutdown" => Request::Shutdown,
        other => return Err(WireError::bad_request(format!("unknown op '{other}'"))),
    })
}

// ---------------------------------------------------------------------
// Response building
// ---------------------------------------------------------------------

fn id_json(id: Option<u64>) -> Json {
    match id {
        Some(n) => Json::UInt(n),
        None => Json::Null,
    }
}

/// A success response: `{"id":…,"ok":true,…extra}`.
#[must_use]
pub fn ok_response(id: Option<u64>, extra: Vec<(&str, Json)>) -> String {
    let mut fields = vec![("id", id_json(id)), ("ok", Json::Bool(true))];
    fields.extend(extra);
    json::to_string(&obj(fields)) + "\n"
}

/// An error response: `{"id":…,"ok":false,"error":{…}}`.
#[must_use]
pub fn err_response(id: Option<u64>, error: &WireError) -> String {
    json::to_string(&obj(vec![
        ("id", id_json(id)),
        ("ok", Json::Bool(false)),
        ("error", error.to_json()),
    ])) + "\n"
}

/// One per-query answer object. `Ok(bool)` becomes
/// `{"outcome":"proved"|"disproved"}`; an error becomes
/// `{"outcome":"unknown","cause":…,"message":…}` so clients see *why*
/// (deadline vs cancellation vs step/memory budget vs a structurally
/// invalid query) without the connection or the workspace failing.
#[must_use]
pub fn answer_json(result: &Result<bool, ReasonerError>) -> Json {
    match result {
        Ok(true) => obj(vec![("outcome", s("proved"))]),
        Ok(false) => obj(vec![("outcome", s("disproved"))]),
        Err(e) => unknown_answer(reasoner_error_cause(e), &e.to_string()),
    }
}

/// The stable cause string for a [`ReasonerError`].
#[must_use]
pub fn reasoner_error_cause(e: &ReasonerError) -> &'static str {
    match e {
        ReasonerError::TooLarge(_) => "too_large",
        ReasonerError::Extract(_) => "extract",
        ReasonerError::InvalidSchema(_) => "invalid_schema",
        ReasonerError::ClassOutOfRange { .. } => "class_out_of_range",
        ReasonerError::DeadlineExceeded(_) => "deadline",
        ReasonerError::Cancelled(_) => "cancelled",
        ReasonerError::BudgetExhausted(_) => "budget",
    }
}

/// An `{"outcome":"unknown","cause":…,"message":…}` answer.
#[must_use]
pub fn unknown_answer(cause: &str, message: &str) -> Json {
    obj(vec![("outcome", s("unknown")), ("cause", s(cause)), ("message", s(message))])
}

// ---------------------------------------------------------------------
// Incremental frame decoding
// ---------------------------------------------------------------------

/// One decoded framing event from a [`FrameDecoder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decoded {
    /// A complete frame (without the trailing newline). May be
    /// whitespace-only; callers skip those without responding.
    Frame(Vec<u8>),
    /// A line exceeded the frame cap. Its bytes were discarded up to and
    /// including the terminating newline (resync-at-newline), so the
    /// next frame decodes normally.
    TooLarge,
}

/// Incremental `\n`-delimited frame decoder over an externally-fed byte
/// stream, with the exact semantics of the original blocking
/// `read_frame` loop: frames are capped at `max` bytes (the cap is
/// inclusive), an over-cap line is discarded to its newline and
/// surfaced as one [`Decoded::TooLarge`] event, and a final
/// unterminated line at EOF counts as a frame ([`FrameDecoder::finish`]).
///
/// Both net modes decode through this type, which is what makes their
/// framing behavior bit-identical. Memory is bounded: the partial-line
/// accumulator never exceeds `max` bytes (an over-cap partial is
/// dropped immediately and the decoder switches to discard mode), and
/// callers stop feeding input while decoded frames are pending.
pub struct FrameDecoder {
    max: usize,
    /// The current (last, unterminated) line so far. Empty while `over`.
    partial: Vec<u8>,
    /// The current line already exceeded `max`; its remaining bytes are
    /// being discarded until the next newline.
    over: bool,
    /// Complete events not yet consumed, in arrival order.
    events: std::collections::VecDeque<Decoded>,
}

impl FrameDecoder {
    /// A fresh decoder with an inclusive per-frame byte cap.
    #[must_use]
    pub fn new(max: usize) -> FrameDecoder {
        FrameDecoder {
            max,
            partial: Vec::new(),
            over: false,
            events: std::collections::VecDeque::new(),
        }
    }

    /// Feeds bytes read from the connection. Complete lines become
    /// queued events; a trailing fragment is buffered (or dropped, if it
    /// pushes the current line over the cap).
    pub fn push(&mut self, bytes: &[u8]) {
        let mut rest = bytes;
        while let Some(pos) = rest.iter().position(|&b| b == b'\n') {
            let (line, after) = rest.split_at(pos);
            rest = &after[1..];
            if self.over || self.partial.len() + line.len() > self.max {
                self.partial.clear();
                self.over = false;
                self.events.push_back(Decoded::TooLarge);
            } else {
                let mut frame = std::mem::take(&mut self.partial);
                frame.extend_from_slice(line);
                self.events.push_back(Decoded::Frame(frame));
            }
        }
        if !rest.is_empty() && !self.over {
            if self.partial.len() + rest.len() > self.max {
                self.partial.clear();
                self.over = true;
            } else {
                self.partial.extend_from_slice(rest);
            }
        }
    }

    /// The next decoded event, if any.
    pub fn next_event(&mut self) -> Option<Decoded> {
        self.events.pop_front()
    }

    /// Whether a decoded event is ready (used to pause reading while a
    /// response is in flight without losing pipelined frames).
    #[must_use]
    pub fn has_event(&self) -> bool {
        !self.events.is_empty()
    }

    /// Signals EOF: a buffered unterminated line becomes a final frame
    /// (or `TooLarge`, if it had overflowed). Returns `None` on a clean
    /// boundary. Idempotent once drained.
    pub fn finish(&mut self) -> Option<Decoded> {
        if let Some(event) = self.events.pop_front() {
            return Some(event);
        }
        if self.over {
            self.over = false;
            self.partial.clear();
            return Some(Decoded::TooLarge);
        }
        if self.partial.is_empty() {
            return None;
        }
        Some(Decoded::Frame(std::mem::take(&mut self.partial)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn parses_a_query_request() {
        let frame = parse(
            r#"{"id":7,"op":"query","tenant":"acme","workspace":"w",
                "queries":[{"kind":"subsumes","sup":"Person","sub":"Student"},
                           {"kind":"coherent"}]}"#,
        )
        .unwrap();
        let (env, req) = parse_request(&frame);
        assert_eq!(env.id, Some(7));
        assert_eq!(env.tenant, "acme");
        assert_eq!(
            req.unwrap(),
            Request::Query {
                workspace: "w".into(),
                queries: vec![
                    WireQuery::Subsumes { sup: "Person".into(), sub: "Student".into() },
                    WireQuery::Coherent,
                ],
            }
        );
    }

    #[test]
    fn shape_errors_keep_the_request_id() {
        let frame = parse(r#"{"id":3,"op":"query","workspace":"w"}"#).unwrap();
        let (env, req) = parse_request(&frame);
        assert_eq!(env.id, Some(3));
        let err = req.unwrap_err();
        assert_eq!(err.kind, "bad_request");
    }

    #[test]
    fn parses_deltas() {
        let frame = parse(
            r#"{"op":"apply","workspace":"w","deltas":[
                {"kind":"add_class","name":"C"},
                {"kind":"set_isa","class":"C","isa":[[{"class":"A"},{"class":"B","neg":true}]]},
                {"kind":"set_attribute","class":"C","attr":"age","spec":{"card":[1,1],"type":[[{"class":"A"}]]}},
                {"kind":"set_participation","class":"C","rel":"R","role":"r1","card":[0,null]},
                {"kind":"set_relation","name":"R","roles":["r1","r2"],"constraints":[[{"role":"r1","formula":[[{"class":"A"}]]}]]},
                {"kind":"remove_relation","name":"R"}]}"#,
        )
        .unwrap();
        let (_, req) = parse_request(&frame);
        let Request::Apply { deltas, .. } = req.unwrap() else { panic!("not apply") };
        assert_eq!(deltas.len(), 6);
        assert_eq!(
            deltas[1],
            WireDelta::SetIsa {
                class: "C".into(),
                isa: vec![vec![("A".into(), false), ("B".into(), true)]],
            }
        );
        assert_eq!(
            deltas[3],
            WireDelta::SetParticipation {
                class: "C".into(),
                rel: "R".into(),
                role: "r1".into(),
                card: Some(Card { min: 0, max: None }),
            }
        );
    }

    #[test]
    fn unknown_ops_and_kinds_are_bad_requests() {
        for text in [
            r#"{"op":"explode"}"#,
            r#"{"op":"apply","workspace":"w","deltas":[{"kind":"warp"}]}"#,
            r#"{"op":"query","workspace":"w","queries":[{"kind":"guess"}]}"#,
            r#"[1,2,3]"#,
            r#""just a string""#,
        ] {
            let (_, req) = parse_request(&parse(text).unwrap());
            assert_eq!(req.unwrap_err().kind, "bad_request", "{text}");
        }
    }

    #[test]
    fn responses_are_single_lines() {
        let ok = ok_response(Some(1), vec![("pong", Json::Bool(true))]);
        assert_eq!(ok, "{\"id\":1,\"ok\":true,\"pong\":true}\n");
        let err = err_response(None, &WireError::bad_request("nope"));
        assert!(err.ends_with('\n'));
        assert_eq!(err.matches('\n').count(), 1);
    }

    #[test]
    fn decoder_splits_pipelined_frames_and_counts_partial_finals() {
        let mut d = FrameDecoder::new(10);
        d.push(b"abc\nde");
        assert_eq!(d.next_event(), Some(Decoded::Frame(b"abc".to_vec())));
        assert_eq!(d.next_event(), None);
        d.push(b"f\n");
        assert_eq!(d.next_event(), Some(Decoded::Frame(b"def".to_vec())));
        d.push(b"tail");
        assert_eq!(d.next_event(), None);
        assert_eq!(d.finish(), Some(Decoded::Frame(b"tail".to_vec())));
        assert_eq!(d.finish(), None);
    }

    #[test]
    fn decoder_discards_oversized_lines_to_the_newline() {
        let mut d = FrameDecoder::new(10);
        // Dripped in one byte at a time, the over-cap line still costs
        // at most `max` bytes of buffer and resyncs at its newline.
        for b in b"x".iter().cycle().take(100) {
            d.push(&[*b]);
        }
        assert_eq!(d.next_event(), None);
        d.push(b"yyy\nok\n");
        assert_eq!(d.next_event(), Some(Decoded::TooLarge));
        assert_eq!(d.next_event(), Some(Decoded::Frame(b"ok".to_vec())));
        assert_eq!(d.next_event(), None);
    }

    #[test]
    fn decoder_exact_cap_is_not_too_large() {
        let mut d = FrameDecoder::new(5);
        d.push(b"12345\n123456\n");
        assert_eq!(d.next_event(), Some(Decoded::Frame(b"12345".to_vec())));
        assert_eq!(d.next_event(), Some(Decoded::TooLarge));
    }

    #[test]
    fn decoder_oversized_final_line_is_too_large_at_eof() {
        let mut d = FrameDecoder::new(4);
        d.push(b"toolongline");
        assert_eq!(d.finish(), Some(Decoded::TooLarge));
        assert_eq!(d.finish(), None);
    }

    #[test]
    fn decoder_preserves_order_across_cap_violations() {
        let mut d = FrameDecoder::new(4);
        d.push(b"ok1\nwaytoolong\nok2\n");
        assert_eq!(d.next_event(), Some(Decoded::Frame(b"ok1".to_vec())));
        assert_eq!(d.next_event(), Some(Decoded::TooLarge));
        assert_eq!(d.next_event(), Some(Decoded::Frame(b"ok2".to_vec())));
        assert_eq!(d.next_event(), None);
    }
}
