//! # car-server — a multi-tenant reasoning service over TCP
//!
//! A dependency-free (std-only) long-running server exposing
//! [`car_core::Workspace`]s over line-delimited JSON. Design goals, in
//! order:
//!
//! 1. **Isolation** — a malformed frame, an invalid schema, a bad
//!    delta, or a budget-exhausting query affects exactly one response;
//!    never the connection, never the workspace, never another tenant.
//! 2. **Bounded everything** — frame size, query queue depth, undo
//!    history, caches, per-round reasoning budgets, and (new with the
//!    reactor) read accumulation and write backpressure buffers all
//!    have caps; overload degrades to `unknown` answers or a single
//!    disconnected slow client instead of queueing unboundedly.
//! 3. **Coalescing** — concurrent queries against the same workspace
//!    version are answered by a single batched reasoning pass (leader
//!    drains the queue; followers wait on a condvar).
//!
//! Two network runtimes share one protocol implementation
//! ([`protocol::FrameDecoder`] + [`Service::execute_frame`]), selected
//! by [`service::NetMode`] (`--net-mode`):
//!
//! * **`threads`** (default) — one thread per connection. Simple and
//!   portable; costs a thread per *connected* client. Blocking writes
//!   carry a `write_timeout` so a stalled reader disconnects instead
//!   of wedging its thread forever.
//! * **`reactor`** (Linux) — the [`reactor`] module's epoll event loop
//!   plus a fixed worker pool: tens of thousands of idle connections on
//!   a handful of threads. See `DESIGN.md` §15.
//!
//! All cross-connection state lives in [`service::Service`] behind
//! sharded mutexes, identically in both modes.
//!
//! See `DESIGN.md` §11 for the protocol reference.

pub mod json;
pub mod protocol;
#[cfg(target_os = "linux")]
pub mod reactor;
pub mod service;

use protocol::{err_response, Decoded, FrameDecoder, WireError};
use service::{NetMode, ServerConfig, Service, StoreMode};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Wakes the threads-mode accept loop (which blocks in epoll on Linux,
/// or polls with a short sleep elsewhere) so [`Server::stop`] works
/// even when the listener backlog is full — the old implementation
/// dialed a throwaway connection to itself, which needs a free backlog
/// slot to work.
#[cfg(target_os = "linux")]
struct AcceptWaker {
    epoll: reactor::sys::Epoll,
    wake: reactor::sys::Wakeup,
}

#[cfg(target_os = "linux")]
impl AcceptWaker {
    fn new(listener: &TcpListener) -> std::io::Result<AcceptWaker> {
        use std::os::fd::AsRawFd;
        let epoll = reactor::sys::Epoll::new()?;
        let wake = reactor::sys::Wakeup::new()?;
        epoll.add(listener.as_raw_fd(), 0, reactor::sys::EPOLLIN)?;
        epoll.add(wake.raw_fd(), 1, reactor::sys::EPOLLIN)?;
        Ok(AcceptWaker { epoll, wake })
    }

    /// Blocks until the listener is readable or [`AcceptWaker::notify`]
    /// is called.
    fn wait(&self) {
        let mut events = [reactor::sys::EpollEvent::default(); 4];
        let _ = self.epoll.wait(&mut events, -1);
        self.wake.drain();
    }

    fn notify(&self) {
        self.wake.notify();
    }
}

#[cfg(not(target_os = "linux"))]
struct AcceptWaker;

#[cfg(not(target_os = "linux"))]
impl AcceptWaker {
    fn new(_listener: &TcpListener) -> std::io::Result<AcceptWaker> {
        Ok(AcceptWaker)
    }

    fn wait(&self) {
        std::thread::sleep(Duration::from_millis(10));
    }

    fn notify(&self) {}
}

/// Serves one connection until EOF or a write error (threads mode).
/// Every non-blank frame gets exactly one response line; protocol
/// errors never close the connection. Frames are decoded by the same
/// [`FrameDecoder`] the reactor uses, so framing behavior (cap,
/// resync-at-newline, partial final frame) is bit-identical across
/// modes.
fn serve_connection(stream: TcpStream, service: &Service) {
    let config = service.config();
    let counters = Arc::clone(service.net_counters());
    let max_frame = config.max_frame_bytes;
    // The write deadline: a stalled/slow client used to wedge this
    // thread forever in a blocking `write_all`; now it gets
    // disconnected once the kernel buffer stays full for the timeout.
    let _ = stream.set_write_timeout(config.write_timeout);
    let Ok(mut write_half) = stream.try_clone() else { return };
    let mut read_half = stream;
    let mut decoder = FrameDecoder::new(max_frame);
    let mut chunk = [0u8; 16 * 1024];
    let mut eof = false;
    loop {
        // Answer every decoded frame before reading more (bounded
        // accumulation: a pipelining client cannot outrun responses).
        loop {
            let event = match decoder.next_event() {
                Some(event) => event,
                None if eof => match decoder.finish() {
                    Some(event) => event,
                    None => return,
                },
                None => break,
            };
            let response = match event {
                Decoded::TooLarge => {
                    counters.frames_oversized.fetch_add(1, Ordering::Relaxed);
                    err_response(
                        None,
                        &WireError::new(
                            "frame_too_large",
                            format!("request frame exceeds {max_frame} bytes"),
                        ),
                    )
                }
                Decoded::Frame(raw) => {
                    if raw.iter().all(u8::is_ascii_whitespace) {
                        continue; // blank line between frames
                    }
                    counters.frames_decoded.fetch_add(1, Ordering::Relaxed);
                    service.execute_frame(&raw)
                }
            };
            if let Err(e) = write_half.write_all(response.as_bytes()) {
                if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) {
                    counters.write_timeout_disconnects.fetch_add(1, Ordering::Relaxed);
                }
                return;
            }
        }
        match read_half.read(&mut chunk) {
            Ok(0) => eof = true,
            Ok(n) => decoder.push(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// The lease keeper: renews this process's claims and sweeps the
/// shared data dir for unclaimed or abandoned workspaces, every
/// `lease_ttl / 4` (floored at 25ms). The 10ms inner sleep keeps
/// shutdown prompt without busy-waiting.
fn keeper_loop(service: &Service, stopping: &AtomicBool) {
    let tick = (service.config().lease_ttl / 4).max(Duration::from_millis(25));
    let mut watches = HashMap::new();
    let mut last = Instant::now();
    while !stopping.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(10));
        if last.elapsed() < tick {
            continue;
        }
        service.renew_leases();
        service.sweep_leases(&mut watches);
        last = Instant::now();
    }
}

/// The live-connection registry (threads mode): lets a graceful
/// shutdown half-close every active connection's read side (so
/// in-flight requests finish and get their responses, then the
/// connection sees EOF) and observe when all connection threads have
/// drained.
#[derive(Default)]
struct ConnRegistry {
    next: AtomicU64,
    conns: Mutex<HashMap<u64, TcpStream>>,
}

impl ConnRegistry {
    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        self.conns
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(id, clone);
        Some(id)
    }

    fn deregister(&self, id: u64) {
        self.conns
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove(&id);
    }

    fn active(&self) -> usize {
        self.conns.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    fn half_close_all(&self) {
        for conn in self
            .conns
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .values()
        {
            let _ = conn.shutdown(std::net::Shutdown::Read);
        }
    }
}

/// How long [`Server::shutdown`] waits for in-flight connections to
/// finish their current request after the read half-close.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(10);

/// The mode-specific half of a running server.
enum NetRuntime {
    /// Thread-per-connection: the accept-loop thread plus the registry
    /// of live connections (each on its own thread).
    Threads {
        conns: Arc<ConnRegistry>,
        accept_thread: Option<JoinHandle<()>>,
        waker: Arc<AcceptWaker>,
    },
    /// The epoll event loop and its worker pool.
    #[cfg(target_os = "linux")]
    Reactor(reactor::Handle),
}

/// A running server: bound listener plus its network runtime. Dropping
/// it does *not* stop the loop; call [`Server::stop`] (abrupt) or
/// [`Server::shutdown`] (graceful drain + snapshot).
pub struct Server {
    addr: SocketAddr,
    service: Arc<Service>,
    stopping: Arc<AtomicBool>,
    runtime: NetRuntime,
    /// Lease keeper: heartbeats held leases and sweeps the shared data
    /// dir for expired ones. Only spawned for a leader with a data dir.
    keeper_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// serving in the configured [`NetMode`].
    ///
    /// # Errors
    /// Propagates bind failures; `--net-mode reactor` on a non-Linux
    /// platform fails with `Unsupported`.
    pub fn spawn(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let net_mode = config.net_mode;
        let service = Arc::new(Service::new(config));
        let stopping = Arc::new(AtomicBool::new(false));
        let runtime = match net_mode {
            NetMode::Threads => Self::spawn_threads(listener, &service, &stopping)?,
            NetMode::Reactor => {
                #[cfg(target_os = "linux")]
                {
                    NetRuntime::Reactor(reactor::Handle::spawn(
                        listener,
                        Arc::clone(&service),
                        service.config().net_workers.get(),
                    )?)
                }
                #[cfg(not(target_os = "linux"))]
                {
                    return Err(std::io::Error::new(
                        ErrorKind::Unsupported,
                        "--net-mode reactor requires Linux (epoll)",
                    ));
                }
            }
        };
        let keeper_thread = (service.config().data_dir.is_some()
            && service.config().store_mode == StoreMode::Leader)
            .then(|| {
                let service = Arc::clone(&service);
                let stopping = Arc::clone(&stopping);
                std::thread::spawn(move || keeper_loop(&service, &stopping))
            });
        Ok(Server { addr, service, stopping, runtime, keeper_thread })
    }

    /// The threads-mode accept loop: a nonblocking listener woken by an
    /// [`AcceptWaker`], so stopping never depends on a free backlog
    /// slot (the old code dialed a throwaway connection to itself).
    fn spawn_threads(
        listener: TcpListener,
        service: &Arc<Service>,
        stopping: &Arc<AtomicBool>,
    ) -> std::io::Result<NetRuntime> {
        listener.set_nonblocking(true)?;
        let waker = Arc::new(AcceptWaker::new(&listener)?);
        let conns = Arc::new(ConnRegistry::default());
        let accept_service = Arc::clone(service);
        let accept_stopping = Arc::clone(stopping);
        let accept_conns = Arc::clone(&conns);
        let accept_waker = Arc::clone(&waker);
        let accept_thread = std::thread::spawn(move || loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if accept_stopping.load(Ordering::SeqCst) {
                        break;
                    }
                    // Accepted sockets are blocking (nonblocking-ness
                    // of the listener is not inherited), which is what
                    // thread-per-connection wants.
                    stream.set_nodelay(true).ok();
                    let counters = Arc::clone(accept_service.net_counters());
                    counters.conns_accepted.fetch_add(1, Ordering::Relaxed);
                    let service = Arc::clone(&accept_service);
                    let conns = Arc::clone(&accept_conns);
                    std::thread::spawn(move || {
                        let id = conns.register(&stream);
                        counters.conns_open.store(conns.active() as u64, Ordering::Relaxed);
                        serve_connection(stream, &service);
                        if let Some(id) = id {
                            conns.deregister(id);
                        }
                        counters.conns_open.store(conns.active() as u64, Ordering::Relaxed);
                    });
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    if accept_stopping.load(Ordering::SeqCst) {
                        break;
                    }
                    accept_waker.wait();
                    if accept_stopping.load(Ordering::SeqCst) {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    // Transient accept failure (ECONNABORTED, EMFILE…).
                    if accept_stopping.load(Ordering::SeqCst) {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        });
        Ok(NetRuntime::Threads {
            conns,
            accept_thread: Some(accept_thread),
            waker,
        })
    }

    /// The bound address (useful with ephemeral ports).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Direct access to the service, for in-process callers (the load
    /// generator's replay-verification path uses this).
    #[must_use]
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Stops the network runtime abruptly and joins its threads, then
    /// the keeper.
    fn halt_net(&mut self) {
        self.stopping.store(true, Ordering::SeqCst);
        match &mut self.runtime {
            NetRuntime::Threads { accept_thread, waker, .. } => {
                waker.notify();
                if let Some(handle) = accept_thread.take() {
                    let _ = handle.join();
                }
            }
            #[cfg(target_os = "linux")]
            NetRuntime::Reactor(handle) => {
                handle.request_stop();
                handle.join_all();
            }
        }
        if let Some(handle) = self.keeper_thread.take() {
            let _ = handle.join();
        }
    }

    /// Stops accepting new connections and joins the runtime's threads.
    /// In threads mode, already-open connections finish naturally when
    /// their clients hang up; in reactor mode every connection is torn
    /// down with the loop.
    ///
    /// This is the *power cut* exit: no snapshots are written and the
    /// lease files are left on disk — a successor gets each workspace
    /// through takeover, exactly as it would after a real crash. (The
    /// in-process lease nonces are abandoned, so a successor in this
    /// same process steals instantly instead of waiting out the TTL.)
    pub fn stop(&mut self) {
        self.halt_net();
        self.service.abandon_leases();
    }

    /// Blocks until the runtime exits (i.e. forever, absent
    /// [`Server::stop`] from another thread). Used by the binary.
    pub fn join(&mut self) {
        match &mut self.runtime {
            NetRuntime::Threads { accept_thread, .. } => {
                if let Some(handle) = accept_thread.take() {
                    let _ = handle.join();
                }
            }
            #[cfg(target_os = "linux")]
            NetRuntime::Reactor(handle) => handle.join_all(),
        }
    }

    /// Graceful shutdown: stop accepting, half-close every active
    /// connection's read side (in-flight requests finish and get their
    /// responses; the next read sees EOF), wait for connections to
    /// drain, snapshot every workspace, then release every lease
    /// (removing the lease files, so a successor claims each workspace
    /// instantly instead of waiting out a takeover). Returns the number
    /// of snapshots written.
    ///
    /// Identical observable behavior in both net modes. Contrast with
    /// [`Server::stop`], which abandons connections, writes nothing,
    /// and leaves the lease files in place — the crash-recovery tests
    /// use `stop` as the "power cut" and `shutdown` as the clean exit.
    pub fn shutdown(&mut self) -> u64 {
        self.stopping.store(true, Ordering::SeqCst);
        let deadline = Instant::now() + DRAIN_TIMEOUT;
        match &mut self.runtime {
            NetRuntime::Threads { conns, accept_thread, waker } => {
                waker.notify();
                if let Some(handle) = accept_thread.take() {
                    let _ = handle.join();
                }
                conns.half_close_all();
                while conns.active() > 0 && Instant::now() < deadline {
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
            #[cfg(target_os = "linux")]
            NetRuntime::Reactor(handle) => {
                handle.request_drain();
                while handle.conns_open() > 0 && Instant::now() < deadline {
                    std::thread::sleep(Duration::from_millis(5));
                }
                // Backstop for connections that never finished inside
                // the timeout; a no-op if the loop already exited.
                handle.request_stop();
                handle.join_all();
            }
        }
        if let Some(handle) = self.keeper_thread.take() {
            let _ = handle.join();
        }
        let written = self.service.snapshot_all();
        self.service.release_leases();
        written
    }

    /// Blocks until a remote `shutdown` request is accepted (which
    /// requires `allow_remote_shutdown`), then drains gracefully.
    /// Returns the number of snapshots written.
    pub fn serve_until_shutdown(&mut self) -> u64 {
        self.service.wait_shutdown();
        self.shutdown()
    }
}

/// A tiny blocking client for tests and the load generator: one
/// connection, synchronous request/response.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    /// Propagates connect failures.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// Sends one raw frame (newline appended) and reads one response
    /// line.
    ///
    /// # Errors
    /// Propagates I/O failures; `UnexpectedEof` if the server hung up.
    pub fn roundtrip(&mut self, frame: &str) -> std::io::Result<String> {
        self.writer.write_all(frame.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.read_response()
    }

    /// Sends one raw frame without reading the response (for pipelining
    /// tests).
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn send(&mut self, frame: &str) -> std::io::Result<()> {
        self.writer.write_all(frame.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    /// Sends raw bytes exactly as given (malformed-frame tests).
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.writer.write_all(bytes)
    }

    /// Reads one response line.
    ///
    /// # Errors
    /// Propagates I/O failures; `UnexpectedEof` if the server hung up.
    pub fn read_response(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line)
    }

    /// Half-closes the write side so the server sees EOF.
    pub fn shutdown_write(&mut self) {
        let _ = self.writer.shutdown(std::net::Shutdown::Write);
    }

    /// Exposes the underlying socket, e.g. for tests that need a
    /// client-side write timeout while deliberately stalling a server.
    #[must_use]
    pub fn stream(&self) -> &TcpStream {
        &self.writer
    }

    /// Reads whatever remains until EOF (to observe final responses
    /// after a half-close).
    #[must_use]
    pub fn drain(&mut self) -> String {
        let mut rest = String::new();
        let _ = self.reader.read_to_string(&mut rest);
        rest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The lib-level framing contract (shared by both net modes) — the
    /// incremental decoder behind `serve_connection`.
    #[test]
    fn frames_are_bounded_and_partial_finals_count() {
        let mut decoder = FrameDecoder::new(10);
        decoder.push(b"abc\ndef");
        assert_eq!(decoder.next_event(), Some(Decoded::Frame(b"abc".to_vec())));
        assert_eq!(decoder.next_event(), None);
        assert_eq!(decoder.finish(), Some(Decoded::Frame(b"def".to_vec())));
        assert_eq!(decoder.finish(), None);
    }

    #[test]
    fn oversized_frames_are_discarded_to_the_newline() {
        let mut decoder = FrameDecoder::new(64);
        decoder.push(b"x".repeat(100).as_slice());
        decoder.push(b"\n{\"op\":\"ping\"}\n");
        assert_eq!(decoder.next_event(), Some(Decoded::TooLarge));
        assert_eq!(
            decoder.next_event(),
            Some(Decoded::Frame(b"{\"op\":\"ping\"}".to_vec()))
        );
    }

    #[test]
    fn exact_cap_is_not_too_large() {
        let mut decoder = FrameDecoder::new(5);
        decoder.push(b"12345\n");
        assert_eq!(decoder.next_event(), Some(Decoded::Frame(b"12345".to_vec())));
    }
}
