//! # car-server — a multi-tenant reasoning service over TCP
//!
//! A dependency-free (std-only) long-running server exposing
//! [`car_core::Workspace`]s over line-delimited JSON. Design goals, in
//! order:
//!
//! 1. **Isolation** — a malformed frame, an invalid schema, a bad
//!    delta, or a budget-exhausting query affects exactly one response;
//!    never the connection, never the workspace, never another tenant.
//! 2. **Bounded everything** — frame size, query queue depth, undo
//!    history, caches and per-round reasoning budgets all have caps;
//!    overload degrades to `unknown` answers instead of queueing
//!    unboundedly.
//! 3. **Coalescing** — concurrent queries against the same workspace
//!    version are answered by a single batched reasoning pass (leader
//!    drains the queue; followers wait on a condvar).
//!
//! Threading is one thread per connection (`std::net` has no portable
//! non-blocking readiness API; connection counts here are hundreds, not
//! millions). All cross-connection state lives in [`service::Service`]
//! behind sharded mutexes.
//!
//! See `DESIGN.md` §11 for the protocol reference.

pub mod json;
pub mod protocol;
pub mod service;

use protocol::{err_response, parse_request, WireError};
use service::{Service, ServerConfig, StoreMode};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Result of reading one line-delimited frame.
enum FrameRead {
    /// A complete frame (without the trailing newline).
    Frame,
    /// The line exceeded the frame cap; the overflow was discarded up
    /// to and including the next newline (or EOF).
    TooLarge,
    /// Clean end of stream with no buffered bytes.
    Eof,
}

/// Reads one `\n`-terminated frame into `buf` (cleared first), capped
/// at `max` bytes. A final unterminated line at EOF counts as a frame.
fn read_frame(reader: &mut impl BufRead, max: usize, buf: &mut Vec<u8>) -> std::io::Result<FrameRead> {
    buf.clear();
    let mut over = false;
    loop {
        let available = match reader.fill_buf() {
            Ok(a) => a,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            return Ok(if over {
                FrameRead::TooLarge
            } else if buf.is_empty() {
                FrameRead::Eof
            } else {
                FrameRead::Frame
            });
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(at) => {
                if !over {
                    if buf.len() + at <= max {
                        buf.extend_from_slice(&available[..at]);
                    } else {
                        over = true;
                    }
                }
                reader.consume(at + 1);
                return Ok(if over { FrameRead::TooLarge } else { FrameRead::Frame });
            }
            None => {
                let len = available.len();
                if !over {
                    if buf.len() + len <= max {
                        buf.extend_from_slice(available);
                    } else {
                        over = true;
                        buf.clear();
                    }
                }
                reader.consume(len);
            }
        }
    }
}

/// Serves one connection until EOF or a write error. Every frame gets
/// exactly one response line; protocol errors never close the
/// connection.
fn serve_connection(stream: TcpStream, service: &Service) {
    let max_frame = service.config().max_frame_bytes;
    let Ok(write_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(stream);
    let mut writer = std::io::BufWriter::new(write_half);
    let mut buf = Vec::new();
    loop {
        let response = match read_frame(&mut reader, max_frame, &mut buf) {
            Err(_) | Ok(FrameRead::Eof) => return,
            Ok(FrameRead::TooLarge) => err_response(
                None,
                &WireError::new(
                    "frame_too_large",
                    format!("request frame exceeds {max_frame} bytes"),
                ),
            ),
            Ok(FrameRead::Frame) => {
                if buf.iter().all(u8::is_ascii_whitespace) {
                    continue; // blank line between frames
                }
                handle_frame(&buf, service)
            }
        };
        if writer.write_all(response.as_bytes()).is_err() || writer.flush().is_err() {
            return;
        }
    }
}

/// Decodes and dispatches one raw frame, always producing one response
/// line.
fn handle_frame(raw: &[u8], service: &Service) -> String {
    let text = match std::str::from_utf8(raw) {
        Ok(t) => t,
        Err(e) => {
            let mut err = WireError::new("bad_json", "frame is not valid UTF-8");
            err.offset = Some(e.valid_up_to());
            return err_response(None, &err);
        }
    };
    let frame = match json::parse(text) {
        Ok(f) => f,
        Err(e) => {
            let mut err = WireError::new("bad_json", e.message);
            err.offset = Some(e.offset);
            return err_response(None, &err);
        }
    };
    let (envelope, request) = parse_request(&frame);
    match request {
        Ok(req) => service.handle(&envelope, req),
        Err(e) => err_response(envelope.id, &e),
    }
}

/// The lease keeper: renews this process's claims and sweeps the
/// shared data dir for unclaimed or abandoned workspaces, every
/// `lease_ttl / 4` (floored at 25ms). The 10ms inner sleep keeps
/// shutdown prompt without busy-waiting.
fn keeper_loop(service: &Service, stopping: &AtomicBool) {
    let tick = (service.config().lease_ttl / 4).max(Duration::from_millis(25));
    let mut watches = HashMap::new();
    let mut last = Instant::now();
    while !stopping.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(10));
        if last.elapsed() < tick {
            continue;
        }
        service.renew_leases();
        service.sweep_leases(&mut watches);
        last = Instant::now();
    }
}

/// The live-connection registry: lets a graceful shutdown half-close
/// every active connection's read side (so in-flight requests finish
/// and get their responses, then the connection sees EOF) and observe
/// when all connection threads have drained.
#[derive(Default)]
struct ConnRegistry {
    next: AtomicU64,
    conns: Mutex<HashMap<u64, TcpStream>>,
}

impl ConnRegistry {
    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        self.conns
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(id, clone);
        Some(id)
    }

    fn deregister(&self, id: u64) {
        self.conns
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove(&id);
    }

    fn active(&self) -> usize {
        self.conns.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    fn half_close_all(&self) {
        for conn in self
            .conns
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .values()
        {
            let _ = conn.shutdown(std::net::Shutdown::Read);
        }
    }
}

/// How long [`Server::shutdown`] waits for in-flight connections to
/// finish their current request after the read half-close.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(10);

/// A running server: bound listener plus accept-loop thread. Dropping
/// it does *not* stop the loop; call [`Server::stop`] (abrupt) or
/// [`Server::shutdown`] (graceful drain + snapshot).
pub struct Server {
    addr: SocketAddr,
    service: Arc<Service>,
    stopping: Arc<AtomicBool>,
    conns: Arc<ConnRegistry>,
    accept_thread: Option<JoinHandle<()>>,
    /// Lease keeper: heartbeats held leases and sweeps the shared data
    /// dir for expired ones. Only spawned for a leader with a data dir.
    keeper_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections, one thread each.
    ///
    /// # Errors
    /// Propagates bind failures.
    pub fn spawn(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let service = Arc::new(Service::new(config));
        let stopping = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(ConnRegistry::default());
        let accept_service = Arc::clone(&service);
        let accept_stopping = Arc::clone(&stopping);
        let accept_conns = Arc::clone(&conns);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_stopping.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let service = Arc::clone(&accept_service);
                let conns = Arc::clone(&accept_conns);
                std::thread::spawn(move || {
                    let id = conns.register(&stream);
                    serve_connection(stream, &service);
                    if let Some(id) = id {
                        conns.deregister(id);
                    }
                });
            }
        });
        let keeper_thread = (service.config().data_dir.is_some()
            && service.config().store_mode == StoreMode::Leader)
            .then(|| {
                let service = Arc::clone(&service);
                let stopping = Arc::clone(&stopping);
                std::thread::spawn(move || keeper_loop(&service, &stopping))
            });
        Ok(Server {
            addr,
            service,
            stopping,
            conns,
            accept_thread: Some(accept_thread),
            keeper_thread,
        })
    }

    /// The bound address (useful with ephemeral ports).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Direct access to the service, for in-process callers (the load
    /// generator's replay-verification path uses this).
    #[must_use]
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Stops the accept loop and the lease keeper, joining both
    /// threads.
    fn halt_threads(&mut self) {
        self.stopping.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.keeper_thread.take() {
            let _ = handle.join();
        }
    }

    /// Stops accepting new connections and joins the accept thread.
    /// Already-open connections finish naturally when their clients
    /// hang up.
    ///
    /// This is the *power cut* exit: no snapshots are written and the
    /// lease files are left on disk — a successor gets each workspace
    /// through takeover, exactly as it would after a real crash. (The
    /// in-process lease nonces are abandoned, so a successor in this
    /// same process steals instantly instead of waiting out the TTL.)
    pub fn stop(&mut self) {
        self.halt_threads();
        self.service.abandon_leases();
    }

    /// Blocks until the accept loop exits (i.e. forever, absent
    /// [`Server::stop`] from another thread). Used by the binary.
    pub fn join(&mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }

    /// Graceful shutdown: stop accepting, half-close every active
    /// connection's read side (in-flight requests finish and get their
    /// responses; the next read sees EOF), wait for connection threads
    /// to drain, snapshot every workspace, then release every lease
    /// (removing the lease files, so a successor claims each workspace
    /// instantly instead of waiting out a takeover). Returns the number
    /// of snapshots written.
    ///
    /// Contrast with [`Server::stop`], which abandons connections,
    /// writes nothing, and leaves the lease files in place — the
    /// crash-recovery tests use `stop` as the "power cut" and
    /// `shutdown` as the clean exit.
    pub fn shutdown(&mut self) -> u64 {
        self.halt_threads();
        self.conns.half_close_all();
        let deadline = Instant::now() + DRAIN_TIMEOUT;
        while self.conns.active() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let written = self.service.snapshot_all();
        self.service.release_leases();
        written
    }

    /// Blocks until a remote `shutdown` request is accepted (which
    /// requires `allow_remote_shutdown`), then drains gracefully.
    /// Returns the number of snapshots written.
    pub fn serve_until_shutdown(&mut self) -> u64 {
        self.service.wait_shutdown();
        self.shutdown()
    }
}

/// A tiny blocking client for tests and the load generator: one
/// connection, synchronous request/response.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    /// Propagates connect failures.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// Sends one raw frame (newline appended) and reads one response
    /// line.
    ///
    /// # Errors
    /// Propagates I/O failures; `UnexpectedEof` if the server hung up.
    pub fn roundtrip(&mut self, frame: &str) -> std::io::Result<String> {
        self.writer.write_all(frame.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.read_response()
    }

    /// Sends one raw frame without reading the response (for pipelining
    /// tests).
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn send(&mut self, frame: &str) -> std::io::Result<()> {
        self.writer.write_all(frame.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    /// Sends raw bytes exactly as given (malformed-frame tests).
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.writer.write_all(bytes)
    }

    /// Reads one response line.
    ///
    /// # Errors
    /// Propagates I/O failures; `UnexpectedEof` if the server hung up.
    pub fn read_response(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line)
    }

    /// Half-closes the write side so the server sees EOF.
    pub fn shutdown_write(&mut self) {
        let _ = self.writer.shutdown(std::net::Shutdown::Write);
    }

    /// Reads whatever remains until EOF (to observe final responses
    /// after a half-close).
    #[must_use]
    pub fn drain(&mut self) -> String {
        let mut rest = String::new();
        let _ = self.reader.read_to_string(&mut rest);
        rest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_are_bounded_and_partial_finals_count() {
        let mut reader = BufReader::new(&b"abc\ndef"[..]);
        let mut buf = Vec::new();
        assert!(matches!(read_frame(&mut reader, 10, &mut buf).unwrap(), FrameRead::Frame));
        assert_eq!(buf, b"abc");
        assert!(matches!(read_frame(&mut reader, 10, &mut buf).unwrap(), FrameRead::Frame));
        assert_eq!(buf, b"def");
        assert!(matches!(read_frame(&mut reader, 10, &mut buf).unwrap(), FrameRead::Eof));
    }

    #[test]
    fn oversized_frames_are_discarded_to_the_newline() {
        let data = [b"x".repeat(100).as_slice(), b"\n{\"op\":\"ping\"}\n"].concat();
        let mut reader = BufReader::new(&data[..]);
        let mut buf = Vec::new();
        assert!(matches!(read_frame(&mut reader, 10, &mut buf).unwrap(), FrameRead::TooLarge));
        assert!(matches!(read_frame(&mut reader, 64, &mut buf).unwrap(), FrameRead::Frame));
        assert_eq!(buf, b"{\"op\":\"ping\"}");
    }

    #[test]
    fn exact_cap_is_not_too_large() {
        let mut reader = BufReader::new(&b"12345\n"[..]);
        let mut buf = Vec::new();
        assert!(matches!(read_frame(&mut reader, 5, &mut buf).unwrap(), FrameRead::Frame));
        assert_eq!(buf, b"12345");
    }
}
