//! A minimal, dependency-free JSON layer for the wire protocol.
//!
//! Covers exactly what the line-delimited protocol needs: parsing one
//! frame into a [`Json`] tree with byte-offset error reporting, and
//! serializing responses. Non-negative integers are kept exact as `u64`
//! (cardinalities go up to `u64::MAX`, beyond `f64` precision); other
//! numbers fall back to `i64`/`f64`.
//!
//! Untrusted-input hardening: nesting depth is bounded (the recursive
//! parser would otherwise be stack-overflowable), object/array sizes are
//! only bounded by the frame size cap enforced by the connection layer,
//! and invalid UTF-16 escapes decode to U+FFFD rather than erroring the
//! whole frame.

use std::fmt::Write as _;

/// Maximum nesting depth of arrays/objects in one frame.
const MAX_DEPTH: usize = 128;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (exact).
    UInt(u64),
    /// A negative integer (exact).
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved, lookup is linear (protocol
    /// objects are small).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first occurrence).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Exact `u64`, if this is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(n) => Some(n),
            Json::Int(n) => u64::try_from(n).ok(),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// `true` for `null` (distinct from an absent field).
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

/// Why a frame failed to parse, with the byte offset (0-based) where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the frame.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON value; trailing whitespace is allowed,
/// trailing garbage is an error.
///
/// # Errors
/// [`JsonError`] with the byte offset of the first problem.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError { offset: self.pos, message }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':', "expected ':' after object key")?;
                    self.skip_ws();
                    let value = self.value(depth + 1)?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair; a malformed pair
                                // decodes to U+FFFD instead of erroring.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    char::from_u32(
                                        0x10000
                                            + ((hi - 0xD800) << 10)
                                            + (lo.wrapping_sub(0xDC00) & 0x3FF),
                                    )
                                    .unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(hi).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so bounds
                    // and validity are guaranteed).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.err("invalid \\u escape")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if integral {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .ok()
            .filter(|f| f.is_finite())
            .map(Json::Float)
            .ok_or(JsonError { offset: start, message: "invalid number" })
    }
}

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

/// Serializes a value to compact JSON.
#[must_use]
pub fn to_string(value: &Json) -> String {
    let mut out = String::new();
    write_value(&mut out, value);
    out
}

fn write_value(out: &mut String, value: &Json) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Json::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Json::Float(f) => {
            if f.is_finite() {
                let _ = write!(out, "{f}");
            } else {
                out.push_str("null");
            }
        }
        Json::Str(s) => write_string(out, s),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, v);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Convenience constructor for an object.
#[must_use]
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

/// Convenience constructor for a string value.
#[must_use]
pub fn s(text: impl Into<String>) -> Json {
    Json::Str(text.into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_basic_values() {
        for text in [
            "null",
            "true",
            "[1,2,3]",
            "{\"a\":1,\"b\":[{\"c\":\"d\"}]}",
            "18446744073709551615",
            "-42",
            "\"héllo\\nworld\"",
        ] {
            let v = parse(text).unwrap();
            assert_eq!(parse(&to_string(&v)).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn exact_u64_is_preserved() {
        assert_eq!(parse("18446744073709551615").unwrap(), Json::UInt(u64::MAX));
        assert_eq!(to_string(&Json::UInt(u64::MAX)), "18446744073709551615");
    }

    #[test]
    fn errors_carry_offsets() {
        let e = parse("{\"a\": }").unwrap_err();
        assert_eq!(e.offset, 6);
        assert!(parse("").is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse("[1,2] garbage").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"abc").is_err());
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        let e = parse(&deep).unwrap_err();
        assert_eq!(e.message, "nesting too deep");
    }

    #[test]
    fn surrogate_pairs_and_lone_surrogates() {
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap(), Json::Str("😀".into()));
        assert_eq!(parse("\"\\ud83d\"").unwrap(), Json::Str("\u{FFFD}".into()));
    }

    #[test]
    fn control_chars_escape_on_output() {
        assert_eq!(to_string(&Json::Str("a\u{1}b".into())), "\"a\\u0001b\"");
    }
}
