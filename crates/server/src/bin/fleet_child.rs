//! Test-only child process for multi-process fleet fault sweeps.
//!
//! `tests/fleet.rs` spawns this binary to exercise the lease/fencing
//! protocol across real OS process boundaries — something in-process
//! tests cannot do, because a SIGKILLed process drops no destructors
//! and releases no locks. Two modes:
//!
//! * `writer` — claim (or steal) the workspace lease, recover the
//!   directory, fence it at the new epoch, then journal a run of
//!   `AddClass` edits, printing a flushed `ACK <name>` line after each
//!   one is durable. `--kill-after-io K` routes every filesystem
//!   operation through a [`DiskFaults`] plan that calls
//!   `std::process::abort()` at the K-th operation: a deterministic
//!   stand-in for SIGKILL at every journal trip point.
//! * `zombie` — claim the lease, journal a few edits, print `PAUSED`
//!   and block on stdin. The parent waits the lease to expiry, takes
//!   over and fences the directory, then pokes stdin: the zombie
//!   resumes appending records at its stale epoch, exactly like a
//!   paused leader coming back after a takeover. Recovery must reject
//!   every one of those records.
//!
//! The protocol on stdout is line-oriented and flushed after every
//! line, so a parent reading a pipe sees each acknowledgement before
//! the corresponding crash can happen.

use car_core::persist::Disk;
use car_core::{
    Acquire, DiskFaults, JournalOp, Lease, LeaseWatch, ReasonerConfig, SchemaBuilder,
    SchemaDelta, Workspace, WorkspaceDir, WorkspaceLimits,
};
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const TENANT: &str = "fleet";
const WORKSPACE: &str = "ws";
const LABEL: &str = "fleet-child";

fn fail(message: &str) -> ! {
    eprintln!("fleet_child: {message}");
    std::process::exit(2)
}

struct Args {
    mode: String,
    dir: PathBuf,
    ops: u64,
    pre: u64,
    post: u64,
    kill_after_io: Option<u64>,
    snapshot_every: u64,
    prefix: String,
    ttl_ms: u64,
    release: bool,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        mode: argv.first().cloned().unwrap_or_default(),
        dir: PathBuf::new(),
        ops: 0,
        pre: 0,
        post: 0,
        kill_after_io: None,
        snapshot_every: 0,
        prefix: "c".to_owned(),
        ttl_ms: 300,
        release: false,
    };
    let mut i = 1;
    while i < argv.len() {
        let flag = argv[i].as_str();
        if flag == "--release" {
            args.release = true;
            i += 1;
            continue;
        }
        i += 1;
        let value = argv.get(i).unwrap_or_else(|| fail(&format!("{flag} needs a value")));
        let number =
            || value.parse::<u64>().unwrap_or_else(|_| fail(&format!("bad {flag}: {value}")));
        match flag {
            "--dir" => args.dir = PathBuf::from(value),
            "--ops" => args.ops = number(),
            "--pre" => args.pre = number(),
            "--post" => args.post = number(),
            "--kill-after-io" => args.kill_after_io = Some(number()),
            "--snapshot-every" => args.snapshot_every = number(),
            "--prefix" => args.prefix = value.clone(),
            "--ttl-ms" => args.ttl_ms = number(),
            other => fail(&format!("unknown flag '{other}'")),
        }
        i += 1;
    }
    if args.dir.as_os_str().is_empty() {
        fail("--dir is required");
    }
    args
}

fn say(line: &str) {
    let mut out = std::io::stdout().lock();
    let _ = writeln!(out, "{line}");
    let _ = out.flush();
}

/// Claims the workspace lease, watching a live holder to expiry first.
/// A dead holder (crashed sibling) is stolen on the spot by
/// `Lease::acquire` itself.
fn claim_lease(dir: &Path, disk: &Disk, ttl: Duration) -> Lease {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if Instant::now() > deadline {
            fail("timed out claiming lease");
        }
        match Lease::acquire(dir, LABEL, disk) {
            Ok(Acquire::Acquired(lease)) => return lease,
            Ok(Acquire::Held(info)) => {
                let mut watch = LeaseWatch::new(info);
                loop {
                    if Instant::now() > deadline {
                        fail("timed out watching lease");
                    }
                    match watch.expired(dir, disk, ttl) {
                        Ok(true) => break,
                        Ok(false) => std::thread::sleep(Duration::from_millis(20)),
                        Err(e) => fail(&format!("lease watch: {e}")),
                    }
                }
                match Lease::take_over(dir, LABEL, disk, watch.info()) {
                    Ok(Acquire::Acquired(lease)) => return lease,
                    Ok(Acquire::Held(_)) => continue, // holder moved; re-observe
                    Err(e) => fail(&format!("take_over: {e}")),
                }
            }
            Err(e) => fail(&format!("acquire: {e}")),
        }
    }
}

/// Recovers (or freshly creates) the workspace directory, fences it at
/// the lease's epoch, and publishes the mandatory fencing snapshot.
/// Appending at a new epoch without that snapshot would let the records
/// be discarded as a damaged tail on the next recovery, so a snapshot
/// failure is fatal here (in the real server it detaches instead).
fn adopt(dir: &Path, disk: &Disk, lease: &mut Lease) -> (WorkspaceDir, Workspace) {
    let (mut wd, ws) = match WorkspaceDir::recover(dir, disk.clone()) {
        Some(rec) => {
            let mut ws = Workspace::restore(
                rec.schema,
                rec.undo,
                rec.redo,
                ReasonerConfig::default(),
                WorkspaceLimits::default(),
            );
            for op in &rec.ops {
                match op {
                    JournalOp::Apply(delta) => {
                        if ws.apply(delta).is_err() {
                            fail("replayed op no longer applies");
                        }
                    }
                    JournalOp::Undo => {
                        ws.undo();
                    }
                    JournalOp::Redo => {
                        ws.redo();
                    }
                }
            }
            if lease.ensure_epoch_above(rec.epoch).is_err() {
                fail("cannot dominate recovered epoch");
            }
            (rec.dir, ws)
        }
        None => {
            let wd = WorkspaceDir::create(dir, disk.clone())
                .unwrap_or_else(|e| fail(&format!("create: {e}")));
            let schema =
                SchemaBuilder::new().build().unwrap_or_else(|_| fail("empty schema"));
            (wd, Workspace::new(schema, ReasonerConfig::default()))
        }
    };
    wd.set_epoch(lease.epoch());
    wd.save_snapshot(TENANT, WORKSPACE, ws.schema(), ws.undo_stack(), ws.redo_stack())
        .unwrap_or_else(|e| fail(&format!("fencing snapshot: {e}")));
    (wd, ws)
}

/// Applies one `AddClass` in memory and journals it; `ACK` only once
/// the record is durable.
fn durable_add(wd: &mut WorkspaceDir, ws: &mut Workspace, name: &str) {
    let delta = SchemaDelta::AddClass { name: name.to_owned() };
    if ws.apply(&delta).is_err() {
        fail(&format!("apply {name}"));
    }
    if let Err(e) = wd.append_op(&JournalOp::Apply(delta)) {
        fail(&format!("append {name}: {e}"));
    }
    say(&format!("ACK {name}"));
}

fn writer(args: &Args) {
    let disk = match args.kill_after_io {
        Some(k) => {
            let faults = DiskFaults::new();
            faults.set_abort_on_trip(true);
            faults.trip_after(k);
            Disk::faulty(faults)
        }
        None => Disk::real(),
    };
    let ttl = Duration::from_millis(args.ttl_ms);
    disk.create_dir_all(&args.dir).unwrap_or_else(|e| fail(&format!("mkdir: {e}")));
    let mut lease = claim_lease(&args.dir, &disk, ttl);
    let (mut wd, mut ws) = adopt(&args.dir, &disk, &mut lease);
    say(&format!("EPOCH {}", lease.epoch()));
    for i in 0..args.ops {
        durable_add(&mut wd, &mut ws, &format!("{}{i}", args.prefix));
        if args.snapshot_every > 0 && wd.ops_since_snapshot() >= args.snapshot_every {
            wd.save_snapshot(TENANT, WORKSPACE, ws.schema(), ws.undo_stack(), ws.redo_stack())
                .unwrap_or_else(|e| fail(&format!("snapshot: {e}")));
        }
    }
    say("DONE");
    if args.release {
        let _ = lease.release();
    }
    // Without --release the Lease is dropped: the file stays on disk,
    // exactly like a crashed holder (stop(), not shutdown()).
}

fn zombie(args: &Args) {
    let disk = Disk::real();
    let ttl = Duration::from_millis(args.ttl_ms);
    let mut lease = claim_lease(&args.dir, &disk, ttl);
    let (mut wd, mut ws) = adopt(&args.dir, &disk, &mut lease);
    say(&format!("EPOCH {}", lease.epoch()));
    for i in 0..args.pre {
        durable_add(&mut wd, &mut ws, &format!("{}{i}", args.prefix));
    }
    // Park: never renew, so the lease expires under the parent's watch.
    say("PAUSED");
    let mut line = String::new();
    let _ = std::io::stdin().lock().read_line(&mut line);
    // Resumed: the parent has taken over and fenced the directory.
    // First republish a snapshot at the stale epoch — files are named
    // by epoch, so this lands in the zombie's own snapshot/journal pair
    // and must never clobber the successor's. Then append at the stale
    // epoch — the WorkspaceDir still carries the old epoch, exactly
    // like a real zombie's in-memory state. Every record must be
    // rejected by fencing at the next recovery.
    wd.save_snapshot(TENANT, WORKSPACE, ws.schema(), ws.undo_stack(), ws.redo_stack())
        .unwrap_or_else(|e| fail(&format!("stale snapshot: {e}")));
    say("STALESNAP");
    for i in 0..args.post {
        let name = format!("{}stale{i}", args.prefix);
        let delta = SchemaDelta::AddClass { name: name.clone() };
        match wd.append_op(&JournalOp::Apply(delta)) {
            Ok(()) => say(&format!("STALE {name}")),
            Err(e) => fail(&format!("stale append {name}: {e}")),
        }
    }
    say("ZDONE");
}

fn main() {
    let args = parse_args();
    match args.mode.as_str() {
        "writer" => writer(&args),
        "zombie" => zombie(&args),
        other => fail(&format!("unknown mode '{other}' (writer|zombie)")),
    }
}
