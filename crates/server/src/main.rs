//! The `car-server` binary: CLI flag parsing around
//! [`car_server::Server`].

use car_server::service::{NetMode, ServerConfig, StoreMode};
use car_server::Server;
use std::num::NonZeroUsize;
use std::time::Duration;

const USAGE: &str = "\
car-server — multi-tenant CAR reasoning service (line-delimited JSON over TCP)

USAGE: car-server [OPTIONS]

OPTIONS:
  --addr <host:port>        Listen address (default 127.0.0.1:7474; port 0 = ephemeral)
  --deadline-ms <n>         Per-query-round wall-clock budget (default 10000; 0 = none)
  --max-steps <n>           Per-query-round step budget (default none)
  --max-items <n>           Per-query-round allocation budget (default 5000000; 0 = none)
  --max-pending <n>         Queued query batches per workspace before admission
                            control degrades answers to unknown (default 64)
  --max-workspaces <n>      Open workspaces per tenant (default 32)
  --max-frame-bytes <n>     Request frame size cap (default 1048576)
  --undo-cap <n>            Undo/redo history depth per workspace (default 256)
  --bundle-cache-cap <n>    Cached analysis bundles per workspace (default 64)
  --cluster-cache-cap <n>   Cached cluster enumerations per workspace (default 4096)
  --threads <n>             Worker threads per reasoning pass (default 1)
  --data-dir <path>         Durable state root: content-addressed enumeration store
                            plus per-workspace snapshots and journals. On start,
                            workspaces found there are recovered; without this flag
                            the server is memory-only
  --store-max-bytes <n>     Byte budget of the on-disk enumeration store
                            (default 268435456)
  --store-mode <mode>       'leader' (default) acquires per-workspace leases and
                            writes; 'follower' serves the same data dir read-only,
                            answering edits with a read_only error
  --lease-ttl-ms <n>        Lease heartbeat time-to-live: how long a workspace
                            lease may go silent before another leader takes it
                            over (default 2000)
  --net-mode <mode>         'threads' (default) serves one thread per connection;
                            'reactor' (Linux) runs a single epoll event loop plus
                            a fixed worker pool, holding 10k+ idle connections on
                            a handful of threads
  --net-workers <n>         Reactor worker threads executing protocol ops off the
                            event loop (default 4)
  --write-timeout-ms <n>    Threads mode: how long one blocking response write may
                            stall on a slow client before disconnecting it
                            (default 30000; 0 = block forever)
  --max-write-buffer <n>    Reactor mode: bytes of unsent output a non-reading
                            client may accumulate before it is disconnected
                            (default 8388608)
  --allow-remote-shutdown   Honor the 'shutdown' operation: drain in-flight work,
                            snapshot every workspace, exit (default off)
  --help                    Show this help
";

fn fail(message: &str) -> ! {
    eprintln!("car-server: {message}");
    eprintln!("{USAGE}");
    std::process::exit(2)
}

fn parse_config(args: &[String]) -> (String, ServerConfig) {
    let mut addr = "127.0.0.1:7474".to_owned();
    let mut config = ServerConfig::default();
    let mut i = 0;
    let value = |i: &mut usize| -> &str {
        *i += 1;
        match args.get(*i) {
            Some(v) => v,
            None => fail(&format!("flag '{}' needs a value", args[*i - 1])),
        }
    };
    while i < args.len() {
        let flag = args[i].as_str();
        match flag {
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0)
            }
            "--addr" => addr = value(&mut i).to_owned(),
            "--data-dir" => {
                config.data_dir = Some(std::path::PathBuf::from(value(&mut i)));
            }
            "--allow-remote-shutdown" => config.allow_remote_shutdown = true,
            "--store-mode" => {
                config.store_mode = match value(&mut i) {
                    "leader" => StoreMode::Leader,
                    "follower" => StoreMode::Follower,
                    other => fail(&format!(
                        "--store-mode must be 'leader' or 'follower', not '{other}'"
                    )),
                };
            }
            "--net-mode" => {
                config.net_mode = match value(&mut i) {
                    "threads" => NetMode::Threads,
                    "reactor" => NetMode::Reactor,
                    other => fail(&format!(
                        "--net-mode must be 'threads' or 'reactor', not '{other}'"
                    )),
                };
            }
            _ => {
                let v = value(&mut i);
                let n: u64 = v
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("'{v}' is not a number for {flag}")));
                match flag {
                    "--deadline-ms" => {
                        config.quota.deadline =
                            (n > 0).then(|| Duration::from_millis(n));
                    }
                    "--max-steps" => config.quota.max_steps = (n > 0).then_some(n),
                    "--max-items" => config.quota.max_items = (n > 0).then_some(n),
                    "--max-pending" => config.quota.max_pending = n as usize,
                    "--max-workspaces" => config.quota.max_workspaces = n as usize,
                    "--max-frame-bytes" => config.max_frame_bytes = n as usize,
                    "--store-max-bytes" => config.store_max_bytes = n,
                    "--lease-ttl-ms" => {
                        if n == 0 {
                            fail("--lease-ttl-ms must be at least 1");
                        }
                        config.lease_ttl = Duration::from_millis(n);
                    }
                    "--undo-cap" => config.quota.workspace_limits.undo_cap = n as usize,
                    "--bundle-cache-cap" => {
                        config.quota.workspace_limits.bundle_cache_cap = n as usize;
                    }
                    "--cluster-cache-cap" => {
                        config.quota.workspace_limits.cluster_cache_cap = n as usize;
                    }
                    "--threads" => {
                        config.threads = NonZeroUsize::new(n as usize)
                            .unwrap_or_else(|| fail("--threads must be at least 1"));
                    }
                    "--net-workers" => {
                        config.net_workers = NonZeroUsize::new(n as usize)
                            .unwrap_or_else(|| fail("--net-workers must be at least 1"));
                    }
                    "--write-timeout-ms" => {
                        config.write_timeout = (n > 0).then(|| Duration::from_millis(n));
                    }
                    "--max-write-buffer" => {
                        config.max_write_buffer_bytes = n as usize;
                    }
                    other => fail(&format!("unknown flag '{other}'")),
                }
            }
        }
        i += 1;
    }
    (addr, config)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (addr, config) = parse_config(&args);
    #[cfg(target_os = "linux")]
    if config.net_mode == NetMode::Reactor {
        // Connection-dense serving wants the hard fd cap, not the
        // (often 1024) soft default.
        let _ = car_server::reactor::sys::raise_fd_limit();
    }
    let mut server = match Server::spawn(addr.as_str(), config) {
        Ok(s) => s,
        Err(e) => fail(&format!("cannot bind {addr}: {e}")),
    };
    let recovery = server.service().recovery_report();
    if recovery.workspaces_recovered > 0
        || recovery.dirs_skipped > 0
        || recovery.dirs_lease_held > 0
    {
        println!(
            "car-server: recovered {} workspaces ({} journal ops replayed, \
             {} truncated tails, {} fenced records rejected, {} unusable dirs \
             skipped, {} dirs lease-held elsewhere)",
            recovery.workspaces_recovered,
            recovery.ops_replayed,
            recovery.truncated_tails,
            recovery.fenced_records_rejected,
            recovery.dirs_skipped,
            recovery.dirs_lease_held
        );
    }
    let role = match server.service().config().store_mode {
        StoreMode::Leader => "leader",
        StoreMode::Follower => "follower",
    };
    println!("car-server ({role}) listening on {}", server.addr());
    // Blocks forever unless a remote shutdown arrives (which requires
    // --allow-remote-shutdown); then drains and snapshots.
    let snapshots = server.serve_until_shutdown();
    println!("car-server: drained; {snapshots} workspace snapshots written");
}
