//! Multi-tenant service core: the workspace registry, per-tenant
//! quotas, and the admission-controlled, coalescing query path.
//!
//! ## Concurrency model
//!
//! Workspaces live in a sharded registry (`Mutex<HashMap>` per shard,
//! keyed by tenant + workspace name) so connections on different
//! workspaces never contend on one lock. Each workspace entry owns two
//! locks with a strict ordering discipline — the *batch queue* lock and
//! the *workspace* lock are never held at the same time:
//!
//! * **Edits** (`apply`/`undo`/`redo`) take the workspace lock
//!   directly; they are short (no reasoning happens at edit time).
//! * **Queries** enqueue into the batch queue. The first arrival
//!   becomes the *leader*: it takes the workspace lock and drains the
//!   queue in rounds, answering *all* pending batches with a single
//!   [`Workspace::query_batch_results`] call per round — concurrent
//!   queries against the same workspace version share one bundle
//!   computation and one budget, instead of serializing N full
//!   reasoning passes. Followers block on a per-batch condvar slot.
//!
//! ## Admission control and degradation
//!
//! The queue is bounded (`max_pending` batches). When a drain is in
//! progress and the queue is full, new queries are not queued
//! unboundedly — they degrade immediately to `unknown` answers with
//! cause `"admission"`. Every drain round runs under a fresh
//! per-tenant [`Budget`], so a pathological schema exhausts its own
//! budget (`unknown` with cause `"deadline"`/`"budget"`) rather than
//! starving other tenants or wedging the workspace: budget failures
//! are not cached and the workspace stays valid for the next request.

use crate::json::{obj, s, Json};
use crate::protocol::{
    answer_json, err_response, ok_response, parse_request, unknown_answer, Envelope,
    Request, WireError, WireQuery,
};
use car_core::persist::{codec, read_generation, Disk};
use car_core::{
    Acquire, Budget, BudgetLimits, DiskStore, JournalOp, Lease, LeaseWatch, ReasonerConfig,
    SharedStore, StoreLimits, Workspace, WorkspaceDir, WorkspaceLimits,
};
use car_parser::parse_schema;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::num::NonZeroUsize;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Per-tenant resource quotas, applied to every workspace of every
/// tenant (this build has a single global quota class; the structure is
/// per-request so per-tenant tiers can be layered on later).
#[derive(Debug, Clone, Copy)]
pub struct TenantQuota {
    /// Wall-clock allowance per query drain round.
    pub deadline: Option<Duration>,
    /// Step allowance per query drain round.
    pub max_steps: Option<u64>,
    /// Materialized-object allowance per query drain round.
    pub max_items: Option<u64>,
    /// Maximum batches queued behind an in-progress drain before new
    /// queries degrade to `unknown` (`"admission"`).
    pub max_pending: usize,
    /// Maximum workspaces one tenant may hold open.
    pub max_workspaces: usize,
    /// Cache and undo-stack bounds for each workspace.
    pub workspace_limits: WorkspaceLimits,
}

impl Default for TenantQuota {
    fn default() -> TenantQuota {
        TenantQuota {
            deadline: Some(Duration::from_secs(10)),
            max_steps: None,
            max_items: Some(5_000_000),
            max_pending: 64,
            max_workspaces: 32,
            workspace_limits: WorkspaceLimits::default(),
        }
    }
}

impl TenantQuota {
    fn budget(&self) -> Budget {
        Budget::new(BudgetLimits {
            deadline: self.deadline,
            max_steps: self.max_steps,
            max_items: self.max_items,
        })
    }
}

/// How this process relates to the durable state under `data_dir`.
///
/// A fleet shares one data directory: exactly one *leader* per
/// workspace holds that workspace's lease and writes its snapshot and
/// journal; any number of *followers* serve queries from the same files
/// without ever writing. Leadership is per workspace lease, not per
/// process — two leader processes over one data dir partition the
/// workspaces between themselves via the lease files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreMode {
    /// Acquire leases, recover, and write. The default.
    Leader,
    /// Never acquire a lease and never write: serve queries from the
    /// on-disk state as of the last refresh, and answer every edit with
    /// a `read_only` error.
    Follower,
}

/// How the server multiplexes connections onto threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetMode {
    /// One OS thread per connection (the legacy default). Simple and
    /// portable; costs a thread per *connected* client.
    Threads,
    /// A single epoll event-loop thread plus a fixed worker pool
    /// (`net_workers`); holds tens of thousands of idle connections on
    /// a handful of threads. Linux only.
    Reactor,
}

impl NetMode {
    /// The stable wire label (`health`/`stats` responses, CLI flag).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            NetMode::Threads => "threads",
            NetMode::Reactor => "reactor",
        }
    }
}

/// Network-layer counters, shared between the accept/event loop and the
/// service so `health`/`stats` can surface them. All updated with
/// relaxed ordering — they are monitoring data, not synchronization.
#[derive(Debug, Default)]
pub struct NetCounters {
    /// Connections accepted since startup.
    pub conns_accepted: AtomicU64,
    /// Currently open connections (gauge).
    pub conns_open: AtomicU64,
    /// Non-blank frames decoded (each produced exactly one response).
    pub frames_decoded: AtomicU64,
    /// Over-cap lines discarded to their newline (`frame_too_large`).
    pub frames_oversized: AtomicU64,
    /// Reactor mode: writes that could not complete in one call and
    /// re-armed `EPOLLOUT` instead of blocking a thread.
    pub backpressure_stalls: AtomicU64,
    /// Reactor mode: connections dropped because a non-reading client
    /// let its output buffer exceed `max_write_buffer_bytes`.
    pub write_buffer_disconnects: AtomicU64,
    /// Threads mode: connections dropped because a blocking write sat
    /// longer than `write_timeout`.
    pub write_timeout_disconnects: AtomicU64,
    /// Reactor mode: `epoll_wait` returns (bounded by traffic, never by
    /// wall clock — there is no timer tick).
    pub wakeups: AtomicU64,
    /// Reactor mode: decoded frames queued for the worker pool right
    /// now (gauge; bounded by open connections).
    pub worker_queue_depth: AtomicU64,
}

/// Server-wide configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Quotas applied to each tenant.
    pub quota: TenantQuota,
    /// Maximum request frame size in bytes (longer lines are discarded
    /// and answered with `frame_too_large`).
    pub max_frame_bytes: usize,
    /// Worker threads per reasoning pass.
    pub threads: NonZeroUsize,
    /// Root of the durable state: the shared content-addressed
    /// enumeration store plus per-workspace snapshots and journals.
    /// `None` runs fully in memory (the pre-persistence behavior).
    pub data_dir: Option<PathBuf>,
    /// Byte budget of the on-disk enumeration store.
    pub store_max_bytes: u64,
    /// Whether the `shutdown` operation is honored. Off by default: a
    /// remote peer should not be able to stop the server unless the
    /// operator opted in.
    pub allow_remote_shutdown: bool,
    /// Leader (lease-holding writer) or read-only follower over the
    /// shared `data_dir`.
    pub store_mode: StoreMode,
    /// How long a workspace lease may go without a heartbeat before
    /// another process may take it over. The keeper renews well inside
    /// this (every `lease_ttl / 4`, floored at 25ms).
    pub lease_ttl: Duration,
    /// Thread-per-connection (`Threads`, the default) or the epoll
    /// reactor (`Reactor`).
    pub net_mode: NetMode,
    /// Reactor mode: protocol workers executing ops off the event loop.
    pub net_workers: NonZeroUsize,
    /// Threads mode: how long one blocking response write may stall on
    /// a slow client before the connection is dropped (`None` = block
    /// forever, the pre-reactor behavior).
    pub write_timeout: Option<Duration>,
    /// Reactor mode: bytes of unsent output a connection may
    /// accumulate before it is disconnected as a non-reader.
    pub max_write_buffer_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            quota: TenantQuota::default(),
            max_frame_bytes: 1 << 20,
            threads: NonZeroUsize::MIN,
            data_dir: None,
            store_max_bytes: StoreLimits::default().max_bytes,
            allow_remote_shutdown: false,
            store_mode: StoreMode::Leader,
            lease_ttl: Duration::from_secs(2),
            net_mode: NetMode::Threads,
            net_workers: NonZeroUsize::new(4).unwrap_or(NonZeroUsize::MIN),
            write_timeout: Some(Duration::from_secs(30)),
            max_write_buffer_bytes: 8 << 20,
        }
    }
}

/// What startup recovery found under the data directory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Workspaces rebuilt from snapshot (+ journal replay).
    pub workspaces_recovered: u64,
    /// Journal operations replayed on top of snapshots.
    pub ops_replayed: u64,
    /// Journals whose torn/corrupt tail cut replay short (the verified
    /// prefix was still replayed).
    pub truncated_tails: u64,
    /// Workspace directories with no usable snapshot; skipped. The
    /// name becomes available again for a fresh `open`.
    pub dirs_skipped: u64,
    /// Replayed operations that failed to re-apply (replay of that
    /// workspace stops at the failure; earlier ops are kept).
    pub replay_failures: u64,
    /// Journal records written by a deposed (fenced) writer and
    /// rejected during replay — a zombie leader's appends, kept out of
    /// the history by epoch fencing.
    pub fenced_records_rejected: u64,
    /// Workspace directories whose lease another live process holds;
    /// left alone (the keeper watches them and takes over on expiry).
    pub dirs_lease_held: u64,
}

impl RecoveryReport {
    /// Field-wise accumulate (keeper takeovers and follower lazy loads
    /// add to the startup report).
    fn absorb(&mut self, other: &RecoveryReport) {
        self.workspaces_recovered += other.workspaces_recovered;
        self.ops_replayed += other.ops_replayed;
        self.truncated_tails += other.truncated_tails;
        self.dirs_skipped += other.dirs_skipped;
        self.replay_failures += other.replay_failures;
        self.fenced_records_rejected += other.fenced_records_rejected;
        self.dirs_lease_held += other.dirs_lease_held;
    }
}

/// Journal compaction threshold: after this many operations since the
/// last snapshot, the next journaled edit triggers a snapshot (which
/// truncates the journal).
const COMPACT_AFTER_OPS: u64 = 256;

/// How long a follower waits for its leader before degrading. Far above
/// any sane drain time (drains are budget-bounded); this is a hang
/// backstop, not a tuning knob.
const FOLLOWER_TIMEOUT: Duration = Duration::from_secs(300);

const SHARDS: usize = 16;

/// Diagnostic owner label stamped into lease files.
const LEASE_LABEL: &str = "car-server";

/// Every workspace directory under `data_dir/workspaces` (two levels:
/// tenant, then workspace). Missing roots yield an empty list.
fn workspace_dirs(data_dir: &Path) -> Vec<PathBuf> {
    let mut dirs = Vec::new();
    let Ok(tenants) = std::fs::read_dir(data_dir.join("workspaces")) else {
        return dirs;
    };
    for tenant_dir in tenants.flatten() {
        let Ok(workspaces) = std::fs::read_dir(tenant_dir.path()) else { continue };
        for ws_dir in workspaces.flatten() {
            dirs.push(ws_dir.path());
        }
    }
    dirs
}

/// A follower's staleness fingerprint for one workspace directory:
/// the compaction generation (odd while a compaction is in flight)
/// plus a hash over the (name, length) of every snapshot/journal file
/// in the directory. Snapshots and journals are named by the writer's
/// fencing epoch, so a takeover shows up as a new file name and an
/// epoch sweep as a removal — both change the hash even when the new
/// journal happens to match the old one's length. Purely advisory — a
/// refresh triggered by a torn observation only costs a re-read, never
/// a wrong answer, because restore applies the same verification rules
/// as recovery.
fn follower_fingerprint(path: &Path) -> (u64, u64) {
    let gen = read_generation(path, &Disk::real()).unwrap_or(0);
    let mut files: Vec<String> = Vec::new();
    if let Ok(entries) = std::fs::read_dir(path) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if !(name.starts_with("snapshot") || name.starts_with("journal")) {
                continue;
            }
            let len = entry.metadata().map(|m| m.len()).unwrap_or(0);
            files.push(format!("{name} {len}"));
        }
    }
    files.sort();
    (gen, codec::fnv64(files.join("\n").as_bytes()))
}

struct PendingBatch {
    queries: Vec<WireQuery>,
    slot: Arc<Slot>,
}

struct Slot {
    answers: Mutex<Option<Vec<Json>>>,
    ready: Condvar,
}

/// One enqueued batch's resolution plan (per query: an index into the
/// round's combined batch, or the unknown class name) plus the slot
/// its answers go to.
type BatchPlan = (Vec<Result<usize, String>>, Arc<Slot>);

struct BatchQueue {
    pending: Vec<PendingBatch>,
    /// A leader currently holds (or is about to take) the workspace
    /// lock and will drain `pending`.
    draining: bool,
}

struct WsEntry {
    tenant: String,
    name: String,
    ws: Mutex<Workspace>,
    queue: Mutex<BatchQueue>,
    /// Bumped on every successful `apply`/`undo`/`redo`; lets clients
    /// correlate answers with schema versions.
    version: AtomicU64,
    /// The workspace's durable home (snapshot + journal), when the
    /// server has a data directory. Lock ordering: always taken *after*
    /// the workspace lock, never the other way round.
    dir: Option<Mutex<WorkspaceDir>>,
    /// The leader's claim on the durable home. `None` for memory-only
    /// entries and on followers. Lock ordering: after the dir lock.
    lease: Mutex<Option<Lease>>,
    /// Set once the claim is observed lost (a successor took over).
    /// Edits on a fenced entry are refused; queries keep serving the
    /// in-memory state.
    fenced: AtomicBool,
    /// Follower staleness fingerprint: (compaction generation, hash of
    /// snapshot/journal file names and lengths) as of the last refresh.
    /// `None` outside follower mode.
    freshness: Option<Mutex<(u64, u64)>>,
}

/// The shared, thread-safe service state: registry plus configuration.
pub struct Service {
    config: ServerConfig,
    shards: Vec<Mutex<HashMap<WsKey, Arc<WsEntry>>>>,
    /// Shared durable enumeration store, attached to every workspace.
    store: Option<SharedStore>,
    /// Behind a mutex because keeper takeovers keep adding to it after
    /// startup.
    recovery: Mutex<RecoveryReport>,
    /// Snapshot/journal writes that failed. The in-memory operation
    /// still succeeded; only durability was lost (the next successful
    /// snapshot re-covers the state).
    durability_failures: AtomicU64,
    /// Expired leases this process took over (keeper sweeps).
    leases_taken_over: AtomicU64,
    /// Edit requests refused because this server is a follower.
    read_only_rejections: AtomicU64,
    /// Directories with an `open` between creating the directory and
    /// claiming its lease. The keeper sweep must not claim these: it
    /// would depose its own in-flight `open`, which shares its fate
    /// anyway. Registered before the directory exists, removed when the
    /// open completes, so any directory a sweep can see mid-open is in
    /// here.
    opening: Mutex<std::collections::HashSet<PathBuf>>,
    /// Set by an (operator-enabled) `shutdown` request; the server
    /// binary waits on this and then drains gracefully.
    shutdown_flag: Mutex<bool>,
    shutdown_ready: Condvar,
    /// Network-layer counters, updated by whichever net runtime
    /// (threads accept loop or epoll reactor) carries this service.
    net: Arc<NetCounters>,
}

/// Removes a path from [`Service::opening`] when the `open` that
/// registered it returns (on every path, including errors).
struct OpeningGuard<'a> {
    set: &'a Mutex<std::collections::HashSet<PathBuf>>,
    path: PathBuf,
}

impl<'a> OpeningGuard<'a> {
    fn new(set: &'a Mutex<std::collections::HashSet<PathBuf>>, path: PathBuf) -> Self {
        set.lock().unwrap_or_else(std::sync::PoisonError::into_inner).insert(path.clone());
        OpeningGuard { set, path }
    }
}

impl Drop for OpeningGuard<'_> {
    fn drop(&mut self) {
        self.set
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove(&self.path);
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct WsKey {
    tenant: String,
    workspace: String,
}

impl Service {
    /// A fresh service. With a `data_dir` configured, this opens (or
    /// creates) the durable store and recovers every workspace found
    /// under `data_dir/workspaces` from its snapshot and journal; any
    /// damaged artifact degrades to "not recovered", never to a wrong
    /// answer or a panic.
    #[must_use]
    pub fn new(config: ServerConfig) -> Service {
        let mut service = Service {
            config,
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            store: None,
            recovery: Mutex::new(RecoveryReport::default()),
            durability_failures: AtomicU64::new(0),
            leases_taken_over: AtomicU64::new(0),
            read_only_rejections: AtomicU64::new(0),
            opening: Mutex::new(std::collections::HashSet::new()),
            shutdown_flag: Mutex::new(false),
            shutdown_ready: Condvar::new(),
            net: Arc::new(NetCounters::default()),
        };
        if let Some(data_dir) = service.config.data_dir.clone() {
            let limits = StoreLimits { max_bytes: service.config.store_max_bytes };
            match service.config.store_mode {
                StoreMode::Leader => {
                    match DiskStore::open_real(&data_dir.join("store"), limits) {
                        Ok(store) => service.store = Some(Arc::new(Mutex::new(store))),
                        Err(e) => {
                            eprintln!(
                                "car-server: cannot open store under {}: {e}; running without one",
                                data_dir.display()
                            );
                        }
                    }
                }
                StoreMode::Follower => {
                    // A follower's store never writes, sweeps, or
                    // evicts; opening it cannot fail.
                    service.store = Some(Arc::new(Mutex::new(DiskStore::open_read_only(
                        &data_dir.join("store"),
                        limits,
                        Disk::real(),
                    ))));
                }
            }
            let report = service.recover_workspaces(&data_dir);
            *service.recovery.lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
                report;
        }
        service
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The shared network-layer counters (updated by the net runtime,
    /// surfaced by `health`/`stats`).
    #[must_use]
    pub fn net_counters(&self) -> &Arc<NetCounters> {
        &self.net
    }

    /// Decodes and dispatches one raw frame, always producing exactly
    /// one response line. This is the full protocol boundary — UTF-8
    /// check, JSON parse, request parse, dispatch — factored out of the
    /// connection's thread so any execution context (a per-connection
    /// thread or a reactor worker) can run ops identically.
    #[must_use]
    pub fn execute_frame(&self, raw: &[u8]) -> String {
        let text = match std::str::from_utf8(raw) {
            Ok(t) => t,
            Err(e) => {
                let mut err = WireError::new("bad_json", "frame is not valid UTF-8");
                err.offset = Some(e.valid_up_to());
                return err_response(None, &err);
            }
        };
        let frame = match crate::json::parse(text) {
            Ok(f) => f,
            Err(e) => {
                let mut err = WireError::new("bad_json", e.message);
                err.offset = Some(e.offset);
                return err_response(None, &err);
            }
        };
        let (envelope, request) = parse_request(&frame);
        match request {
            Ok(req) => self.handle(&envelope, req),
            Err(e) => err_response(envelope.id, &e),
        }
    }

    /// What recovery found so far: the startup scan plus every keeper
    /// takeover since (all zeroes without a data dir).
    #[must_use]
    pub fn recovery_report(&self) -> RecoveryReport {
        *self.recovery.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Expired leases this process has taken over.
    #[must_use]
    pub fn leases_taken_over(&self) -> u64 {
        self.leases_taken_over.load(Ordering::Relaxed)
    }

    /// Edit requests refused because this server is a follower.
    #[must_use]
    pub fn read_only_rejections(&self) -> u64 {
        self.read_only_rejections.load(Ordering::Relaxed)
    }

    /// Snapshot/journal writes that failed so far.
    #[must_use]
    pub fn durability_failures(&self) -> u64 {
        self.durability_failures.load(Ordering::Relaxed)
    }

    /// `true` once a `shutdown` request was accepted.
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        *self.shutdown_flag.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Blocks until a `shutdown` request is accepted.
    pub fn wait_shutdown(&self) {
        let mut flag =
            self.shutdown_flag.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        while !*flag {
            flag = self
                .shutdown_ready
                .wait(flag)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn request_shutdown(&self) {
        *self.shutdown_flag.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = true;
        self.shutdown_ready.notify_all();
    }

    /// The reasoning configuration every workspace runs under.
    fn reasoner_config(&self) -> ReasonerConfig {
        ReasonerConfig {
            threads: self.config.threads,
            budget: self.config.quota.budget(),
            ..ReasonerConfig::default()
        }
    }

    /// The durable home of one workspace. Tenant and workspace are
    /// free-form wire input, so each is escaped into a traversal-free
    /// path segment ([`codec::esc_path`] escapes separators and leading
    /// dots); the segments are re-checked here as a second line of
    /// defense in front of `create` and `remove_dir_all`.
    fn workspace_dir_path(&self, tenant: &str, workspace: &str) -> Option<PathBuf> {
        fn safe(seg: &str) -> bool {
            !seg.is_empty() && seg != "." && seg != ".." && !seg.contains(['/', '\\'])
        }
        let root = self.config.data_dir.as_ref()?.join("workspaces");
        let (tenant, workspace) = (codec::esc_path(tenant), codec::esc_path(workspace));
        (safe(&tenant) && safe(&workspace)).then(|| root.join(tenant).join(workspace))
    }

    /// Scans `data_dir/workspaces` and rebuilds every recoverable
    /// workspace: snapshot state, then replay of the journal's verified
    /// prefix through the normal [`Workspace`] edit path. A leader only
    /// adopts directories whose lease it can claim; a follower restores
    /// everything read-only.
    fn recover_workspaces(&self, data_dir: &Path) -> RecoveryReport {
        let mut report = RecoveryReport::default();
        for path in workspace_dirs(data_dir) {
            match self.config.store_mode {
                StoreMode::Leader => match Lease::acquire(&path, LEASE_LABEL, &Disk::real())
                {
                    Ok(Acquire::Acquired(lease)) => {
                        self.adopt_leased_dir(&path, lease, &mut report);
                    }
                    Ok(Acquire::Held(_)) => report.dirs_lease_held += 1,
                    Err(_) => report.dirs_skipped += 1,
                },
                StoreMode::Follower => self.follower_restore(&path, &mut report),
            }
        }
        report
    }

    /// Replays recovered journal operations through the normal edit
    /// path, updating `report`.
    fn replay_ops(
        &self,
        ws: &mut Workspace,
        ops: &[JournalOp],
        report: &mut RecoveryReport,
    ) {
        for op in ops {
            let ok = match op {
                JournalOp::Apply(delta) => ws.apply(delta).is_ok(),
                JournalOp::Undo => {
                    ws.undo();
                    true
                }
                JournalOp::Redo => {
                    ws.redo();
                    true
                }
            };
            if !ok {
                report.replay_failures += 1;
                break;
            }
            report.ops_replayed += 1;
        }
    }

    /// Recovers one workspace directory under an already-acquired
    /// lease: fences every prior writer's epoch, replays, writes the
    /// fencing snapshot, and registers the entry (which now owns the
    /// lease). Returns `false` when the directory had no usable
    /// snapshot (the lease is released so a fresh `open` can claim it).
    fn adopt_leased_dir(
        &self,
        path: &Path,
        mut lease: Lease,
        report: &mut RecoveryReport,
    ) -> bool {
        let Some(rec) = WorkspaceDir::recover(path, Disk::real()) else {
            report.dirs_skipped += 1;
            let _ = lease.release();
            return false;
        };
        // Fence all prior writers: the claim's epoch must exceed every
        // epoch already in the history. If that cannot be guaranteed
        // (I/O error and a non-dominating epoch), serving this
        // directory could let two writers interleave — leave it for a
        // later sweep instead.
        if lease.ensure_epoch_above(rec.epoch).is_err() && lease.epoch() <= rec.epoch {
            report.dirs_skipped += 1;
            let _ = lease.release();
            return false;
        }
        let mut dir = rec.dir;
        dir.set_epoch(lease.epoch());
        let mut ws = Workspace::restore(
            rec.schema,
            rec.undo,
            rec.redo,
            self.reasoner_config(),
            self.config.quota.workspace_limits,
        );
        if let Some(store) = &self.store {
            ws.set_store(Arc::clone(store));
        }
        self.replay_ops(&mut ws, &rec.ops, report);
        report.truncated_tails += u64::from(rec.truncated_tail);
        report.fenced_records_rejected += rec.fenced_records;
        report.workspaces_recovered += 1;
        // The fencing snapshot: stamped with the new epoch, it closes
        // the history to every earlier writer *before* this entry
        // serves anything. Recovery rejects any record whose epoch is
        // below its snapshot's, so a paused zombie's later appends die
        // at the next replay. If the snapshot cannot be written, this
        // writer must not append at the new epoch either (its records
        // would be discarded as a damaged tail) — detach and serve
        // memory-only.
        if dir
            .save_snapshot(&rec.tenant, &rec.workspace, ws.schema(), ws.undo_stack(), ws.redo_stack())
            .is_err()
        {
            self.durability_failures.fetch_add(1, Ordering::Relaxed);
            dir.detach();
        }
        let key = WsKey { tenant: rec.tenant.clone(), workspace: rec.workspace.clone() };
        let entry = Arc::new(WsEntry {
            tenant: rec.tenant,
            name: rec.workspace,
            ws: Mutex::new(ws),
            queue: Mutex::new(BatchQueue { pending: Vec::new(), draining: false }),
            version: AtomicU64::new(rec.ops.len() as u64),
            dir: Some(Mutex::new(dir)),
            lease: Mutex::new(Some(lease)),
            fenced: AtomicBool::new(false),
            freshness: None,
        });
        self.shard(&key)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(key, entry);
        true
    }

    /// Restores one workspace directory read-only (no lease, no
    /// writes): the follower serves whatever verified prefix is on disk
    /// and refreshes when the fingerprint moves.
    fn follower_restore(&self, path: &Path, report: &mut RecoveryReport) {
        // Fingerprint *before* reading: if the leader writes mid-
        // restore, the stored fingerprint no longer matches the files
        // and the next query refreshes again.
        let fp = follower_fingerprint(path);
        let Some(rec) = WorkspaceDir::recover(path, Disk::real()) else {
            report.dirs_skipped += 1;
            return;
        };
        let mut ws = Workspace::restore(
            rec.schema,
            rec.undo,
            rec.redo,
            self.reasoner_config(),
            self.config.quota.workspace_limits,
        );
        if let Some(store) = &self.store {
            ws.set_store(Arc::clone(store));
        }
        self.replay_ops(&mut ws, &rec.ops, report);
        report.truncated_tails += u64::from(rec.truncated_tail);
        report.fenced_records_rejected += rec.fenced_records;
        report.workspaces_recovered += 1;
        let key = WsKey { tenant: rec.tenant.clone(), workspace: rec.workspace.clone() };
        let entry = Arc::new(WsEntry {
            tenant: rec.tenant,
            name: rec.workspace,
            ws: Mutex::new(ws),
            queue: Mutex::new(BatchQueue { pending: Vec::new(), draining: false }),
            version: AtomicU64::new(rec.ops.len() as u64),
            dir: None,
            lease: Mutex::new(None),
            fenced: AtomicBool::new(false),
            freshness: Some(Mutex::new(fp)),
        });
        self.shard(&key)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(key, entry);
    }

    /// Snapshots every workspace (compacting its journal). Returns how
    /// many snapshots were written; failures bump
    /// [`Self::durability_failures`] and leave prior snapshots intact.
    pub fn snapshot_all(&self) -> u64 {
        let mut written = 0;
        for shard in &self.shards {
            let entries: Vec<Arc<WsEntry>> = shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .values()
                .cloned()
                .collect();
            for entry in entries {
                let ws = entry.ws.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                if self.snapshot_entry(&entry, &ws) {
                    written += 1;
                }
            }
        }
        written
    }

    /// Checks the entry's claim on its durable home before a write.
    /// `Ok(())` means proceed (which includes "no lease to check" and
    /// "could not read the lease" — the latter is a durability problem,
    /// not a deposition). `Err(())` means the entry is fenced: a
    /// successor owns the history now, the dir has been detached, and
    /// nothing may be written or acknowledged as durable.
    ///
    /// This check is the polite fast path; the hard guarantee is epoch
    /// isolation on disk — snapshots and journals are named by fencing
    /// epoch, so any write that slips through the
    /// pause-between-check-and-write window lands in this writer's own
    /// stale-epoch files and recovery prefers the successor's.
    fn check_lease(&self, entry: &WsEntry) -> Result<(), ()> {
        if entry.fenced.load(Ordering::Relaxed) {
            return Err(());
        }
        let mut guard =
            entry.lease.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let Some(lease) = guard.as_ref() else { return Ok(()) };
        match lease.validate() {
            Ok(true) => Ok(()),
            Ok(false) => {
                // Deposed. Drop the handle (the file belongs to the
                // successor) and stop every future write up front.
                entry.fenced.store(true, Ordering::Relaxed);
                *guard = None;
                drop(guard);
                if let Some(dir) = &entry.dir {
                    dir.lock().unwrap_or_else(std::sync::PoisonError::into_inner).detach();
                }
                Err(())
            }
            Err(_) => {
                // Cannot tell (I/O error reading our own lease). Treat
                // as a durability failure and skip the write, but keep
                // the claim: the keeper's next renew settles it.
                self.durability_failures.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
        }
    }

    /// Writes one workspace's snapshot (caller holds the ws lock).
    /// Returns `false` when the entry has no durable home, lost its
    /// lease, or the write failed.
    fn snapshot_entry(&self, entry: &WsEntry, ws: &Workspace) -> bool {
        let Some(dir) = &entry.dir else { return false };
        if self.check_lease(entry).is_err() {
            return false;
        }
        let mut dir = dir.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let saved = dir
            .save_snapshot(
                &entry.tenant,
                &entry.name,
                ws.schema(),
                ws.undo_stack(),
                ws.redo_stack(),
            )
            .is_ok();
        if !saved {
            self.durability_failures.fetch_add(1, Ordering::Relaxed);
        }
        saved
    }

    /// Journals one operation on a workspace (caller holds the ws
    /// lock), compacting when the journal has grown enough. Append
    /// failures only cost durability; returns `false` only when the
    /// entry is *fenced* — a successor holds the lease, so the edit
    /// must not be acknowledged (the caller rolls it back).
    fn journal_op(&self, entry: &WsEntry, ws: &Workspace, op: &JournalOp) -> bool {
        let Some(dir) = &entry.dir else { return true };
        if self.check_lease(entry).is_err() {
            return false;
        }
        let needs_compaction = {
            let mut dir = dir.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if dir.append_op(op).is_err() {
                self.durability_failures.fetch_add(1, Ordering::Relaxed);
            }
            dir.ops_since_snapshot() >= COMPACT_AFTER_OPS
        };
        if needs_compaction {
            self.snapshot_entry(entry, ws);
        }
        true
    }

    fn shard(&self, key: &WsKey) -> &Mutex<HashMap<WsKey, Arc<WsEntry>>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    fn lookup(&self, tenant: &str, workspace: &str) -> Result<Arc<WsEntry>, WireError> {
        let key = WsKey { tenant: tenant.to_owned(), workspace: workspace.to_owned() };
        self.shard(&key)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&key)
            .cloned()
            .ok_or_else(|| {
                WireError::new("unknown_workspace", format!("no workspace '{workspace}'"))
            })
    }

    /// Looks a workspace up for a *read* path. A follower hit is
    /// refreshed when the on-disk fingerprint moved; a follower miss
    /// additionally tries a lazy load from disk (the leader may have
    /// created the workspace after our startup scan).
    fn lookup_fresh(&self, tenant: &str, workspace: &str) -> Result<Arc<WsEntry>, WireError> {
        match self.lookup(tenant, workspace) {
            Ok(entry) => {
                self.refresh_follower(&entry);
                Ok(entry)
            }
            Err(e) => {
                if self.config.store_mode == StoreMode::Follower {
                    if let Some(entry) = self.follower_load(tenant, workspace) {
                        return Ok(entry);
                    }
                }
                Err(e)
            }
        }
    }

    /// Rebuilds a follower entry from disk when its staleness
    /// fingerprint moved. Serving continues from the old state if the
    /// directory is currently unrecoverable (mid-rewrite); the next
    /// query tries again. No-op outside follower mode.
    fn refresh_follower(&self, entry: &Arc<WsEntry>) {
        let Some(freshness) = &entry.freshness else { return };
        let Some(path) = self.workspace_dir_path(&entry.tenant, &entry.name) else {
            return;
        };
        let before = follower_fingerprint(&path);
        {
            let seen =
                freshness.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            // An odd generation means a compaction is in flight — the
            // seqlock's write marker — so even a matching fingerprint
            // must be re-checked next time.
            if *seen == before && before.0.is_multiple_of(2) {
                return;
            }
        }
        let Some(rec) = WorkspaceDir::recover(&path, Disk::real()) else { return };
        let mut ws = Workspace::restore(
            rec.schema,
            rec.undo,
            rec.redo,
            self.reasoner_config(),
            self.config.quota.workspace_limits,
        );
        if let Some(store) = &self.store {
            ws.set_store(Arc::clone(store));
        }
        let mut scratch = RecoveryReport::default();
        self.replay_ops(&mut ws, &rec.ops, &mut scratch);
        // Store the *pre-read* fingerprint: anything the leader wrote
        // while we were rebuilding makes the next query mismatch and
        // refresh again. A mid-compaction read can never stick.
        let stamp =
            if before.0.is_multiple_of(2) { before } else { (u64::MAX, u64::MAX) };
        let mut guard = entry.ws.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *guard = ws;
        entry.version.store(rec.ops.len() as u64, Ordering::Relaxed);
        drop(guard);
        *freshness.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = stamp;
    }

    /// Loads a workspace a follower has never seen from disk, if its
    /// directory exists and recovers. Returns the registered entry.
    fn follower_load(&self, tenant: &str, workspace: &str) -> Option<Arc<WsEntry>> {
        let path = self.workspace_dir_path(tenant, workspace)?;
        let mut report = RecoveryReport::default();
        self.follower_restore(&path, &mut report);
        if report.workspaces_recovered > 0 {
            self.recovery
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .absorb(&report);
        }
        self.lookup(tenant, workspace).ok()
    }

    fn tenant_workspace_count(&self, tenant: &str) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                shard
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .keys()
                    .filter(|k| k.tenant == tenant)
                    .count()
            })
            .sum()
    }

    /// Handles one parsed request and produces the full response line.
    /// Never panics on any input; errors come back as error responses.
    #[must_use]
    pub fn handle(&self, envelope: &Envelope, request: Request) -> String {
        let id = envelope.id;
        if self.config.store_mode == StoreMode::Follower
            && matches!(
                request,
                Request::Open { .. }
                    | Request::Close { .. }
                    | Request::Apply { .. }
                    | Request::Undo { .. }
                    | Request::Redo { .. }
            )
        {
            self.read_only_rejections.fetch_add(1, Ordering::Relaxed);
            return crate::protocol::err_response(
                id,
                &WireError::new(
                    "read_only",
                    "this server is a read-only follower; send edits to the leader",
                ),
            );
        }
        match request {
            Request::Ping => ok_response(id, vec![("pong", Json::Bool(true))]),
            Request::Health => self.health(envelope),
            Request::Open { workspace, schema, replace } => {
                self.open(envelope, &workspace, &schema, replace)
            }
            Request::Close { workspace } => self.close(envelope, &workspace),
            Request::Apply { workspace, deltas } => {
                self.apply(envelope, &workspace, &deltas)
            }
            Request::Undo { workspace } => self.undo_redo(envelope, &workspace, true),
            Request::Redo { workspace } => self.undo_redo(envelope, &workspace, false),
            Request::Query { workspace, queries } => {
                self.query(envelope, &workspace, queries)
            }
            Request::Stats { workspace } => self.stats(envelope, &workspace),
            Request::List => self.list(envelope),
            Request::Shutdown => {
                if !self.config.allow_remote_shutdown {
                    return crate::protocol::err_response(
                        id,
                        &WireError::new(
                            "forbidden",
                            "shutdown is disabled (start with --allow-remote-shutdown)",
                        ),
                    );
                }
                self.request_shutdown();
                ok_response(id, vec![("shutting_down", Json::Bool(true))])
            }
        }
    }

    fn open(
        &self,
        envelope: &Envelope,
        workspace: &str,
        schema_text: &str,
        replace: bool,
    ) -> String {
        let id = envelope.id;
        let schema = match parse_schema(schema_text) {
            Ok(s) => s,
            Err(e) => return crate::protocol::err_response(id, &WireError::from(&e)),
        };
        let num_classes = schema.num_classes();
        let mut ws = Workspace::with_limits(
            schema,
            self.reasoner_config(),
            self.config.quota.workspace_limits,
        );
        if let Some(store) = &self.store {
            ws.set_store(Arc::clone(store));
        }
        let key =
            WsKey { tenant: envelope.tenant.clone(), workspace: workspace.to_owned() };

        // Count before inserting so the cap is enforced even for the
        // insert that would exceed it. Races between two concurrent
        // opens of *different* names can overshoot by one; the cap is a
        // resource guard, not an accounting invariant.
        let previous = self.lookup(&envelope.tenant, workspace).ok();
        let existing = previous.is_some();
        if !existing && self.tenant_workspace_count(&envelope.tenant)
            >= self.config.quota.max_workspaces
        {
            return crate::protocol::err_response(
                id,
                &WireError::new(
                    "quota",
                    format!(
                        "tenant '{}' already has {} workspaces open",
                        envelope.tenant, self.config.quota.max_workspaces
                    ),
                ),
            );
        }
        if existing && !replace {
            return crate::protocol::err_response(
                id,
                &WireError::new(
                    "workspace_exists",
                    format!("workspace '{workspace}' already exists (pass \"replace\":true)"),
                ),
            );
        }

        // Retire the replaced entry's durable writer *before* creating
        // the new one at the same path: an in-flight request that
        // looked the old entry up can still hold it, and its journal
        // appends (and torn-tail truncations) must never interleave
        // with the new writer's. Taking the old dir lock serializes
        // with any append in flight right now; the detach flag stops
        // every later one. Its lease is released too, so the new writer
        // can claim the directory.
        if let Some(old) = &previous {
            if let Some(old_dir) = &old.dir {
                old_dir.lock().unwrap_or_else(std::sync::PoisonError::into_inner).detach();
            }
            let old_lease = old
                .lease
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .take();
            if let Some(lease) = old_lease {
                let _ = lease.release();
            }
        }

        // Give the workspace its durable home and snapshot immediately,
        // so a crash right after `open` recovers it. The directory must
        // be claimed before anything is written into it: opening a
        // workspace another live process owns fails with `lease_held`
        // rather than forking the history. Other failures leave the
        // workspace memory-only for its lifetime.
        let mut new_lease: Option<Lease> = None;
        let mut lease_held = false;
        // Shield the directory from this process's own keeper sweep for
        // the create→claim window: registered before the directory
        // exists, dropped once the open holds (or failed to hold) the
        // lease and registered the entry.
        let path = self.workspace_dir_path(&envelope.tenant, workspace);
        let _opening = path.clone().map(|p| OpeningGuard::new(&self.opening, p));
        let dir = path.and_then(|path| {
            let mut dir = match WorkspaceDir::create(&path, Disk::real()) {
                Ok(d) => d,
                Err(_) => {
                    self.durability_failures.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
            };
            match Lease::acquire(&path, LEASE_LABEL, &Disk::real()) {
                Ok(Acquire::Acquired(mut lease)) => {
                    // The epoch must strictly exceed every epoch already
                    // on disk before anything is written: file names
                    // embed the epoch, and a reused epoch would let two
                    // writers share a file. If the raise fails and the
                    // claim is not already above, serve memory-only.
                    if lease.ensure_epoch_above(dir.epoch()).is_err()
                        && lease.epoch() <= dir.epoch()
                    {
                        self.durability_failures.fetch_add(1, Ordering::Relaxed);
                        let _ = lease.release();
                        return None;
                    }
                    dir.set_epoch(lease.epoch());
                    new_lease = Some(lease);
                }
                Ok(Acquire::Held(_)) => {
                    lease_held = true;
                    return None;
                }
                Err(_) => {
                    self.durability_failures.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
            }
            if dir
                .save_snapshot(&envelope.tenant, workspace, ws.schema(), &[], &[])
                .is_err()
            {
                self.durability_failures.fetch_add(1, Ordering::Relaxed);
            }
            Some(Mutex::new(dir))
        });
        if lease_held {
            return crate::protocol::err_response(
                id,
                &WireError::new(
                    "lease_held",
                    format!(
                        "another live process holds the lease on workspace '{workspace}'"
                    ),
                ),
            );
        }
        let entry = Arc::new(WsEntry {
            tenant: envelope.tenant.clone(),
            name: workspace.to_owned(),
            ws: Mutex::new(ws),
            queue: Mutex::new(BatchQueue { pending: Vec::new(), draining: false }),
            version: AtomicU64::new(0),
            dir,
            lease: Mutex::new(new_lease),
            fenced: AtomicBool::new(false),
            freshness: None,
        });
        self.shard(&key)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(key, entry);
        ok_response(
            id,
            vec![
                ("workspace", s(workspace)),
                ("classes", Json::UInt(num_classes as u64)),
                ("replaced", Json::Bool(existing)),
            ],
        )
    }

    fn close(&self, envelope: &Envelope, workspace: &str) -> String {
        let key =
            WsKey { tenant: envelope.tenant.clone(), workspace: workspace.to_owned() };
        let removed = self
            .shard(&key)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove(&key);
        if let Some(entry) = removed {
            // A closed workspace is gone for good; its durable state
            // must not resurrect it on the next restart. Detach the
            // writer first so an in-flight request still holding the
            // entry cannot recreate files after the deletion.
            if let Some(dir) = &entry.dir {
                dir.lock().unwrap_or_else(std::sync::PoisonError::into_inner).detach();
            }
            // Release before deleting: the release deregisters the
            // in-process nonce so the name can be re-claimed instantly.
            let lease = entry
                .lease
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .take();
            if let Some(lease) = lease {
                let _ = lease.release();
            }
            if let Some(path) = self.workspace_dir_path(&envelope.tenant, workspace) {
                let _ = std::fs::remove_dir_all(path);
            }
            ok_response(envelope.id, vec![("closed", s(workspace))])
        } else {
            crate::protocol::err_response(
                envelope.id,
                &WireError::new("unknown_workspace", format!("no workspace '{workspace}'")),
            )
        }
    }

    fn apply(
        &self,
        envelope: &Envelope,
        workspace: &str,
        deltas: &[crate::protocol::WireDelta],
    ) -> String {
        let entry = match self.lookup(&envelope.tenant, workspace) {
            Ok(e) => e,
            Err(e) => return crate::protocol::err_response(envelope.id, &e),
        };
        let mut ws = entry.ws.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut applied: u64 = 0;
        for delta in deltas {
            // Resolve against the *current* schema so a delta may refer
            // to classes introduced earlier in this same request.
            let resolved = match delta.resolve(ws.schema()) {
                Ok(d) => d,
                Err(e) => {
                    return self.partial_apply_response(envelope.id, applied, &entry, &e);
                }
            };
            if let Err(e) = ws.apply(&resolved) {
                return self.partial_apply_response(
                    envelope.id,
                    applied,
                    &entry,
                    &WireError::from(&e),
                );
            }
            // Journal only what actually applied; a crash replays
            // exactly this sequence through the same edit path.
            if !self.journal_op(&entry, &ws, &JournalOp::Apply(resolved)) {
                // Fenced: a successor owns the durable history, so this
                // edit can never be made durable. Roll the in-memory
                // state back and refuse rather than acknowledge an edit
                // that a recovery would not have.
                ws.undo();
                return self.partial_apply_response(
                    envelope.id,
                    applied,
                    &entry,
                    &WireError::new(
                        "lease_lost",
                        "another process took over this workspace's lease; edits are refused",
                    ),
                );
            }
            applied += 1;
        }
        let version = if applied > 0 {
            entry.version.fetch_add(1, Ordering::Relaxed) + 1
        } else {
            entry.version.load(Ordering::Relaxed)
        };
        ok_response(
            envelope.id,
            vec![("applied", Json::UInt(applied)), ("version", Json::UInt(version))],
        )
    }

    /// An apply that failed midway still reports how many deltas were
    /// applied (they remain applied; the request is not transactional —
    /// clients can `undo` them).
    fn partial_apply_response(
        &self,
        id: Option<u64>,
        applied: u64,
        entry: &WsEntry,
        error: &WireError,
    ) -> String {
        let version = if applied > 0 {
            entry.version.fetch_add(1, Ordering::Relaxed) + 1
        } else {
            entry.version.load(Ordering::Relaxed)
        };
        crate::json::to_string(&obj(vec![
            ("id", match id {
                Some(n) => Json::UInt(n),
                None => Json::Null,
            }),
            ("ok", Json::Bool(false)),
            ("applied", Json::UInt(applied)),
            ("version", Json::UInt(version)),
            ("error", error.to_json()),
        ])) + "\n"
    }

    fn undo_redo(&self, envelope: &Envelope, workspace: &str, undo: bool) -> String {
        let entry = match self.lookup(&envelope.tenant, workspace) {
            Ok(e) => e,
            Err(e) => return crate::protocol::err_response(envelope.id, &e),
        };
        let mut ws = entry.ws.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let moved = if undo { ws.undo() } else { ws.redo() };
        if moved
            && !self.journal_op(
                &entry,
                &ws,
                if undo { &JournalOp::Undo } else { &JournalOp::Redo },
            )
        {
            // Fenced: invert the in-memory move and refuse the edit.
            if undo {
                ws.redo();
            } else {
                ws.undo();
            }
            drop(ws);
            return crate::protocol::err_response(
                envelope.id,
                &WireError::new(
                    "lease_lost",
                    "another process took over this workspace's lease; edits are refused",
                ),
            );
        }
        // Bump while still holding the workspace lock (mirroring
        // `apply`), so the reported version corresponds to the state
        // this operation produced even under concurrent edits.
        let version = if moved {
            entry.version.fetch_add(1, Ordering::Relaxed) + 1
        } else {
            entry.version.load(Ordering::Relaxed)
        };
        drop(ws);
        ok_response(
            envelope.id,
            vec![("moved", Json::Bool(moved)), ("version", Json::UInt(version))],
        )
    }

    fn stats(&self, envelope: &Envelope, workspace: &str) -> String {
        let entry = match self.lookup_fresh(&envelope.tenant, workspace) {
            Ok(e) => e,
            Err(e) => return crate::protocol::err_response(envelope.id, &e),
        };
        let ws = entry.ws.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let stats = ws.stats();
        let classes = ws.schema().num_classes();
        drop(ws);
        let journal_ops = entry.dir.as_ref().map(|dir| {
            dir.lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .ops_since_snapshot()
        });
        let mut fields = vec![
            ("version", Json::UInt(entry.version.load(Ordering::Relaxed))),
            ("classes", Json::UInt(classes as u64)),
            ("bundle_hits", Json::UInt(stats.bundle_hits)),
            ("bundle_misses", Json::UInt(stats.bundle_misses)),
            ("clusters_reused", Json::UInt(stats.clusters_reused)),
            ("clusters_rebuilt", Json::UInt(stats.clusters_rebuilt)),
            ("edits_applied", Json::UInt(stats.edits_applied)),
            ("disk_cluster_hits", Json::UInt(stats.disk_cluster_hits)),
            ("disk_ccs_hits", Json::UInt(stats.disk_ccs_hits)),
            ("disk_writes", Json::UInt(stats.disk_writes)),
            ("disk_write_failures", Json::UInt(stats.disk_write_failures)),
            ("net_mode", s(self.config.net_mode.label())),
            ("net_conns_open", Json::UInt(self.net.conns_open.load(Ordering::Relaxed))),
            (
                "net_backpressure_stalls",
                Json::UInt(self.net.backpressure_stalls.load(Ordering::Relaxed)),
            ),
            (
                "net_worker_queue_depth",
                Json::UInt(self.net.worker_queue_depth.load(Ordering::Relaxed)),
            ),
        ];
        if let Some(ops) = journal_ops {
            fields.push(("journal_ops_since_snapshot", Json::UInt(ops)));
        }
        if let Some(effective) = stats.effective_strategy {
            fields.push(("effective_strategy", Json::Str(format!("{effective:?}"))));
        }
        ok_response(envelope.id, fields)
    }

    fn list(&self, envelope: &Envelope) -> String {
        let mut names: Vec<String> = self
            .shards
            .iter()
            .flat_map(|shard| {
                shard
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .keys()
                    .filter(|k| k.tenant == envelope.tenant)
                    .map(|k| k.workspace.clone())
                    .collect::<Vec<_>>()
            })
            .collect();
        names.sort();
        ok_response(
            envelope.id,
            vec![("workspaces", Json::Arr(names.into_iter().map(Json::Str).collect()))],
        )
    }

    /// The `health` op: role, per-workspace lease state (this tenant's
    /// workspaces only), recovery counters, and durability counters.
    fn health(&self, envelope: &Envelope) -> String {
        let role = match self.config.store_mode {
            StoreMode::Leader => "leader",
            StoreMode::Follower => "follower",
        };
        let mut entries: Vec<Arc<WsEntry>> = self
            .all_entries()
            .into_iter()
            .filter(|e| e.tenant == envelope.tenant)
            .collect();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        let workspaces: Vec<Json> = entries
            .iter()
            .map(|e| {
                let epoch = e
                    .lease
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .as_ref()
                    .map_or(0, Lease::epoch);
                let mut fields = vec![
                    ("workspace", s(&e.name)),
                    ("lease_epoch", Json::UInt(epoch)),
                    ("fenced", Json::Bool(e.fenced.load(Ordering::Relaxed))),
                ];
                // try_lock: health must answer even while a drain holds
                // a workspace lock; the strategy is then just omitted.
                if let Ok(ws) = e.ws.try_lock() {
                    if let Some(effective) = ws.stats().effective_strategy {
                        fields
                            .push(("effective_strategy", Json::Str(format!("{effective:?}"))));
                    }
                }
                obj(fields)
            })
            .collect();
        let r = self.recovery_report();
        ok_response(
            envelope.id,
            vec![
                ("role", s(role)),
                ("workspaces", Json::Arr(workspaces)),
                (
                    "recovery",
                    obj(vec![
                        ("workspaces_recovered", Json::UInt(r.workspaces_recovered)),
                        ("ops_replayed", Json::UInt(r.ops_replayed)),
                        ("truncated_tails", Json::UInt(r.truncated_tails)),
                        ("dirs_skipped", Json::UInt(r.dirs_skipped)),
                        ("replay_failures", Json::UInt(r.replay_failures)),
                        ("fenced_records_rejected", Json::UInt(r.fenced_records_rejected)),
                        ("dirs_lease_held", Json::UInt(r.dirs_lease_held)),
                    ]),
                ),
                ("durability_failures", Json::UInt(self.durability_failures())),
                ("leases_taken_over", Json::UInt(self.leases_taken_over())),
                ("read_only_rejections", Json::UInt(self.read_only_rejections())),
                ("net", self.net_json()),
            ],
        )
    }

    /// The `health` response's `net` object: mode, worker-pool size,
    /// and every [`NetCounters`] field. Lets the fleet sweeps observe
    /// the reactor (open connections, backpressure stalls, queue depth)
    /// through the same ops they already poll.
    fn net_json(&self) -> Json {
        let n = &self.net;
        obj(vec![
            ("mode", s(self.config.net_mode.label())),
            ("workers", Json::UInt(self.config.net_workers.get() as u64)),
            ("conns_accepted", Json::UInt(n.conns_accepted.load(Ordering::Relaxed))),
            ("conns_open", Json::UInt(n.conns_open.load(Ordering::Relaxed))),
            ("frames_decoded", Json::UInt(n.frames_decoded.load(Ordering::Relaxed))),
            ("frames_oversized", Json::UInt(n.frames_oversized.load(Ordering::Relaxed))),
            (
                "backpressure_stalls",
                Json::UInt(n.backpressure_stalls.load(Ordering::Relaxed)),
            ),
            (
                "write_buffer_disconnects",
                Json::UInt(n.write_buffer_disconnects.load(Ordering::Relaxed)),
            ),
            (
                "write_timeout_disconnects",
                Json::UInt(n.write_timeout_disconnects.load(Ordering::Relaxed)),
            ),
            ("wakeups", Json::UInt(n.wakeups.load(Ordering::Relaxed))),
            (
                "worker_queue_depth",
                Json::UInt(n.worker_queue_depth.load(Ordering::Relaxed)),
            ),
        ])
    }

    // -----------------------------------------------------------------
    // Fleet keeping: heartbeats, takeover sweeps, lease lifecycle
    // -----------------------------------------------------------------

    /// Every registered workspace entry, across all tenants.
    fn all_entries(&self) -> Vec<Arc<WsEntry>> {
        self.shards
            .iter()
            .flat_map(|shard| {
                shard
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .values()
                    .cloned()
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    /// Renews every held lease (the keeper's heartbeat). An entry whose
    /// claim turns out gone is fenced: its writer detaches and all
    /// later edits are refused.
    pub fn renew_leases(&self) {
        for entry in self.all_entries() {
            let mut guard =
                entry.lease.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            let Some(lease) = guard.as_mut() else { continue };
            match lease.renew() {
                Ok(true) => {}
                Ok(false) => {
                    entry.fenced.store(true, Ordering::Relaxed);
                    *guard = None;
                    drop(guard);
                    if let Some(dir) = &entry.dir {
                        dir.lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .detach();
                    }
                }
                Err(_) => {
                    self.durability_failures.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// One keeper sweep over the shared data dir (leader only): adopts
    /// workspace directories this process does not hold — unclaimed
    /// ones immediately, abandoned ones once their lease expires.
    /// `watches` carries expiry observations between sweeps. Returns
    /// how many directories were adopted this sweep.
    pub fn sweep_leases(&self, watches: &mut HashMap<PathBuf, LeaseWatch>) -> u64 {
        if self.config.store_mode != StoreMode::Leader {
            return 0;
        }
        let Some(data_dir) = self.config.data_dir.clone() else { return 0 };
        let ttl = self.config.lease_ttl;
        let disk = Disk::real();
        let held: std::collections::HashSet<PathBuf> = self
            .all_entries()
            .iter()
            .filter(|e| {
                e.lease
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .is_some()
            })
            .filter_map(|e| self.workspace_dir_path(&e.tenant, &e.name))
            .collect();
        let mut adopted = 0;
        for path in workspace_dirs(&data_dir) {
            if held.contains(&path) {
                // An earlier sweep may have started watching this dir
                // before its open finished; the claim is live now.
                watches.remove(&path);
                continue;
            }
            // Checked per-path, after the directory scan: an `open`
            // registers the path before creating the directory, so any
            // directory this scan saw mid-open is already registered.
            if self
                .opening
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .contains(&path)
            {
                continue;
            }
            let acquired = match watches.get_mut(&path) {
                None => match Lease::acquire(&path, LEASE_LABEL, &disk) {
                    Ok(Acquire::Acquired(lease)) => Some(lease),
                    Ok(Acquire::Held(info)) => {
                        watches.insert(path.clone(), LeaseWatch::new(info));
                        None
                    }
                    Err(_) => None,
                },
                Some(watch) => match watch.expired(&path, &disk, ttl) {
                    Ok(true) => {
                        let observed = watch.info().clone();
                        match Lease::take_over(&path, LEASE_LABEL, &disk, &observed) {
                            Ok(Acquire::Acquired(lease)) => {
                                watches.remove(&path);
                                Some(lease)
                            }
                            Ok(Acquire::Held(info)) => {
                                *watch = LeaseWatch::new(info);
                                None
                            }
                            Err(_) => None,
                        }
                    }
                    _ => None,
                },
            };
            if let Some(lease) = acquired {
                let mut report = RecoveryReport::default();
                if self.adopt_leased_dir(&path, lease, &mut report) {
                    adopted += 1;
                    self.leases_taken_over.fetch_add(1, Ordering::Relaxed);
                }
                self.recovery
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .absorb(&report);
            }
        }
        // Directories that vanished (closed workspaces) need no watch.
        watches.retain(|path, _| path.exists());
        adopted
    }

    /// Releases every held lease — the graceful exit. The lease files
    /// are removed, so a successor claims each workspace instantly and
    /// with a clean epoch handoff. Call *after* the final snapshots.
    pub fn release_leases(&self) {
        for entry in self.all_entries() {
            let lease = entry
                .lease
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .take();
            if let Some(lease) = lease {
                let _ = lease.release();
            }
        }
    }

    /// Abandons every held lease without touching the files — the
    /// simulated power cut. Lease files stay on disk for takeover; the
    /// in-process nonces are deregistered (dropping the handles does
    /// that), so a same-process successor steals instantly instead of
    /// waiting out the TTL. Entries are fenced; later edits are
    /// refused.
    pub fn abandon_leases(&self) {
        for entry in self.all_entries() {
            entry.fenced.store(true, Ordering::Relaxed);
            if let Some(dir) = &entry.dir {
                dir.lock().unwrap_or_else(std::sync::PoisonError::into_inner).detach();
            }
            entry.lease.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take();
        }
    }

    // -----------------------------------------------------------------
    // The coalescing query path
    // -----------------------------------------------------------------

    fn query(
        &self,
        envelope: &Envelope,
        workspace: &str,
        queries: Vec<WireQuery>,
    ) -> String {
        let entry = match self.lookup_fresh(&envelope.tenant, workspace) {
            Ok(e) => e,
            Err(e) => return crate::protocol::err_response(envelope.id, &e),
        };
        if queries.is_empty() {
            return ok_response(envelope.id, vec![("answers", Json::Arr(Vec::new()))]);
        }
        let n = queries.len();

        // Enqueue (or degrade, if the queue is saturated behind an
        // in-progress drain).
        let slot = Arc::new(Slot { answers: Mutex::new(None), ready: Condvar::new() });
        let is_leader = {
            let mut queue =
                entry.queue.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if queue.draining && queue.pending.len() >= self.config.quota.max_pending {
                drop(queue);
                let degraded: Vec<Json> = (0..n)
                    .map(|_| {
                        unknown_answer(
                            "admission",
                            "workspace query queue is full; retry later",
                        )
                    })
                    .collect();
                return ok_response(envelope.id, vec![("answers", Json::Arr(degraded))]);
            }
            queue.pending.push(PendingBatch { queries, slot: Arc::clone(&slot) });
            let lead = !queue.draining;
            queue.draining = true;
            lead
        };

        if is_leader {
            self.drain(&entry);
        }

        // The leader's own slot is filled by its first drain round;
        // followers wait for whichever round picks them up. The timeout
        // is a backstop against a crashed leader, not a scheduling
        // mechanism.
        let mut answers =
            slot.answers.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut waited = Duration::ZERO;
        while answers.is_none() {
            if waited >= FOLLOWER_TIMEOUT {
                let degraded: Vec<Json> = (0..n)
                    .map(|_| unknown_answer("admission", "query leader did not respond"))
                    .collect();
                return ok_response(envelope.id, vec![("answers", Json::Arr(degraded))]);
            }
            let step = Duration::from_secs(5);
            let (guard, _) = slot
                .ready
                .wait_timeout(answers, step)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            answers = guard;
            waited += step;
        }
        let answers = answers.take().unwrap_or_default();
        ok_response(envelope.id, vec![("answers", Json::Arr(answers))])
    }

    /// Leader drain loop: repeatedly swap out everything pending and
    /// answer it in one batched reasoning pass, until the queue is
    /// empty. The queue lock and the workspace lock are never held
    /// together.
    fn drain(&self, entry: &WsEntry) {
        let mut ws = entry.ws.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            let batches = {
                let mut queue =
                    entry.queue.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                if queue.pending.is_empty() {
                    queue.draining = false;
                    break;
                }
                std::mem::take(&mut queue.pending)
            };

            // One fresh budget per round: all coalesced batches share
            // it, so a round costs one tenant-quota unit no matter how
            // many clients piled in.
            ws.set_budget(self.config.quota.budget());

            // Resolve names against the now-current schema. Unresolved
            // queries answer immediately; resolved ones join the
            // combined batch.
            let mut combined: Vec<car_core::Query> = Vec::new();
            let mut plans: Vec<BatchPlan> = Vec::with_capacity(batches.len());
            for batch in &batches {
                let plan = batch
                    .queries
                    .iter()
                    .map(|q| {
                        q.resolve(ws.schema()).map(|typed| {
                            let at = combined.len();
                            combined.push(typed);
                            at
                        })
                    })
                    .collect();
                plans.push((plan, Arc::clone(&batch.slot)));
            }

            let results = ws.query_batch_results(&combined);

            for (plan, slot) in plans {
                let answers: Vec<Json> = plan
                    .into_iter()
                    .map(|entry| match entry {
                        Ok(at) => answer_json(&results[at]),
                        Err(name) => unknown_answer(
                            "unknown_class",
                            &format!("unknown class '{name}'"),
                        ),
                    })
                    .collect();
                *slot.answers.lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
                    Some(answers);
                slot.ready.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::protocol::parse_request;

    fn service() -> Service {
        Service::new(ServerConfig::default())
    }

    fn run(svc: &Service, line: &str) -> Json {
        let frame = parse(line).unwrap();
        let (env, req) = parse_request(&frame);
        let response = match req {
            Ok(r) => svc.handle(&env, r),
            Err(e) => crate::protocol::err_response(env.id, &e),
        };
        parse(response.trim_end()).unwrap()
    }

    const SCHEMA: &str = "
        class Person endclass
        class Professor isa Person endclass
        class Student isa Person and not Professor endclass
    ";

    #[test]
    fn open_query_roundtrip() {
        let svc = service();
        let open = run(
            &svc,
            &format!(
                "{{\"op\":\"open\",\"workspace\":\"w\",\"schema\":{}}}",
                crate::json::to_string(&Json::Str(SCHEMA.into()))
            ),
        );
        assert_eq!(open.get("ok"), Some(&Json::Bool(true)));
        let resp = run(
            &svc,
            r#"{"op":"query","workspace":"w","queries":[
                {"kind":"subsumes","sup":"Person","sub":"Student"},
                {"kind":"disjoint","a":"Student","b":"Professor"},
                {"kind":"subsumes","sup":"Student","sub":"Person"},
                {"kind":"satisfiable","class":"Ghost"}]}"#,
        );
        let answers = resp.get("answers").and_then(Json::as_arr).unwrap();
        assert_eq!(answers[0].get("outcome"), Some(&Json::Str("proved".into())));
        assert_eq!(answers[1].get("outcome"), Some(&Json::Str("proved".into())));
        assert_eq!(answers[2].get("outcome"), Some(&Json::Str("disproved".into())));
        assert_eq!(answers[3].get("outcome"), Some(&Json::Str("unknown".into())));
        assert_eq!(answers[3].get("cause"), Some(&Json::Str("unknown_class".into())));
    }

    #[test]
    fn apply_undo_redo_cycle() {
        let svc = service();
        run(
            &svc,
            &format!(
                "{{\"op\":\"open\",\"workspace\":\"w\",\"schema\":{}}}",
                crate::json::to_string(&Json::Str(SCHEMA.into()))
            ),
        );
        let applied = run(
            &svc,
            r#"{"op":"apply","workspace":"w","deltas":[
                {"kind":"add_class","name":"TA"},
                {"kind":"set_isa","class":"TA","isa":[[{"class":"Student"}],[{"class":"Professor"}]]}]}"#,
        );
        assert_eq!(applied.get("applied"), Some(&Json::UInt(2)));
        // TA isa Student and Professor, which are disjoint → unsat.
        let q = r#"{"op":"query","workspace":"w","queries":[{"kind":"satisfiable","class":"TA"}]}"#;
        let resp = run(&svc, q);
        let answers = resp.get("answers").and_then(Json::as_arr).unwrap();
        assert_eq!(answers[0].get("outcome"), Some(&Json::Str("disproved".into())));

        let undo = run(&svc, r#"{"op":"undo","workspace":"w"}"#);
        assert_eq!(undo.get("moved"), Some(&Json::Bool(true)));
        let resp = run(&svc, q);
        let answers = resp.get("answers").and_then(Json::as_arr).unwrap();
        // After undoing the isa edit, TA is unconstrained → satisfiable.
        assert_eq!(answers[0].get("outcome"), Some(&Json::Str("proved".into())));

        let redo = run(&svc, r#"{"op":"redo","workspace":"w"}"#);
        assert_eq!(redo.get("moved"), Some(&Json::Bool(true)));
        let resp = run(&svc, q);
        let answers = resp.get("answers").and_then(Json::as_arr).unwrap();
        assert_eq!(answers[0].get("outcome"), Some(&Json::Str("disproved".into())));
    }

    #[test]
    fn failed_apply_reports_progress_and_preserves_workspace() {
        let svc = service();
        run(
            &svc,
            &format!(
                "{{\"op\":\"open\",\"workspace\":\"w\",\"schema\":{}}}",
                crate::json::to_string(&Json::Str(SCHEMA.into()))
            ),
        );
        let resp = run(
            &svc,
            r#"{"op":"apply","workspace":"w","deltas":[
                {"kind":"add_class","name":"TA"},
                {"kind":"remove_class","name":"Person"}]}"#,
        );
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(resp.get("applied"), Some(&Json::UInt(1)));
        let err = resp.get("error").unwrap();
        assert_eq!(err.get("kind"), Some(&Json::Str("class_referenced".into())));
        // The workspace still answers queries, and TA (delta 1) exists.
        let resp = run(
            &svc,
            r#"{"op":"query","workspace":"w","queries":[{"kind":"satisfiable","class":"TA"}]}"#,
        );
        let answers = resp.get("answers").and_then(Json::as_arr).unwrap();
        assert_eq!(answers[0].get("outcome"), Some(&Json::Str("proved".into())));
    }

    #[test]
    fn tenants_are_isolated() {
        let svc = service();
        run(
            &svc,
            &format!(
                "{{\"op\":\"open\",\"tenant\":\"a\",\"workspace\":\"w\",\"schema\":{}}}",
                crate::json::to_string(&Json::Str(SCHEMA.into()))
            ),
        );
        let resp = run(
            &svc,
            r#"{"op":"query","tenant":"b","workspace":"w","queries":[{"kind":"coherent"}]}"#,
        );
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            resp.get("error").unwrap().get("kind"),
            Some(&Json::Str("unknown_workspace".into()))
        );
        let list_a = run(&svc, r#"{"op":"list","tenant":"a"}"#);
        let list_b = run(&svc, r#"{"op":"list","tenant":"b"}"#);
        assert_eq!(
            list_a.get("workspaces"),
            Some(&Json::Arr(vec![Json::Str("w".into())]))
        );
        assert_eq!(list_b.get("workspaces"), Some(&Json::Arr(Vec::new())));
    }

    #[test]
    fn workspace_quota_is_enforced() {
        let mut config = ServerConfig::default();
        config.quota.max_workspaces = 2;
        let svc = Service::new(config);
        let open = |name: &str| {
            format!(
                "{{\"op\":\"open\",\"workspace\":\"{name}\",\"schema\":{}}}",
                crate::json::to_string(&Json::Str("class A endclass".into()))
            )
        };
        assert_eq!(run(&svc, &open("w1")).get("ok"), Some(&Json::Bool(true)));
        assert_eq!(run(&svc, &open("w2")).get("ok"), Some(&Json::Bool(true)));
        let third = run(&svc, &open("w3"));
        assert_eq!(third.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            third.get("error").unwrap().get("kind"),
            Some(&Json::Str("quota".into()))
        );
        // Replacing an existing workspace is not a new allocation.
        let replace = run(
            &svc,
            &format!(
                "{{\"op\":\"open\",\"workspace\":\"w1\",\"replace\":true,\"schema\":{}}}",
                crate::json::to_string(&Json::Str("class B endclass".into()))
            ),
        );
        assert_eq!(replace.get("ok"), Some(&Json::Bool(true)));
        // Closing frees the slot.
        run(&svc, r#"{"op":"close","workspace":"w2"}"#);
        assert_eq!(run(&svc, &open("w3")).get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn invalid_schema_text_is_a_spanned_error() {
        let svc = service();
        let resp = run(
            &svc,
            r#"{"op":"open","workspace":"w","schema":"class A isa ((((B endclass"}"#,
        );
        assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
        let err = resp.get("error").unwrap();
        assert_eq!(err.get("kind"), Some(&Json::Str("parse".into())));
        assert!(err.get("line").is_some());
        assert!(err.get("col").is_some());
    }

    #[test]
    fn hostile_tenant_and_workspace_names_cannot_escape_the_data_dir() {
        let base = std::env::temp_dir()
            .join(format!("car-service-traversal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).unwrap();
        std::fs::write(base.join("canary.txt"), b"outside the data dir").unwrap();
        let data = base.join("data");
        let config = ServerConfig { data_dir: Some(data.clone()), ..Default::default() };
        let svc = Service::new(config);

        let frame = |op: &str, tenant: &str, ws: &str| {
            format!(
                "{{\"op\":\"{op}\",\"tenant\":{},\"workspace\":{},\"schema\":{}}}",
                crate::json::to_string(&Json::Str(tenant.into())),
                crate::json::to_string(&Json::Str(ws.into())),
                crate::json::to_string(&Json::Str("class A endclass".into()))
            )
        };
        for (tenant, ws) in
            [("..", ".."), (".", "."), ("../../etc", "../x"), ("t", ".."), ("", "")]
        {
            let open = run(&svc, &frame("open", tenant, ws));
            assert_eq!(open.get("ok"), Some(&Json::Bool(true)), "{tenant}/{ws}");
            let close = run(&svc, &frame("close", tenant, ws));
            assert_eq!(close.get("ok"), Some(&Json::Bool(true)), "{tenant}/{ws}");
        }
        // Every artifact stayed under the workspaces root: nothing
        // outside was created, and `close` deleted nothing outside.
        assert!(base.join("canary.txt").exists(), "close() escaped the data dir");
        assert!(data.exists());
        // Snapshots are epoch-named (`snapshot.car` or
        // `snapshot.<epoch>.car`), so check by prefix rather than one
        // fixed name.
        let escaped = std::fs::read_dir(&base).unwrap().flatten().any(|e| {
            e.file_name().to_string_lossy().starts_with("snapshot")
        });
        assert!(!escaped, "open() escaped the data dir");
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn budget_exhaustion_degrades_to_unknown_with_cause() {
        let mut config = ServerConfig::default();
        config.quota.max_steps = Some(1);
        let svc = Service::new(config);
        run(
            &svc,
            &format!(
                "{{\"op\":\"open\",\"workspace\":\"w\",\"schema\":{}}}",
                crate::json::to_string(&Json::Str(SCHEMA.into()))
            ),
        );
        let resp = run(
            &svc,
            r#"{"op":"query","workspace":"w","queries":[{"kind":"coherent"}]}"#,
        );
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        let answers = resp.get("answers").and_then(Json::as_arr).unwrap();
        assert_eq!(answers[0].get("outcome"), Some(&Json::Str("unknown".into())));
        assert_eq!(answers[0].get("cause"), Some(&Json::Str("budget".into())));
        // The workspace is not poisoned: a larger budget would answer.
        // (Here just verify another request still gets a response.)
        let again = run(&svc, r#"{"op":"stats","workspace":"w"}"#);
        assert_eq!(again.get("ok"), Some(&Json::Bool(true)));
    }

    #[test]
    fn stats_report_the_effective_strategy_after_a_query() {
        let svc = service();
        run(
            &svc,
            &format!(
                "{{\"op\":\"open\",\"workspace\":\"w\",\"schema\":{}}}",
                crate::json::to_string(&Json::Str(SCHEMA.into()))
            ),
        );
        // Before any reasoning the workspace has no effective strategy.
        let before = run(&svc, r#"{"op":"stats","workspace":"w"}"#);
        assert_eq!(before.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(before.get("effective_strategy"), None);
        run(
            &svc,
            r#"{"op":"query","workspace":"w","queries":[{"kind":"coherent"}]}"#,
        );
        // Afterwards the stats carry the strategy the engine actually
        // ran, not merely the one that was requested.
        let after = run(&svc, r#"{"op":"stats","workspace":"w"}"#);
        assert_eq!(after.get("ok"), Some(&Json::Bool(true)));
        match after.get("effective_strategy") {
            Some(Json::Str(s)) => assert!(
                ["Naive", "Sat", "Preselect", "ColumnGen", "Auto"].contains(&s.as_str()),
                "unexpected effective strategy {s:?}"
            ),
            other => panic!("missing effective_strategy field: {other:?}"),
        }
    }
}
