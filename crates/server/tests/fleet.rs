//! Multi-process fleet safety: several OS processes sharing one data
//! directory under leases, epoch fencing, and real process death.
//!
//! In-process crash tests cannot model a SIGKILLed leader (destructors
//! still run) or a paused zombie writer (the address space dies with
//! the test). These tests spawn the `fleet_child` helper binary and
//! real `car-server` processes over a shared tempdir and assert the
//! two fleet invariants end to end:
//!
//! * **No acknowledged edit is ever lost** — whatever instant the
//!   leader dies at, a successor recovers every `ACK`ed record.
//! * **No stale writer's record survives replay** — a deposed leader
//!   that resumes writing after a takeover is rejected by epoch
//!   fencing, never silently merged.
//!
//! Dense sweeps beyond the default run are gated behind
//! `CAR_SLOW_TESTS=1`.

mod common;

use car_core::persist::{read_generation, Disk};
use car_core::{
    Acquire, JournalOp, Lease, LeaseWatch, ReasonerConfig, Workspace, WorkspaceLimits,
};
use car_server::json::{parse, Json};
use car_server::protocol::{WireDelta, WireQuery};
use car_server::service::{ServerConfig, StoreMode};
use car_server::{Client, Server};
use common::{apply_frame, open_frame, query_frame, Shadow, SCHEMA};
use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Write};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn scratch(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("car-fleet-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn slow_tests() -> bool {
    std::env::var("CAR_SLOW_TESTS").is_ok_and(|v| v == "1")
}

// ---------------------------------------------------------------------
// fleet_child plumbing
// ---------------------------------------------------------------------

/// Runs the helper binary to completion (or death) and returns its exit
/// status plus every stdout line.
fn run_child(args: &[&str]) -> (std::process::ExitStatus, Vec<String>) {
    let out = Command::new(env!("CARGO_BIN_EXE_fleet_child"))
        .args(args)
        .output()
        .expect("spawn fleet_child");
    let lines =
        String::from_utf8_lossy(&out.stdout).lines().map(str::to_owned).collect();
    (out.status, lines)
}

fn acked(lines: &[String]) -> Vec<String> {
    lines.iter().filter_map(|l| l.strip_prefix("ACK ")).map(str::to_owned).collect()
}

/// Steals the dead child's lease, replays the directory, takes the
/// mandatory fencing snapshot at the new epoch, and re-replays — the
/// full successor path. Returns the recovered class names and the
/// number of fenced (stale-epoch) records the first replay rejected.
fn take_over_and_replay(dir: &Path) -> (BTreeSet<String>, u64) {
    if !dir.exists() {
        // The writer died before even creating the directory; nothing
        // can have been acknowledged.
        return (BTreeSet::new(), 0);
    }
    let disk = Disk::real();
    let mut lease = match Lease::acquire(dir, "fleet-test", &disk).expect("acquire") {
        Acquire::Acquired(l) => l,
        Acquire::Held(info) => panic!("dead child still holds the lease: {info:?}"),
    };
    let Some(rec) = car_core::WorkspaceDir::recover(dir, disk.clone()) else {
        lease.release().expect("release");
        return (BTreeSet::new(), 0);
    };
    let fenced = rec.fenced_records;
    lease.ensure_epoch_above(rec.epoch).expect("dominate recovered epoch");
    let mut wd = rec.dir;
    wd.set_epoch(lease.epoch());
    let mut ws = Workspace::restore(
        rec.schema,
        rec.undo,
        rec.redo,
        ReasonerConfig::default(),
        WorkspaceLimits::default(),
    );
    for op in &rec.ops {
        match op {
            JournalOp::Apply(delta) => {
                ws.apply(delta).expect("recovered op must reapply");
            }
            JournalOp::Undo => {
                ws.undo();
            }
            JournalOp::Redo => {
                ws.redo();
            }
        }
    }
    let names = |ws: &Workspace| -> BTreeSet<String> {
        ws.schema()
            .classes()
            .map(|(id, _)| ws.schema().symbols().class_name(id).to_owned())
            .collect()
    };
    let first = names(&ws);
    // The fencing snapshot both settles the generation seqlock and
    // proves the takeover state is itself durable: a second recovery
    // must see exactly the same classes.
    wd.save_snapshot("fleet", "ws", ws.schema(), ws.undo_stack(), ws.redo_stack())
        .expect("fencing snapshot");
    let gen = read_generation(dir, &disk).expect("generation file exists");
    assert!(gen.is_multiple_of(2), "generation settles even after snapshot: {gen}");
    let again = car_core::WorkspaceDir::recover(dir, disk).expect("recover after snapshot");
    let mut ws2 = Workspace::restore(
        again.schema,
        Vec::new(),
        Vec::new(),
        ReasonerConfig::default(),
        WorkspaceLimits::default(),
    );
    for op in &again.ops {
        if let JournalOp::Apply(delta) = op {
            ws2.apply(delta).expect("op reapplies post-snapshot");
        }
    }
    assert_eq!(first, names(&ws2), "takeover snapshot must be bit-stable");
    lease.release().expect("release");
    (first, fenced)
}

fn assert_superset(recovered: &BTreeSet<String>, acked: &[String], context: &str) {
    for name in acked {
        assert!(
            recovered.contains(name),
            "{context}: acknowledged edit '{name}' lost; recovered = {recovered:?}"
        );
    }
}

// ---------------------------------------------------------------------
// Kill sweeps
// ---------------------------------------------------------------------

/// SIGKILL-the-leader at every filesystem operation of an identical
/// run: each K gets a fresh directory and a writer that aborts at its
/// K-th disk operation (lease claim, recovery read, snapshot write,
/// journal append — every trip point). Whatever K, no `ACK`ed edit may
/// be lost. The sweep ends at the first K past the run's natural
/// operation count (the writer survives to `DONE`).
#[test]
fn kill_sweep_fresh_dir_loses_no_acked_edit() {
    let root = scratch("kill-sweep");
    let mut completed = false;
    for k in 1..=200u64 {
        let dir = root.join(format!("k{k}"));
        let ks = k.to_string();
        let prefix = format!("s{k}_");
        let dirs = dir.to_string_lossy().into_owned();
        let (status, lines) = run_child(&[
            "writer",
            "--dir",
            &dirs,
            "--ops",
            "6",
            "--snapshot-every",
            "2",
            "--kill-after-io",
            &ks,
            "--prefix",
            &prefix,
        ]);
        let acks = acked(&lines);
        let (recovered, fenced) = take_over_and_replay(&dir);
        assert_superset(&recovered, &acks, &format!("kill at io {k}"));
        assert_eq!(fenced, 0, "single-writer run cannot produce stale records");
        // Only classes this run acknowledged-or-attempted may exist.
        for name in &recovered {
            assert!(name.starts_with(&prefix), "foreign class {name} at k={k}");
        }
        if status.success() {
            assert!(lines.iter().any(|l| l == "DONE"), "clean exit prints DONE");
            assert_eq!(acks.len(), 6, "a surviving writer acks every op");
            completed = true;
            break;
        }
    }
    assert!(completed, "sweep never reached the run's natural operation count");
    let _ = std::fs::remove_dir_all(&root);
}

/// Chained crashes on ONE directory: run K aborts at its K-th disk
/// operation, run K+1 must first recover run K's wreckage (possibly
/// dying inside that very recovery). Acknowledged edits accumulate
/// across the whole chain and every one must survive to the end.
fn chained_sweep(rounds: u64, ops: &str, snapshot_every: &str) {
    let dir = scratch(&format!("chain-{rounds}"));
    let dirs = dir.to_string_lossy().into_owned();
    let mut all_acks: Vec<String> = Vec::new();
    for k in 1..=rounds {
        let ks = k.to_string();
        let prefix = format!("k{k}_");
        let (_status, lines) = run_child(&[
            "writer",
            "--dir",
            &dirs,
            "--ops",
            ops,
            "--snapshot-every",
            snapshot_every,
            "--kill-after-io",
            &ks,
            "--prefix",
            &prefix,
        ]);
        all_acks.extend(acked(&lines));
    }
    // A final clean run proves the chain's wreckage is fully usable.
    let (status, lines) =
        run_child(&["writer", "--dir", &dirs, "--ops", "2", "--prefix", "fin_", "--release"]);
    assert!(status.success(), "clean run after the chain must succeed");
    all_acks.extend(acked(&lines));
    let (recovered, _fenced) = take_over_and_replay(&dir);
    assert_superset(&recovered, &all_acks, "after crash chain");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chained_crash_recovery_sweep() {
    chained_sweep(25, "4", "3");
}

#[test]
fn dense_chained_crash_sweep() {
    if !slow_tests() {
        eprintln!("skipped: set CAR_SLOW_TESTS=1 for the dense sweep");
        return;
    }
    chained_sweep(120, "8", "1");
}

// ---------------------------------------------------------------------
// Zombies and fencing
// ---------------------------------------------------------------------

/// The pathological fleet scenario: a leader pauses (GC, SIGSTOP, VM
/// freeze), its lease expires, a successor takes over and fences the
/// directory — then the zombie wakes up and keeps appending at its
/// stale epoch. Every zombie record must be rejected at the next
/// recovery; every pre-pause acknowledged edit and every successor
/// edit must survive.
#[test]
fn zombie_resume_after_takeover_is_fenced() {
    let dir = scratch("zombie");
    let dirs = dir.to_string_lossy().into_owned();
    let mut child = Command::new(env!("CARGO_BIN_EXE_fleet_child"))
        .args(["zombie", "--dir", &dirs, "--pre", "3", "--post", "4", "--prefix", "z_"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn zombie");
    let mut reader = BufReader::new(child.stdout.take().expect("zombie stdout"));
    let mut pre_acks = Vec::new();
    let mut zombie_epoch = 0u64;
    loop {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).expect("read zombie") > 0, "zombie died early");
        let line = line.trim_end();
        if let Some(name) = line.strip_prefix("ACK ") {
            pre_acks.push(name.to_owned());
        } else if let Some(e) = line.strip_prefix("EPOCH ") {
            zombie_epoch = e.parse().expect("epoch number");
        } else if line == "PAUSED" {
            break;
        }
    }
    assert_eq!(pre_acks.len(), 3);

    // The zombie is alive but silent: its claim must be watched to
    // TTL expiry — a live foreign pid never hits the dead-holder fast
    // path.
    let disk = Disk::real();
    let ttl = Duration::from_millis(250);
    let held = match Lease::acquire(&dir, "fleet-test", &disk).expect("acquire") {
        Acquire::Held(info) => info,
        Acquire::Acquired(_) => panic!("paused zombie should still hold the lease"),
    };
    let mut watch = LeaseWatch::new(held);
    let deadline = Instant::now() + Duration::from_secs(30);
    while !watch.expired(&dir, &disk, ttl).expect("watch") {
        assert!(Instant::now() < deadline, "lease never expired");
        std::thread::sleep(Duration::from_millis(20));
    }
    let mut lease =
        match Lease::take_over(&dir, "fleet-test", &disk, watch.info()).expect("take_over") {
            Acquire::Acquired(l) => l,
            Acquire::Held(info) => panic!("takeover refused: {info:?}"),
        };
    assert!(lease.epoch() > zombie_epoch, "takeover epoch must dominate the zombie's");

    // Successor path: recover, fence, snapshot, then write one edit of
    // its own at the new epoch.
    let rec = car_core::WorkspaceDir::recover(&dir, disk.clone()).expect("recover");
    lease.ensure_epoch_above(rec.epoch).expect("dominate");
    let mut wd = rec.dir;
    wd.set_epoch(lease.epoch());
    let mut ws = Workspace::restore(
        rec.schema,
        rec.undo,
        rec.redo,
        ReasonerConfig::default(),
        WorkspaceLimits::default(),
    );
    for op in &rec.ops {
        if let JournalOp::Apply(delta) = op {
            ws.apply(delta).expect("reapply");
        }
    }
    wd.save_snapshot("fleet", "ws", ws.schema(), ws.undo_stack(), ws.redo_stack())
        .expect("fencing snapshot");
    let leader_delta = car_core::SchemaDelta::AddClass { name: "leader_0".into() };
    ws.apply(&leader_delta).expect("leader edit");
    wd.append_op(&JournalOp::Apply(leader_delta)).expect("leader append");

    // Wake the zombie: it appends 4 records at its stale epoch.
    child.stdin.as_mut().expect("zombie stdin").write_all(b"go\n").expect("poke zombie");
    let mut stale = Vec::new();
    loop {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).expect("read zombie") > 0, "zombie died early");
        let line = line.trim_end();
        if let Some(name) = line.strip_prefix("STALE ") {
            stale.push(name.to_owned());
        } else if line == "ZDONE" {
            break;
        }
    }
    assert!(child.wait().expect("reap zombie").success());
    assert_eq!(stale.len(), 4, "zombie wrote its stale records");
    drop(lease);

    // Recovery must keep every acknowledged and successor edit and
    // reject every zombie record by epoch.
    let (recovered, fenced) = take_over_and_replay(&dir);
    assert_superset(&recovered, &pre_acks, "zombie pre-pause acks");
    assert!(recovered.contains("leader_0"), "successor edit lost: {recovered:?}");
    assert_eq!(fenced, 4, "each stale append is fenced exactly once");
    for name in &stale {
        assert!(!recovered.contains(name), "stale record '{name}' leaked into the schema");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Graceful handoff versus power cut: `--release` (the `shutdown()`
/// path) removes the lease file so a successor claims instantly with
/// no takeover; a plain exit (the `stop()` path) leaves the claim on
/// disk as a dead holder to be stolen.
#[test]
fn graceful_release_removes_lease_power_cut_leaves_it() {
    let dir = scratch("handoff");
    let dirs = dir.to_string_lossy().into_owned();

    let (status, lines) =
        run_child(&["writer", "--dir", &dirs, "--ops", "2", "--prefix", "a_", "--release"]);
    assert!(status.success());
    assert_eq!(acked(&lines).len(), 2);
    assert!(!dir.join("lease.lock").exists(), "graceful exit must release the lease");

    let (status, lines) =
        run_child(&["writer", "--dir", &dirs, "--ops", "2", "--prefix", "b_"]);
    assert!(status.success());
    assert_eq!(acked(&lines).len(), 2);
    assert!(dir.join("lease.lock").exists(), "power cut must leave the claim on disk");

    // The dead pid is stolen on the spot — no TTL wait.
    let start = Instant::now();
    let (recovered, _) = take_over_and_replay(&dir);
    assert!(start.elapsed() < Duration::from_secs(5), "dead-holder steal must be instant");
    assert_superset(&recovered, &["a_0".into(), "a_1".into(), "b_0".into(), "b_1".into()], "handoff");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Real car-server processes: followers and takeover
// ---------------------------------------------------------------------

/// A spawned `car-server` process that is killed on drop.
struct ServerProc {
    child: Child,
    addr: SocketAddr,
}

impl ServerProc {
    fn spawn(extra: &[&str]) -> ServerProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_car-server"))
            .args(["--addr", "127.0.0.1:0"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn car-server");
        let mut reader = BufReader::new(child.stdout.take().expect("server stdout"));
        let addr = loop {
            let mut line = String::new();
            assert!(
                reader.read_line(&mut line).expect("read server") > 0,
                "car-server exited before listening"
            );
            if let Some((_, addr)) = line.trim_end().rsplit_once("listening on ") {
                break addr.parse().expect("listen address");
            }
        };
        ServerProc { child, addr }
    }

    fn client(&self) -> Client {
        Client::connect(self.addr).expect("connect")
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn ok(resp: &str) -> Json {
    let v = parse(resp.trim_end()).expect("valid JSON");
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "expected ok: {resp}");
    v
}

fn err_kind(resp: &str) -> String {
    let v = parse(resp.trim_end()).expect("valid JSON");
    assert_eq!(v.get("ok"), Some(&Json::Bool(false)), "expected error: {resp}");
    v.get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
        .expect("error has a kind")
        .to_owned()
}

fn deltas() -> Vec<WireDelta> {
    vec![
        WireDelta::AddClass { name: "TA".into() },
        WireDelta::SetIsa {
            class: "TA".into(),
            isa: vec![vec![("Student".into(), false)]],
        },
    ]
}

fn queries() -> Vec<WireQuery> {
    vec![
        WireQuery::Coherent,
        WireQuery::Satisfiable("TA".into()),
        WireQuery::Subsumes { sup: "Person".into(), sub: "TA".into() },
        WireQuery::Disjoint("TA".into(), "Professor".into()),
        WireQuery::Equivalent("Student".into(), "Student".into()),
    ]
}

/// Leader and follower processes over one data dir: the follower must
/// answer bit-identically, reject every edit with `read_only`, track
/// the leader's later edits by freshness fingerprint, and a fresh
/// leader replacing a SIGKILLed one must still agree.
#[test]
fn follower_process_is_bit_identical_and_read_only() {
    let data = scratch("follower-e2e");
    let datas = data.to_string_lossy().into_owned();
    let leader = ServerProc::spawn(&["--data-dir", &datas, "--lease-ttl-ms", "1000"]);
    let mut lc = leader.client();
    ok(&lc.roundtrip(&open_frame("w", 1, SCHEMA)).unwrap());
    ok(&lc.roundtrip(&apply_frame("w", 2, &deltas())).unwrap());
    let lead = ok(&lc.roundtrip(&query_frame("w", 3, &queries())).unwrap());
    let lead_answers = lead.get("answers").expect("answers").clone();
    let mut shadow = Shadow::new(SCHEMA);
    assert_eq!(shadow.apply(&deltas()), 2);
    assert_eq!(
        lead_answers,
        Json::Arr(shadow.query(&queries())),
        "leader must match the in-process ground truth"
    );

    let follower = ServerProc::spawn(&[
        "--data-dir",
        &datas,
        "--store-mode",
        "follower",
        "--lease-ttl-ms",
        "1000",
    ]);
    let mut fc = follower.client();
    let fol = ok(&fc.roundtrip(&query_frame("w", 3, &queries())).unwrap());
    assert_eq!(
        fol.get("answers"),
        Some(&lead_answers),
        "follower must answer bit-identically to the leader"
    );

    // Every edit path is refused, and health reports the follower role.
    let apply = fc.roundtrip(&apply_frame("w", 4, &deltas())).unwrap();
    assert_eq!(err_kind(&apply), "read_only");
    let open = fc.roundtrip(&open_frame("w2", 5, SCHEMA)).unwrap();
    assert_eq!(err_kind(&open), "read_only");
    let health = ok(&fc.roundtrip(r#"{"id":6,"op":"health"}"#).unwrap());
    assert_eq!(health.get("role").and_then(Json::as_str), Some("follower"));
    match health.get("read_only_rejections") {
        Some(&Json::UInt(n)) => assert!(n >= 2, "rejections counted: {n}"),
        other => panic!("read_only_rejections missing: {other:?}"),
    }

    // The follower notices later leader edits via the freshness
    // fingerprint — no restart, no snapshot needed.
    ok(&lc.roundtrip(&apply_frame("w", 7, &[WireDelta::AddClass { name: "Late".into() }]))
        .unwrap());
    let late_q = vec![WireQuery::Satisfiable("Late".into())];
    let lead_late = ok(&lc.roundtrip(&query_frame("w", 8, &late_q)).unwrap());
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let fol_late = ok(&fc.roundtrip(&query_frame("w", 8, &late_q)).unwrap());
        if fol_late.get("answers") == lead_late.get("answers") {
            break;
        }
        assert!(Instant::now() < deadline, "follower never caught up: {fol_late:?}");
        std::thread::sleep(Duration::from_millis(25));
    }

    // SIGKILL the leader; a fresh leader over the same dir must agree
    // with the follower and the original bit for bit.
    drop(lc);
    drop(leader);
    let fresh = ServerProc::spawn(&["--data-dir", &datas, "--lease-ttl-ms", "1000"]);
    let mut nc = fresh.client();
    let fresh_ans = ok(&nc.roundtrip(&query_frame("w", 3, &queries())).unwrap());
    assert_eq!(
        fresh_ans.get("answers"),
        Some(&lead_answers),
        "fresh leader after SIGKILL must answer bit-identically"
    );
    let health = ok(&nc.roundtrip(r#"{"id":9,"op":"health"}"#).unwrap());
    assert_eq!(health.get("role").and_then(Json::as_str), Some("leader"));
    let _ = std::fs::remove_dir_all(&data);
}

// ---------------------------------------------------------------------
// In-process keeper takeover
// ---------------------------------------------------------------------

fn fleet_server(data_dir: &Path, ttl: Duration) -> Server {
    let mut config = ServerConfig::default();
    config.quota.deadline = None;
    config.quota.max_items = None;
    config.data_dir = Some(data_dir.to_owned());
    config.lease_ttl = ttl;
    config.store_mode = StoreMode::Leader;
    Server::spawn("127.0.0.1:0", config).expect("bind ephemeral port")
}

/// Two leader servers over one dir: the second cannot touch the
/// workspace while the first lives (lease held), but its keeper adopts
/// the workspace within a TTL of the first's power cut — no restart.
#[test]
fn keeper_adopts_workspaces_from_a_dead_leader() {
    let data = scratch("keeper-takeover");
    let ttl = Duration::from_millis(200);

    let mut first = fleet_server(&data, ttl);
    let mut c1 = Client::connect(first.addr()).expect("connect first");
    ok(&c1.roundtrip(&open_frame("w", 1, SCHEMA)).unwrap());
    ok(&c1.roundtrip(&apply_frame("w", 2, &deltas())).unwrap());
    let before = ok(&c1.roundtrip(&query_frame("w", 3, &queries())).unwrap());
    let before = before.get("answers").expect("answers").clone();

    let second = fleet_server(&data, ttl);
    assert_eq!(
        second.service().recovery_report().dirs_lease_held,
        1,
        "the live leader's claim must be respected"
    );

    // Power cut (not graceful): the lease file stays on disk; only the
    // keeper's sweep may reclaim it.
    first.stop();
    drop(c1);
    drop(first);

    let deadline = Instant::now() + Duration::from_secs(15);
    while second.service().leases_taken_over() == 0 {
        assert!(Instant::now() < deadline, "keeper never adopted the workspace");
        std::thread::sleep(Duration::from_millis(25));
    }

    let mut c2 = Client::connect(second.addr()).expect("connect second");
    let after = ok(&c2.roundtrip(&query_frame("w", 3, &queries())).unwrap());
    assert_eq!(after.get("answers"), Some(&before), "adopted workspace answers identically");
    // The adopter owns the lease now: edits flow without reopening.
    ok(&c2.roundtrip(&apply_frame("w", 4, &[WireDelta::AddClass { name: "PostTakeover".into() }]))
        .unwrap());
    let health = ok(&c2.roundtrip(r#"{"id":5,"op":"health"}"#).unwrap());
    assert_eq!(health.get("role").and_then(Json::as_str), Some("leader"));
    let ws_list =
        health.get("workspaces").and_then(Json::as_arr).expect("workspaces array");
    let epoch = ws_list[0].get("lease_epoch").and_then(Json::as_u64).expect("lease_epoch");
    assert!(epoch >= 2, "takeover epoch dominates the first leader's: {epoch}");
    let _ = std::fs::remove_dir_all(&data);
}
