//! Protocol fuzz: seeded random mixes of valid traffic, malformed
//! JSON, truncated lines and oversized frames, from 1, 4 and 16
//! concurrent connections. Invariants:
//!
//! * every frame gets exactly one response, in order, and it is valid
//!   JSON with an `ok` field — the server never panics, never hangs,
//!   never closes a connection over bad input;
//! * corrupt frames never change workspace state;
//! * every valid operation's result is bit-identical to replaying the
//!   same operations on a direct in-process [`car_core::Workspace`].

mod common;

use car_server::json::{parse, Json};
use car_server::service::{NetMode, ServerConfig};
use car_server::{Client, Server};
use common::{apply_frame, net_modes, open_frame, query_frame, spawn_mode, Shadow, SCHEMA};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Frame cap for the fuzz server: small enough that oversize attempts
/// are cheap, large enough for every legitimate generated frame.
const FRAME_CAP: usize = 4096;

fn fuzz_server(mode: NetMode) -> Server {
    let mut config = ServerConfig::default();
    config.quota.deadline = None;
    config.quota.max_items = None;
    config.max_frame_bytes = FRAME_CAP;
    spawn_mode(config, mode)
}

/// A corrupt frame and the error kind it must provoke.
fn corrupt_frame(rng: &mut SmallRng) -> (Vec<u8>, &'static str) {
    match rng.gen_range(0u32..5) {
        0 => {
            // Truncate a valid frame at a random interior byte.
            let full = format!(r#"{{"op":"ping","id":{}}}"#, rng.gen_range(0u64..1000));
            let cut = rng.gen_range(1..full.len() - 1);
            (full.as_bytes()[..cut].to_vec(), "bad_json")
        }
        1 => {
            // Printable garbage that is not JSON.
            let len = rng.gen_range(1usize..40);
            let garbage: Vec<u8> =
                std::iter::once(b'x').chain((1..len).map(|_| rng.gen_range(b'a'..=b'z'))).collect();
            (garbage, "bad_json")
        }
        2 => {
            // Invalid UTF-8.
            (vec![0xff, 0xfe, b'{', b'}'], "bad_json")
        }
        3 => {
            // Oversized frame.
            let mut frame = b"{\"op\":\"ping\",\"pad\":\"".to_vec();
            frame.extend(std::iter::repeat_n(b'x', FRAME_CAP + rng.gen_range(1usize..100)));
            frame.extend(b"\"}");
            (frame, "frame_too_large")
        }
        _ => {
            // Valid JSON, invalid shape.
            let shapes: [&[u8]; 4] = [
                b"[1,2,3]",
                b"{\"op\":\"query\",\"workspace\":\"w\"}",
                b"{\"op\":\"apply\",\"workspace\":\"w\",\"deltas\":[{\"kind\":\"warp\"}]}",
                b"{\"op\":42}",
            ];
            (shapes[rng.gen_range(0..shapes.len())].to_vec(), "bad_request")
        }
    }
}

fn response_json(line: &str) -> Json {
    parse(line.trim_end()).expect("every response line is valid JSON")
}

/// One connection's fuzz session: deterministic per seed, with its own
/// tenant so concurrent sessions cannot interact.
fn fuzz_session(addr: std::net::SocketAddr, seed: u64, iterations: u32) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let tenant = format!("t{seed}");
    let with_tenant = |frame: &str| {
        // Splice the tenant into the frame's top-level object.
        format!("{{\"tenant\":\"{tenant}\",{}", &frame[1..])
    };
    let mut client = Client::connect(addr).unwrap();
    let resp = client.roundtrip(&with_tenant(&open_frame("w", 0, SCHEMA))).unwrap();
    assert_eq!(response_json(&resp).get("ok"), Some(&Json::Bool(true)));
    let mut shadow = Shadow::new(SCHEMA);

    for i in 0..iterations {
        match rng.gen_range(0u32..10) {
            // Corrupt input: exactly one error response, state intact.
            0..=3 => {
                let (mut frame, want_kind) = corrupt_frame(&mut rng);
                frame.push(b'\n');
                client.send_raw(&frame).unwrap();
                let resp = response_json(&client.read_response().unwrap());
                assert_eq!(resp.get("ok"), Some(&Json::Bool(false)), "iteration {i}");
                let kind = resp
                    .get("error")
                    .and_then(|e| e.get("kind"))
                    .and_then(Json::as_str)
                    .expect("error frame has a kind");
                assert_eq!(kind, want_kind, "iteration {i}");
            }
            // Valid edits, mirrored in the shadow.
            4 | 5 => {
                let deltas = fuzz_deltas(&mut rng);
                let resp = client.roundtrip(&with_tenant(&apply_frame("w", u64::from(i), &deltas))).unwrap();
                let v = response_json(&resp);
                let applied = v.get("applied").and_then(Json::as_u64).unwrap();
                assert_eq!(applied, shadow.apply(&deltas), "iteration {i}");
            }
            6 => {
                let resp = client
                    .roundtrip(&with_tenant(&format!(r#"{{"op":"undo","workspace":"w","id":{i}}}"#)))
                    .unwrap();
                assert_eq!(
                    response_json(&resp).get("moved"),
                    Some(&Json::Bool(shadow.undo())),
                    "iteration {i}"
                );
            }
            // Pipelined interleaving: a burst of frames written before
            // any response is read; responses must come back 1:1 in
            // order, with corrupt frames answered in sequence too.
            7 => {
                let burst = rng.gen_range(2usize..5);
                let mut expected: Vec<Option<Vec<Json>>> = Vec::new();
                for b in 0..burst {
                    if rng.gen_bool(0.3) {
                        let (mut frame, _) = corrupt_frame(&mut rng);
                        frame.push(b'\n');
                        client.send_raw(&frame).unwrap();
                        expected.push(None);
                    } else {
                        let queries = fuzz_queries(&mut rng);
                        client
                            .send(&with_tenant(&query_frame(
                                "w",
                                u64::from(i) * 10 + b as u64,
                                &queries,
                            )))
                            .unwrap();
                        expected.push(Some(shadow.query(&queries)));
                    }
                }
                for (b, want) in expected.into_iter().enumerate() {
                    let resp = response_json(&client.read_response().unwrap());
                    match want {
                        None => {
                            assert_eq!(
                                resp.get("ok"),
                                Some(&Json::Bool(false)),
                                "iteration {i} burst {b}"
                            );
                        }
                        Some(answers) => {
                            assert_eq!(
                                resp.get("id").and_then(Json::as_u64),
                                Some(u64::from(i) * 10 + b as u64),
                                "iteration {i} burst {b}: responses out of order"
                            );
                            let got = resp.get("answers").and_then(Json::as_arr).unwrap();
                            assert_eq!(got, &answers[..], "iteration {i} burst {b}");
                        }
                    }
                }
            }
            // Plain queries.
            _ => {
                let queries = fuzz_queries(&mut rng);
                let resp =
                    client.roundtrip(&with_tenant(&query_frame("w", u64::from(i), &queries))).unwrap();
                let v = response_json(&resp);
                let got = v.get("answers").and_then(Json::as_arr).unwrap();
                assert_eq!(got, &shadow.query(&queries)[..], "iteration {i}");
            }
        }
    }
    let resp = client.roundtrip(r#"{"op":"ping","id":424242}"#).unwrap();
    assert_eq!(response_json(&resp).get("id"), Some(&Json::UInt(424242)));
}

fn fuzz_deltas(rng: &mut SmallRng) -> Vec<car_server::protocol::WireDelta> {
    use car_server::protocol::WireDelta;
    let pool = ["Person", "Professor", "Student", "Course", "X0", "X1", "Nope"];
    let name = |rng: &mut SmallRng| pool[rng.gen_range(0..pool.len())].to_owned();
    (0..rng.gen_range(1usize..3))
        .map(|_| match rng.gen_range(0u32..4) {
            0 => WireDelta::AddClass { name: format!("X{}", rng.gen_range(0u32..2)) },
            1 => WireDelta::RemoveClass { name: name(rng) },
            _ => WireDelta::SetIsa {
                class: name(rng),
                isa: (0..rng.gen_range(0usize..2))
                    .map(|_| vec![(name(rng), rng.gen_bool(0.3))])
                    .collect(),
            },
        })
        .collect()
}

fn fuzz_queries(rng: &mut SmallRng) -> Vec<car_server::protocol::WireQuery> {
    use car_server::protocol::WireQuery;
    let pool = ["Person", "Professor", "Student", "Course", "X0", "X1", "Nope"];
    let name = |rng: &mut SmallRng| pool[rng.gen_range(0..pool.len())].to_owned();
    (0..rng.gen_range(1usize..4))
        .map(|_| match rng.gen_range(0u32..4) {
            0 => WireQuery::Coherent,
            1 => WireQuery::Subsumes { sup: name(rng), sub: name(rng) },
            2 => WireQuery::Disjoint(name(rng), name(rng)),
            _ => WireQuery::Satisfiable(name(rng)),
        })
        .collect()
}

fn run_fuzz(connections: u64, iterations: u32) {
    for mode in net_modes() {
        let mut server = fuzz_server(mode);
        let addr = server.addr();
        std::thread::scope(|scope| {
            for c in 0..connections {
                scope.spawn(move || fuzz_session(addr, c, iterations));
            }
        });
        server.stop();
    }
}

#[test]
fn fuzz_single_connection() {
    run_fuzz(1, 60);
}

#[test]
fn fuzz_four_connections() {
    run_fuzz(4, 30);
}

#[test]
fn fuzz_sixteen_connections() {
    run_fuzz(16, 15);
}

/// A client that dies mid-frame (no trailing newline): the final
/// partial line is processed as a frame and answered before the server
/// sees EOF.
#[test]
fn truncated_final_line_is_still_answered() {
    for mode in net_modes() {
        let mut server = fuzz_server(mode);
        let mut client = Client::connect(server.addr()).unwrap();
        client.send_raw(br#"{"op":"ping","id":5}"#).unwrap();
        client.shutdown_write();
        let rest = client.drain();
        let v = response_json(&rest);
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{mode:?}");
        assert_eq!(v.get("id"), Some(&Json::UInt(5)), "{mode:?}");
        server.stop();
    }
}

/// Abruptly dropped connections (mid-burst) must not wedge the server.
#[test]
fn dropped_connections_leave_the_server_healthy() {
    for mode in net_modes() {
        let mut server = fuzz_server(mode);
        for seed in 0..8u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut client = Client::connect(server.addr()).unwrap();
            let _ = client.send(&open_frame("w", 0, SCHEMA));
            for i in 0..rng.gen_range(1u64..5) {
                let _ = client.send(&query_frame("w", i, &fuzz_queries(&mut rng)));
            }
            drop(client); // vanish without reading responses
        }
        let mut client = Client::connect(server.addr()).unwrap();
        let resp = client.roundtrip(r#"{"op":"ping"}"#).unwrap();
        assert_eq!(response_json(&resp).get("ok"), Some(&Json::Bool(true)), "{mode:?}");
        server.stop();
    }
}
