//! Reactor-mode regression suite — and the cross-mode contract tests.
//!
//! Every protocol-visible behavior here runs through **both**
//! `--net-mode`s (on Linux; threads only elsewhere): slowloris
//! byte-at-a-time delivery, oversized-frame resync, partial final
//! frames, pipelining order, graceful and remote shutdown. On top of
//! that, the mode-specific bounded-everything guarantees: the reactor
//! disconnects a non-reading client once its output buffer hits the
//! cap (instead of buffering without bound), the threads runtime
//! disconnects a stalled client after `write_timeout` (instead of
//! wedging its thread forever in a blocking `write_all`), and the
//! reactor's thread count stays O(workers) while hundreds of idle
//! connections are parked.

mod common;

use common::{net_modes, open_frame, query_frame, spawn_mode, Shadow, SCHEMA};
use car_server::protocol::WireQuery;
use car_server::service::{NetMode, ServerConfig};
use car_server::{Client, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

fn ok(response: &str) -> bool {
    response.contains("\"ok\":true")
}

/// Opens the fixture schema and returns the (verified) response.
fn open_fixture(client: &mut Client) {
    let response = client.roundtrip(&open_frame("w", 1, SCHEMA)).expect("open");
    assert!(ok(&response), "open failed: {response}");
}

#[test]
fn ping_pipelining_preserves_response_order_in_both_modes() {
    for mode in net_modes() {
        let mut server = spawn_mode(ServerConfig::default(), mode);
        let mut client = Client::connect(server.addr()).unwrap();
        for id in 0..32 {
            client.send(&format!("{{\"id\":{id},\"op\":\"ping\"}}")).unwrap();
        }
        for id in 0..32 {
            let response = client.read_response().unwrap();
            assert!(
                response.contains(&format!("\"id\":{id},")),
                "{mode:?}: out-of-order response {response}"
            );
        }
        server.stop();
    }
}

#[test]
fn slowloris_byte_at_a_time_frames_still_answer_in_both_modes() {
    for mode in net_modes() {
        let mut server = spawn_mode(ServerConfig::default(), mode);
        let mut slow = Client::connect(server.addr()).unwrap();
        // Three pipelined frames dripped one byte at a time.
        let frames = b"{\"id\":1,\"op\":\"ping\"}\n{\"id\":2,\"op\":\"ping\"}\n{\"id\":3,\"op\":\"ping\"}\n";
        for chunk in frames.chunks(1) {
            slow.send_raw(chunk).unwrap();
            // A concurrent fast client stays fully responsive while the
            // slowloris drips (the event loop must not block on the
            // slow connection).
            if chunk == b"}" {
                let mut fast = Client::connect(server.addr()).unwrap();
                let response = fast.roundtrip("{\"op\":\"ping\"}").unwrap();
                assert!(ok(&response), "{mode:?}: fast client starved: {response}");
            }
        }
        for id in 1..=3 {
            let response = slow.read_response().unwrap();
            assert!(
                response.contains(&format!("\"id\":{id},")) && ok(&response),
                "{mode:?}: slowloris frame {id} got {response}"
            );
        }
        server.stop();
    }
}

#[test]
fn oversized_frames_resync_at_the_newline_in_both_modes() {
    for mode in net_modes() {
        let mut config = ServerConfig::default();
        config.max_frame_bytes = 256;
        let mut server = spawn_mode(config, mode);
        let mut client = Client::connect(server.addr()).unwrap();
        client.send_raw(&[b"x".repeat(4096).as_slice(), b"\n"].concat()).unwrap();
        let response = client.read_response().unwrap();
        assert!(
            response.contains("frame_too_large"),
            "{mode:?}: expected frame_too_large, got {response}"
        );
        // The connection survived and the next frame parses cleanly.
        let response = client.roundtrip("{\"id\":9,\"op\":\"ping\"}").unwrap();
        assert!(ok(&response) && response.contains("\"id\":9,"), "{mode:?}: {response}");
        let counters = server.service().net_counters();
        assert_eq!(counters.frames_oversized.load(Ordering::Relaxed), 1, "{mode:?}");
        server.stop();
    }
}

#[test]
fn partial_final_frames_and_blank_lines_in_both_modes() {
    for mode in net_modes() {
        let mut server = spawn_mode(ServerConfig::default(), mode);
        let mut client = Client::connect(server.addr()).unwrap();
        // Blank and whitespace-only lines produce no response.
        client.send_raw(b"\n   \n\t\n").unwrap();
        // An unterminated final frame still gets answered after EOF.
        client.send_raw(b"{\"id\":7,\"op\":\"ping\"}").unwrap();
        client.shutdown_write();
        let rest = client.drain();
        assert!(
            rest.contains("\"id\":7,") && ok(&rest),
            "{mode:?}: partial final frame got {rest:?}"
        );
        assert_eq!(rest.matches('\n').count(), 1, "{mode:?}: blank lines answered");
        server.stop();
    }
}

#[test]
fn query_answers_match_the_shadow_in_both_modes() {
    let queries = vec![
        WireQuery::Satisfiable("Student".into()),
        WireQuery::Subsumes { sup: "Person".into(), sub: "Professor".into() },
        WireQuery::Disjoint("Student".into(), "Professor".into()),
        WireQuery::Satisfiable("Nope".into()),
        WireQuery::Coherent,
    ];
    let mut shadow = Shadow::new(SCHEMA);
    let expected = shadow.query(&queries);
    let mut per_mode = Vec::new();
    for mode in net_modes() {
        let mut server = spawn_mode(ServerConfig::default(), mode);
        let mut client = Client::connect(server.addr()).unwrap();
        open_fixture(&mut client);
        let response = client.roundtrip(&query_frame("w", 2, &queries)).unwrap();
        for answer in &expected {
            let rendered = car_server::json::to_string(answer);
            assert!(
                response.contains(&rendered),
                "{mode:?}: answer {rendered} missing from {response}"
            );
        }
        per_mode.push(response);
        server.stop();
    }
    // Bit-identical across modes, not merely both correct.
    for window in per_mode.windows(2) {
        assert_eq!(window[0], window[1]);
    }
}

#[test]
fn graceful_shutdown_answers_inflight_then_eofs_in_both_modes() {
    for mode in net_modes() {
        let mut server = spawn_mode(ServerConfig::default(), mode);
        let mut client = Client::connect(server.addr()).unwrap();
        open_fixture(&mut client);
        client.send(&query_frame("w", 3, &[WireQuery::Coherent])).unwrap();
        // Let the frame reach the server before the drain begins (the
        // drain half-closes reads; bytes still on the wire would be a
        // client bug, not a lost in-flight request).
        std::thread::sleep(Duration::from_millis(100));
        let snapshots = server.shutdown();
        assert_eq!(snapshots, 0); // memory-only server writes nothing
        let rest = client.drain();
        assert!(
            rest.contains("\"id\":3,") && ok(&rest),
            "{mode:?}: in-flight query lost in shutdown: {rest:?}"
        );
    }
}

#[test]
fn remote_shutdown_drains_identically_in_both_modes() {
    for mode in net_modes() {
        let mut config = ServerConfig::default();
        config.allow_remote_shutdown = true;
        let mut server = spawn_mode(config, mode);
        let addr = server.addr();
        let client_thread = std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            let response = client.roundtrip("{\"id\":1,\"op\":\"shutdown\"}").unwrap();
            assert!(response.contains("\"shutting_down\":true"), "{response}");
            // After the drain the server closes the connection.
            assert_eq!(client.drain(), "");
        });
        let snapshots = server.serve_until_shutdown();
        assert_eq!(snapshots, 0);
        client_thread.join().unwrap();
    }
}

#[test]
fn stop_is_prompt_without_a_self_connection_in_both_modes() {
    for mode in net_modes() {
        let mut server = spawn_mode(ServerConfig::default(), mode);
        // The old implementation unblocked accept by dialing itself; the
        // eventfd wakeup must not fabricate connections.
        let started = std::time::Instant::now();
        server.stop();
        assert!(started.elapsed() < Duration::from_secs(2), "{mode:?}: slow stop");
        let counters = server.service().net_counters();
        assert_eq!(counters.conns_accepted.load(Ordering::Relaxed), 0, "{mode:?}");
    }
}

/// Builds one query frame whose response is large (many unknown-class
/// answers), for filling kernel buffers deterministically.
fn bulky_frame(id: u64, queries: usize) -> String {
    let queries: Vec<WireQuery> =
        (0..queries).map(|i| WireQuery::Satisfiable(format!("Missing{i}"))).collect();
    query_frame("w", id, &queries)
}

#[cfg(target_os = "linux")]
#[test]
fn reactor_backpressure_disconnects_a_nonreading_client() {
    let mut config = ServerConfig::default();
    config.net_mode = NetMode::Reactor;
    config.max_write_buffer_bytes = 64 * 1024;
    let mut server = Server::spawn("127.0.0.1:0", config).expect("server binds");
    let mut client = Client::connect(server.addr()).unwrap();
    open_fixture(&mut client);
    // Pipeline responses far past the write-buffer cap without reading.
    // Each response is ~1MB, so the kernel's socket buffers saturate
    // after a handful and the rest must land in the reactor's
    // userspace buffer — which is capped at 64KB here.
    for id in 0..64 {
        if client.send(&bulky_frame(100 + id, 10_000)).is_err() {
            break; // server already dropped us
        }
    }
    // The server must disconnect rather than buffer without bound.
    let counters = Arc::clone(server.service().net_counters());
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while counters.write_buffer_disconnects.load(Ordering::Relaxed) == 0
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(counters.write_buffer_disconnects.load(Ordering::Relaxed), 1);
    assert!(counters.backpressure_stalls.load(Ordering::Relaxed) >= 1);
    // The server stays healthy for other clients.
    let mut fresh = Client::connect(server.addr()).unwrap();
    let response = fresh.roundtrip("{\"op\":\"ping\"}").unwrap();
    assert!(ok(&response), "{response}");
    server.stop();
}

#[test]
fn threads_write_timeout_disconnects_a_stalled_client() {
    let mut config = ServerConfig::default();
    config.net_mode = NetMode::Threads;
    config.write_timeout = Some(Duration::from_millis(250));
    let mut server = Server::spawn("127.0.0.1:0", config).expect("server binds");
    let mut client = Client::connect(server.addr()).unwrap();
    open_fixture(&mut client);
    // Stall the connection: pipeline large responses and never read.
    // The client's own writes are bounded by a timeout too, because
    // once the server thread blocks in its response write, the
    // client->server direction fills up as well.
    client.stream().set_write_timeout(Some(Duration::from_millis(200))).unwrap();
    let frame = bulky_frame(7, 2000);
    for _ in 0..64 {
        if client.send(&frame).is_err() {
            break; // both directions are full — the server is stalled
        }
    }
    let counters = Arc::clone(server.service().net_counters());
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while counters.write_timeout_disconnects.load(Ordering::Relaxed) == 0
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        counters.write_timeout_disconnects.load(Ordering::Relaxed),
        1,
        "stalled client did not get disconnected"
    );
    // The wedged thread is gone and the server still serves.
    let mut fresh = Client::connect(server.addr()).unwrap();
    let response = fresh.roundtrip("{\"op\":\"ping\"}").unwrap();
    assert!(ok(&response), "{response}");
    server.stop();
}

#[cfg(target_os = "linux")]
#[test]
fn reactor_thread_count_is_o_workers_not_o_connections() {
    fn thread_count() -> u64 {
        let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
        status
            .lines()
            .find_map(|l| l.strip_prefix("Threads:"))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0)
    }
    let mut config = ServerConfig::default();
    config.net_mode = NetMode::Reactor;
    let mut server = Server::spawn("127.0.0.1:0", config).expect("server binds");
    let baseline = thread_count();
    let mut idle = Vec::new();
    for _ in 0..400 {
        idle.push(TcpStream::connect(server.addr()).unwrap());
    }
    // Wait until the reactor has registered them all.
    let counters = Arc::clone(server.service().net_counters());
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while counters.conns_open.load(Ordering::Relaxed) < 400
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(counters.conns_open.load(Ordering::Relaxed), 400);
    let with_conns = thread_count();
    assert!(
        with_conns <= baseline + 4,
        "400 idle connections grew threads from {baseline} to {with_conns}"
    );
    // They all still work.
    let mut one = idle.pop().unwrap();
    one.write_all(b"{\"id\":42,\"op\":\"ping\"}\n").unwrap();
    let mut buf = [0u8; 256];
    let n = one.read(&mut buf).unwrap();
    assert!(String::from_utf8_lossy(&buf[..n]).contains("\"id\":42,"));
    drop(idle);
    server.stop();
}
