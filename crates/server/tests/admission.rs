//! Admission control under load: when a drain is in progress and the
//! pending queue is full, new queries degrade immediately to `unknown`
//! answers with cause `"admission"` — they are never queued
//! unboundedly — and the workspace recovers to normal answers as soon
//! as the pressure stops.

mod common;

use car_server::json::{parse, Json};
use car_server::service::{NetMode, ServerConfig};
use car_server::Client;
use common::{net_modes, spawn_mode};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A pigeonhole schema in the surface DSL: `holes + 1` pigeon rows over
/// `holes` columns per block. Coherence checking is refutation-heavy,
/// so each uncached query keeps the workspace lock busy for a while.
fn php_schema(blocks: usize, holes: usize) -> String {
    let mut out = String::new();
    for c in 0..blocks {
        let _ = write!(out, "class R{c} isa ");
        for i in 0..=holes {
            if i > 0 {
                out.push_str(" and ");
            }
            out.push('(');
            for j in 0..holes {
                if j > 0 {
                    out.push_str(" or ");
                }
                let _ = write!(out, "H{c}_{i}_{j}");
            }
            out.push(')');
        }
        out.push_str(" endclass\n");
        for i in 0..=holes {
            for j in 0..holes {
                let _ = write!(out, "class H{c}_{i}_{j} isa R{c}");
                for k in 0..=holes {
                    if k != i {
                        let _ = write!(out, " and not H{c}_{k}_{j}");
                    }
                }
                out.push_str(" endclass\n");
            }
        }
    }
    out
}

fn response(line: &str) -> Json {
    parse(line.trim_end()).expect("valid JSON response")
}

fn first_answer(v: &Json) -> &Json {
    &v.get("answers").and_then(Json::as_arr).expect("answers array")[0]
}

#[test]
fn saturated_queue_degrades_to_admission_unknowns_and_recovers() {
    // Reactor mode relies on the worker pool (default 4) to run the
    // hog's drain and the probe's query concurrently, same as two
    // connection threads do in threads mode.
    for mode in net_modes() {
        saturated_queue_in(mode);
    }
}

fn saturated_queue_in(mode: NetMode) {
    let mut config = ServerConfig::default();
    config.quota.deadline = None;
    config.quota.max_items = None;
    // Zero queue depth: any query arriving mid-drain degrades.
    config.quota.max_pending = 0;
    // Disable caching so every coherence check recomputes, keeping the
    // drain busy for a meaningful window.
    config.quota.workspace_limits.bundle_cache_cap = 0;
    config.quota.workspace_limits.cluster_cache_cap = 0;
    let mut server = spawn_mode(config, mode);
    let addr = server.addr();

    let schema = php_schema(2, 4);
    let open = format!(
        r#"{{"op":"open","workspace":"w","schema":{}}}"#,
        car_server::json::to_string(&Json::Str(schema))
    );
    let mut setup = Client::connect(addr).unwrap();
    let v = response(&setup.roundtrip(&open).unwrap());
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)));

    const QUERY: &str = r#"{"op":"query","workspace":"w","queries":[{"kind":"coherent"}]}"#;
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        // The hog: keeps the workspace drain busy with expensive,
        // uncacheable coherence checks until told to stop.
        let hog_stop = Arc::clone(&stop);
        scope.spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            while !hog_stop.load(Ordering::Relaxed) {
                let v = response(&client.roundtrip(QUERY).unwrap());
                assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
            }
        });

        // The probe: keeps asking until it observes an admission
        // degradation. Probes landing in the tiny between-drain gaps
        // become leaders and answer normally; with the hog busy >95% of
        // the time, an admission answer shows up almost immediately.
        let mut client = Client::connect(addr).unwrap();
        let deadline = Instant::now() + Duration::from_secs(60);
        let mut saw_admission = false;
        while Instant::now() < deadline {
            let v = response(&client.roundtrip(QUERY).unwrap());
            assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
            let answer = first_answer(&v);
            match answer.get("cause").and_then(Json::as_str) {
                Some("admission") => {
                    assert_eq!(
                        answer.get("outcome"),
                        Some(&Json::Str("unknown".into())),
                        "admission answers must be unknown"
                    );
                    saw_admission = true;
                    break;
                }
                // A gap probe that became leader: a real answer.
                None => {
                    assert_eq!(answer.get("outcome"), Some(&Json::Str("disproved".into())));
                }
                Some(other) => panic!("unexpected degradation cause {other}"),
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        stop.store(true, Ordering::Relaxed);
        assert!(saw_admission, "no admission degradation observed in 60s");

        // Recovery: once the hog's final in-flight drain finishes, the
        // same connection gets a real answer again (pigeonhole blocks
        // are incoherent → disproved). The first probe or two may still
        // race that last drain and degrade.
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let v = response(&client.roundtrip(QUERY).unwrap());
            let answer = first_answer(&v);
            if answer.get("cause").and_then(Json::as_str) == Some("admission") {
                assert!(
                    Instant::now() < deadline,
                    "workspace still degraded 60s after pressure stopped"
                );
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            assert_eq!(
                answer.get("outcome"),
                Some(&Json::Str("disproved".into())),
                "workspace must answer normally after pressure stops"
            );
            break;
        }
    });
    server.stop();
}
