//! Crash and shutdown recovery across real server restarts: a second
//! [`Server`] over the same `--data-dir` must come back answering
//! bit-identically, whether the first one was killed mid-load (journal
//! replay) or drained gracefully (snapshot, zero replay). Also covers
//! the remote `shutdown` operation and skipping unusable workspace
//! directories.

mod common;

use car_core::persist::fault;
use car_server::json::{parse, Json};
use car_server::protocol::{WireDelta, WireQuery};
use car_server::service::{NetMode, ServerConfig};
use car_server::{Client, Server};
use common::{apply_frame, net_modes, open_frame, query_frame, spawn_mode, Shadow, SCHEMA};
use std::path::{Path, PathBuf};

fn scratch(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("car-server-recovery-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Per-mode scratch dir: mode passes must not share durable state.
fn scratch_mode(name: &str, mode: NetMode) -> PathBuf {
    scratch(&format!("{name}-{}", mode.label()))
}

/// An unbudgeted server persisting into `data_dir`, so answers are
/// deterministic and survive restarts.
fn durable_server(data_dir: &Path, mode: NetMode) -> Server {
    let mut config = ServerConfig::default();
    config.quota.deadline = None;
    config.quota.max_items = None;
    config.data_dir = Some(data_dir.to_owned());
    spawn_mode(config, mode)
}

fn ok(resp: &str) -> Json {
    let v = parse(resp.trim_end()).expect("response is valid JSON");
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "expected ok: {resp}");
    v
}

fn err_kind(resp: &str) -> String {
    let v = parse(resp.trim_end()).expect("response is valid JSON");
    assert_eq!(v.get("ok"), Some(&Json::Bool(false)), "expected error: {resp}");
    v.get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
        .expect("error has a kind")
        .to_owned()
}

fn simple_frame(op: &str, workspace: &str, id: u64) -> String {
    format!(r#"{{"id":{id},"op":"{op}","workspace":"{workspace}"}}"#)
}

/// The edit script every restart test runs: two deltas, an undo, a
/// redo — four journal records.
fn deltas() -> Vec<WireDelta> {
    vec![
        WireDelta::AddClass { name: "TA".into() },
        WireDelta::SetIsa { class: "TA".into(), isa: vec![vec![("Student".into(), false)]] },
    ]
}

fn queries() -> Vec<WireQuery> {
    vec![
        WireQuery::Coherent,
        WireQuery::Satisfiable("TA".into()),
        WireQuery::Subsumes { sup: "Person".into(), sub: "TA".into() },
        WireQuery::Disjoint("TA".into(), "Professor".into()),
        WireQuery::Equivalent("Student".into(), "Student".into()),
    ]
}

/// Runs the edit script over one connection and returns the answers
/// the pre-restart server gave.
fn run_script(client: &mut Client, workspace: &str) -> Json {
    ok(&client.roundtrip(&open_frame(workspace, 1, SCHEMA)).unwrap());
    let applied = ok(&client.roundtrip(&apply_frame(workspace, 2, &deltas())).unwrap());
    assert_eq!(applied.get("applied"), Some(&Json::UInt(2)));
    ok(&client.roundtrip(&simple_frame("undo", workspace, 3)).unwrap());
    ok(&client.roundtrip(&simple_frame("redo", workspace, 4)).unwrap());
    let resp = ok(&client.roundtrip(&query_frame(workspace, 5, &queries())).unwrap());
    resp.get("answers").expect("query response has answers").clone()
}

/// The shadow's ground-truth answers for the same script.
fn shadow_answers() -> Json {
    let mut shadow = Shadow::new(SCHEMA);
    assert_eq!(shadow.apply(&deltas()), 2);
    shadow.undo();
    shadow.redo();
    Json::Arr(shadow.query(&queries()))
}

fn stat(v: &Json, key: &str) -> u64 {
    match v.get(key) {
        Some(&Json::UInt(n)) => n,
        other => panic!("stats field {key} missing or non-numeric: {other:?}"),
    }
}

#[test]
fn crash_recovery_replays_the_journal_bit_identically() {
    for mode in net_modes() {
        crash_recovery_replays_the_journal_bit_identically_in(mode);
    }
}

fn crash_recovery_replays_the_journal_bit_identically_in(mode: NetMode) {
    let data = scratch_mode("crash", mode);

    let mut first = durable_server(&data, mode);
    let mut client = Client::connect(first.addr()).unwrap();
    let before = run_script(&mut client, "w");
    assert_eq!(before, shadow_answers());
    // Power cut: stop the accept loop without draining or snapshotting.
    // Durability now rests entirely on the journal.
    first.stop();
    drop(client);
    drop(first);

    let mut second = durable_server(&data, mode);
    let report = second.service().recovery_report();
    assert_eq!(report.workspaces_recovered, 1, "{report:?}");
    assert_eq!(report.ops_replayed, 4, "2 deltas + undo + redo: {report:?}");
    assert_eq!(report.replay_failures, 0, "{report:?}");
    assert_eq!(report.dirs_skipped, 0, "{report:?}");

    let mut client = Client::connect(second.addr()).unwrap();
    let resp = ok(&client.roundtrip(&query_frame("w", 5, &queries())).unwrap());
    assert_eq!(
        resp.get("answers"),
        Some(&before),
        "post-crash answers must be bit-identical"
    );
    // The undo/redo survived too: one more undo retracts the TA isa.
    let undone = ok(&client.roundtrip(&simple_frame("undo", "w", 6)).unwrap());
    assert_eq!(undone.get("moved"), Some(&Json::Bool(true)));

    // The warm workspace pulled its enumerations from the durable
    // store instead of recomputing them.
    let stats = ok(&client.roundtrip(&simple_frame("stats", "w", 7)).unwrap());
    assert!(
        stat(&stats, "disk_cluster_hits") + stat(&stats, "disk_ccs_hits") > 0,
        "warm restart must hit the durable store: {stats:?}"
    );
    second.stop();
}

#[test]
fn graceful_shutdown_snapshots_so_recovery_replays_nothing() {
    for mode in net_modes() {
        graceful_shutdown_snapshots_so_recovery_replays_nothing_in(mode);
    }
}

fn graceful_shutdown_snapshots_so_recovery_replays_nothing_in(mode: NetMode) {
    let data = scratch_mode("graceful", mode);

    let mut first = durable_server(&data, mode);
    let mut client = Client::connect(first.addr()).unwrap();
    let before = run_script(&mut client, "w");
    let snapshots = first.shutdown();
    assert_eq!(snapshots, 1, "drain must snapshot the open workspace");
    assert_eq!(first.service().durability_failures(), 0);
    drop(client);
    drop(first);

    let mut second = durable_server(&data, mode);
    let report = second.service().recovery_report();
    assert_eq!(report.workspaces_recovered, 1, "{report:?}");
    assert_eq!(report.ops_replayed, 0, "a drained server leaves no journal tail: {report:?}");
    assert_eq!(report.truncated_tails, 0, "{report:?}");

    let mut client = Client::connect(second.addr()).unwrap();
    let resp = ok(&client.roundtrip(&query_frame("w", 5, &queries())).unwrap());
    assert_eq!(resp.get("answers"), Some(&before));
    second.stop();
}

#[test]
fn remote_shutdown_is_forbidden_by_default() {
    for mode in net_modes() {
        remote_shutdown_is_forbidden_by_default_in(mode);
    }
}

fn remote_shutdown_is_forbidden_by_default_in(mode: NetMode) {
    let mut server = durable_server(&scratch_mode("noshutdown", mode), mode);
    let mut client = Client::connect(server.addr()).unwrap();
    assert_eq!(err_kind(&client.roundtrip(r#"{"op":"shutdown","id":1}"#).unwrap()), "forbidden");
    // The connection and service are unaffected.
    ok(&client.roundtrip(r#"{"op":"ping","id":2}"#).unwrap());
    assert!(!server.service().shutdown_requested());
    server.stop();
}

#[test]
fn remote_shutdown_drains_and_snapshots_when_allowed() {
    for mode in net_modes() {
        remote_shutdown_drains_and_snapshots_when_allowed_in(mode);
    }
}

fn remote_shutdown_drains_and_snapshots_when_allowed_in(mode: NetMode) {
    let data = scratch_mode("remote-shutdown", mode);
    let mut config = ServerConfig::default();
    config.quota.deadline = None;
    config.quota.max_items = None;
    config.data_dir = Some(data.clone());
    config.allow_remote_shutdown = true;
    let mut server = spawn_mode(config, mode);

    let mut client = Client::connect(server.addr()).unwrap();
    let before = run_script(&mut client, "w");
    let resp = ok(&client.roundtrip(r#"{"op":"shutdown","id":9}"#).unwrap());
    assert_eq!(resp.get("shutting_down"), Some(&Json::Bool(true)));
    // The binary's main loop: block on the signal, then drain.
    let snapshots = server.serve_until_shutdown();
    assert_eq!(snapshots, 1);
    drop(client);
    drop(server);

    let mut second = durable_server(&data, mode);
    let report = second.service().recovery_report();
    assert_eq!(report.workspaces_recovered, 1, "{report:?}");
    assert_eq!(report.ops_replayed, 0, "{report:?}");
    let mut client = Client::connect(second.addr()).unwrap();
    let resp = ok(&client.roundtrip(&query_frame("w", 5, &queries())).unwrap());
    assert_eq!(resp.get("answers"), Some(&before));
    second.stop();
}

#[test]
fn corrupt_workspace_dir_is_skipped_without_harming_the_rest() {
    for mode in net_modes() {
        corrupt_workspace_dir_is_skipped_without_harming_the_rest_in(mode);
    }
}

fn corrupt_workspace_dir_is_skipped_without_harming_the_rest_in(mode: NetMode) {
    let data = scratch_mode("skipdir", mode);

    let mut first = durable_server(&data, mode);
    let mut client = Client::connect(first.addr()).unwrap();
    let good_answers = run_script(&mut client, "good");
    let _ = run_script(&mut client, "bad");
    assert_eq!(first.shutdown(), 2);
    drop(client);
    drop(first);

    // Tear the bad workspace's snapshots in half (every one — they are
    // epoch-named, `snapshot.<epoch>.car`). With the journal already
    // compacted away, the directory is unrecoverable.
    let bad_dir = data.join("workspaces").join("default").join("bad");
    let mut torn = 0;
    for entry in std::fs::read_dir(&bad_dir).unwrap().flatten() {
        let name = entry.file_name();
        if !name.to_string_lossy().starts_with("snapshot") {
            continue;
        }
        let snap = entry.path();
        let len = std::fs::metadata(&snap).unwrap().len();
        fault::truncate_file(&snap, len / 2).unwrap();
        torn += 1;
    }
    assert!(torn > 0, "no snapshot file found to corrupt in {bad_dir:?}");

    let mut second = durable_server(&data, mode);
    let report = second.service().recovery_report();
    assert_eq!(report.workspaces_recovered, 1, "{report:?}");
    assert_eq!(report.dirs_skipped, 1, "{report:?}");

    let mut client = Client::connect(second.addr()).unwrap();
    let resp = ok(&client.roundtrip(&query_frame("good", 5, &queries())).unwrap());
    assert_eq!(resp.get("answers"), Some(&good_answers));
    assert_eq!(
        err_kind(&client.roundtrip(&query_frame("bad", 6, &queries())).unwrap()),
        "unknown_workspace"
    );
    second.stop();
}

/// Kill the server while several connections are mid-burst. Every
/// *acknowledged* edit must survive into the next incarnation; the
/// recovered workspaces answer queries without replay failures.
#[test]
fn killing_the_server_mid_load_loses_no_acknowledged_edit() {
    for mode in net_modes() {
        killing_the_server_mid_load_loses_no_acknowledged_edit_in(mode);
    }
}

fn killing_the_server_mid_load_loses_no_acknowledged_edit_in(mode: NetMode) {
    let data = scratch_mode("midload", mode);
    let mut first = durable_server(&data, mode);
    let addr = first.addr();

    let workers: Vec<_> = (0..3)
        .map(|t| {
            std::thread::spawn(move || {
                let ws = format!("load-{t}");
                let mut client = Client::connect(addr).unwrap();
                ok(&client.roundtrip(&open_frame(&ws, 1, SCHEMA)).unwrap());
                let mut acked = 0u64;
                for i in 0..24 {
                    let delta =
                        vec![WireDelta::AddClass { name: format!("C{t}_{i}") }];
                    // The stop() below may cut the connection at any
                    // point; only a parsed ok-response counts as acked.
                    let Ok(resp) = client.roundtrip(&apply_frame(&ws, 2 + i, &delta)) else {
                        break;
                    };
                    let Ok(v) = parse(resp.trim_end()) else { break };
                    if v.get("ok") != Some(&Json::Bool(true)) {
                        break;
                    }
                    acked += 1;
                }
                (ws, acked)
            })
        })
        .collect();

    // Let the load build, then pull the plug mid-burst.
    std::thread::sleep(std::time::Duration::from_millis(30));
    first.stop();
    drop(first);
    let acked: Vec<(String, u64)> = workers.into_iter().map(|w| w.join().unwrap()).collect();

    let mut second = durable_server(&data, mode);
    let report = second.service().recovery_report();
    assert_eq!(report.workspaces_recovered, 3, "{report:?}");
    assert_eq!(report.replay_failures, 0, "{report:?}");
    let total_acked: u64 = acked.iter().map(|(_, n)| n).sum();
    assert!(
        report.ops_replayed >= total_acked,
        "journal lost acknowledged edits: replayed {} < acked {total_acked}",
        report.ops_replayed
    );

    let mut client = Client::connect(second.addr()).unwrap();
    for (ws, acked) in &acked {
        // Every acknowledged class is present in the recovered schema.
        let stats = ok(&client.roundtrip(&simple_frame("stats", ws, 90)).unwrap());
        let base_classes = 4; // Person, Professor, Student, Course
        assert!(
            stat(&stats, "classes") >= base_classes + acked,
            "{ws}: {acked} acked edits but only {} classes after recovery",
            stat(&stats, "classes")
        );
        // And the workspace still reasons correctly.
        let resp = ok(&client
            .roundtrip(&query_frame(ws, 91, &[WireQuery::Coherent]))
            .unwrap());
        assert!(resp.get("answers").is_some());
    }
    second.stop();
}
