//! End-to-end tests over real TCP connections: protocol robustness on
//! hostile input, bit-identical agreement with in-process reasoning,
//! and correct coalescing under concurrency.

mod common;

use car_core::syntax::Card;
use car_server::json::{parse, Json};
use car_server::protocol::{WireDelta, WireQuery};
use car_server::service::{NetMode, ServerConfig};
use car_server::{Client, Server};
use common::{apply_frame, net_modes, open_frame, query_frame, spawn_mode, Shadow, SCHEMA};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A server with no reasoning budget, so answers are deterministic and
/// comparable with an unbounded in-process shadow.
fn unbudgeted_server(mode: NetMode) -> Server {
    let mut config = ServerConfig::default();
    config.quota.deadline = None;
    config.quota.max_items = None;
    spawn_mode(config, mode)
}

fn ok(resp: &str) -> Json {
    let v = parse(resp.trim_end()).expect("response is valid JSON");
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "expected ok: {resp}");
    v
}

fn err_kind(resp: &str) -> String {
    let v = parse(resp.trim_end()).expect("response is valid JSON");
    assert_eq!(v.get("ok"), Some(&Json::Bool(false)), "expected error: {resp}");
    v.get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Json::as_str)
        .expect("error has a kind")
        .to_owned()
}

#[test]
fn malformed_frames_never_tear_down_the_connection() {
    for mode in net_modes() {
        malformed_frames_never_tear_down_the_connection_in(mode);
    }
}

fn malformed_frames_never_tear_down_the_connection_in(mode: NetMode) {
    let mut server = unbudgeted_server(mode);
    let mut client = Client::connect(server.addr()).unwrap();

    assert_eq!(err_kind(&client.roundtrip("this is not json").unwrap()), "bad_json");
    ok(&client.roundtrip(r#"{"op":"ping"}"#).unwrap());
    assert_eq!(err_kind(&client.roundtrip(r#"{"op":"ping""#).unwrap()), "bad_json");
    assert_eq!(err_kind(&client.roundtrip(r#"{"op":"warp"}"#).unwrap()), "bad_request");
    assert_eq!(err_kind(&client.roundtrip("[1,2,3]").unwrap()), "bad_request");
    // Invalid UTF-8 bytes.
    client.send_raw(b"\xff\xfe{\"op\":\"ping\"}\n").unwrap();
    assert_eq!(err_kind(&client.read_response().unwrap()), "bad_json");
    // The same connection still works afterwards.
    let pong = ok(&client.roundtrip(r#"{"op":"ping","id":9}"#).unwrap());
    assert_eq!(pong.get("id"), Some(&Json::UInt(9)));
    server.stop();
}

/// Satellite regression: inputs that used to (or would) abort the
/// process — unbounded parser recursion, unbounded JSON recursion,
/// unbounded frame sizes — come back as spanned error responses
/// through the server loop, and the connection survives each one.
#[test]
fn formerly_panicking_inputs_error_through_the_server() {
    for mode in net_modes() {
        formerly_panicking_inputs_error_through_the_server_in(mode);
    }
}

fn formerly_panicking_inputs_error_through_the_server_in(mode: NetMode) {
    let config = ServerConfig { max_frame_bytes: 1 << 20, ..Default::default() };
    let mut server = spawn_mode(config, mode);
    let mut client = Client::connect(server.addr()).unwrap();

    // 100k nested parens in schema text: the recursive-descent parser
    // depth guard turns this into a positioned parse error.
    let bomb = format!("class A isa {}B{} endclass", "(".repeat(100_000), ")".repeat(100_000));
    let resp = client.roundtrip(&open_frame("w", 1, &bomb)).unwrap();
    assert_eq!(err_kind(&resp), "parse");
    let v = parse(resp.trim_end()).unwrap();
    assert!(v.get("error").unwrap().get("line").is_some());

    // 200k-deep JSON arrays: the JSON depth guard answers instead of
    // blowing the stack.
    let json_bomb = format!(
        r#"{{"op":"query","workspace":"w","queries":{}{}}}"#,
        "[".repeat(100_000),
        "]".repeat(100_000)
    );
    assert_eq!(err_kind(&client.roundtrip(&json_bomb).unwrap()), "bad_json");

    // A frame beyond the cap is discarded up to its newline.
    let huge = format!(r#"{{"op":"ping","pad":"{}"}}"#, "x".repeat(2 << 20));
    assert_eq!(err_kind(&client.roundtrip(&huge).unwrap()), "frame_too_large");

    // Deep undo on a fresh workspace (nothing to undo) is a clean no-op.
    ok(&client.roundtrip(&open_frame("w", 2, "class A endclass")).unwrap());
    let undo = ok(&client.roundtrip(r#"{"op":"undo","workspace":"w"}"#).unwrap());
    assert_eq!(undo.get("moved"), Some(&Json::Bool(false)));

    // The connection survived all of it.
    ok(&client.roundtrip(r#"{"op":"ping"}"#).unwrap());
    server.stop();
}

#[test]
fn pipelined_requests_answer_in_order() {
    for mode in net_modes() {
        pipelined_requests_answer_in_order_in(mode);
    }
}

fn pipelined_requests_answer_in_order_in(mode: NetMode) {
    let mut server = unbudgeted_server(mode);
    let mut client = Client::connect(server.addr()).unwrap();
    ok(&client.roundtrip(&open_frame("w", 0, SCHEMA)).unwrap());
    for id in 1..=20u64 {
        client.send(&format!(r#"{{"op":"ping","id":{id}}}"#)).unwrap();
    }
    for id in 1..=20u64 {
        let resp = ok(&client.read_response().unwrap());
        assert_eq!(resp.get("id"), Some(&Json::UInt(id)));
    }
    server.stop();
}

/// The class-name pool the generators draw from. `Ghost` is never
/// defined, exercising the unknown-class answer path.
const POOL: &[&str] =
    &["Person", "Professor", "Student", "Course", "Extra0", "Extra1", "Extra2", "Ghost"];

fn random_formula(rng: &mut SmallRng) -> Vec<Vec<(String, bool)>> {
    (0..rng.gen_range(0usize..3))
        .map(|_| {
            (0..rng.gen_range(1usize..3))
                .map(|_| {
                    (POOL[rng.gen_range(0..POOL.len())].to_owned(), rng.gen_bool(0.3))
                })
                .collect()
        })
        .collect()
}

fn random_deltas(rng: &mut SmallRng) -> Vec<WireDelta> {
    (0..rng.gen_range(1usize..4))
        .map(|_| match rng.gen_range(0u32..10) {
            0 | 1 => WireDelta::AddClass {
                name: format!("Extra{}", rng.gen_range(0u32..3)),
            },
            2 => WireDelta::RemoveClass {
                name: POOL[rng.gen_range(0..POOL.len())].to_owned(),
            },
            3 => {
                let (min, max) = (rng.gen_range(0u64..3), rng.gen_range(0u64..3));
                WireDelta::SetAttribute {
                    class: POOL[rng.gen_range(0..POOL.len())].to_owned(),
                    attr: format!("a{}", rng.gen_range(0u32..2)),
                    inverse: rng.gen_bool(0.2),
                    // min > max is generated on purpose: an invalid
                    // cardinality must fail cleanly, identically on
                    // both sides.
                    spec: rng.gen_bool(0.8).then(|| (Card { min, max: Some(max) }, random_formula(rng))),
                }
            }
            4 => WireDelta::SetParticipation {
                class: POOL[rng.gen_range(0..POOL.len())].to_owned(),
                rel: "Teaches".to_owned(),
                role: ["teacher", "taught", "bogus"][rng.gen_range(0usize..3)].to_owned(),
                card: rng.gen_bool(0.7).then(|| Card { min: rng.gen_range(0u64..2), max: Some(rng.gen_range(1u64..3)) }),
            },
            _ => WireDelta::SetIsa {
                class: POOL[rng.gen_range(0..POOL.len())].to_owned(),
                isa: random_formula(rng),
            },
        })
        .collect()
}

fn random_queries(rng: &mut SmallRng) -> Vec<WireQuery> {
    let name = |rng: &mut SmallRng| POOL[rng.gen_range(0..POOL.len())].to_owned();
    (0..rng.gen_range(1usize..5))
        .map(|_| match rng.gen_range(0u32..5) {
            0 => WireQuery::Coherent,
            1 => WireQuery::Subsumes { sup: name(rng), sub: name(rng) },
            2 => WireQuery::Disjoint(name(rng), name(rng)),
            3 => WireQuery::Equivalent(name(rng), name(rng)),
            _ => WireQuery::Satisfiable(name(rng)),
        })
        .collect()
}

/// The tentpole acceptance check: a mixed edit/undo/redo/query traffic
/// stream answered over TCP is bit-identical to replaying the same
/// operations on an in-process [`car_core::Workspace`].
#[test]
fn server_answers_are_bit_identical_to_in_process_replay() {
    for mode in net_modes() {
        server_answers_are_bit_identical_to_in_process_replay_in(mode);
    }
}

fn server_answers_are_bit_identical_to_in_process_replay_in(mode: NetMode) {
    let mut server = unbudgeted_server(mode);
    let mut client = Client::connect(server.addr()).unwrap();
    ok(&client.roundtrip(&open_frame("w", 0, SCHEMA)).unwrap());
    let mut shadow = Shadow::new(SCHEMA);

    let mut rng = SmallRng::seed_from_u64(0xCA5);
    for step in 0..60u64 {
        match rng.gen_range(0u32..10) {
            0 => {
                let resp = ok(&client.roundtrip(&format!(
                    r#"{{"op":"undo","workspace":"w","id":{step}}}"#
                )).unwrap());
                assert_eq!(resp.get("moved"), Some(&Json::Bool(shadow.undo())), "step {step}");
            }
            1 => {
                let resp = ok(&client.roundtrip(&format!(
                    r#"{{"op":"redo","workspace":"w","id":{step}}}"#
                )).unwrap());
                assert_eq!(resp.get("moved"), Some(&Json::Bool(shadow.redo())), "step {step}");
            }
            2..=5 => {
                let deltas = random_deltas(&mut rng);
                let resp = client.roundtrip(&apply_frame("w", step, &deltas)).unwrap();
                let v = parse(resp.trim_end()).unwrap();
                let applied = v.get("applied").and_then(Json::as_u64).unwrap();
                assert_eq!(applied, shadow.apply(&deltas), "step {step}: {deltas:?}");
            }
            _ => {
                let queries = random_queries(&mut rng);
                let resp = ok(&client.roundtrip(&query_frame("w", step, &queries)).unwrap());
                let got = resp.get("answers").and_then(Json::as_arr).unwrap();
                let want = shadow.query(&queries);
                assert_eq!(got, &want[..], "step {step}: {queries:?}");
            }
        }
    }
    server.stop();
}

/// Concurrent read-only clients on one workspace: the coalescing path
/// (leader drains followers' batches) must route every answer to the
/// right client with the right value.
#[test]
fn coalesced_concurrent_queries_are_answered_correctly() {
    for mode in net_modes() {
        coalesced_concurrent_queries_are_answered_correctly_in(mode);
    }
}

fn coalesced_concurrent_queries_are_answered_correctly_in(mode: NetMode) {
    let mut server = unbudgeted_server(mode);
    let mut setup = Client::connect(server.addr()).unwrap();
    ok(&setup.roundtrip(&open_frame("w", 0, SCHEMA)).unwrap());

    // Expected answers, computed once in-process.
    let cases: Vec<(WireQuery, Json)> = {
        let mut shadow = Shadow::new(SCHEMA);
        let queries = vec![
            WireQuery::Subsumes { sup: "Person".into(), sub: "Student".into() },
            WireQuery::Subsumes { sup: "Student".into(), sub: "Person".into() },
            WireQuery::Disjoint("Student".into(), "Professor".into()),
            WireQuery::Satisfiable("Course".into()),
            WireQuery::Coherent,
            WireQuery::Satisfiable("Ghost".into()),
        ];
        let answers = shadow.query(&queries);
        queries.into_iter().zip(answers).collect()
    };

    let addr = server.addr();
    std::thread::scope(|scope| {
        for t in 0..16u64 {
            let cases = &cases;
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(t);
                let mut client = Client::connect(addr).unwrap();
                for i in 0..25u64 {
                    let picks: Vec<usize> =
                        (0..rng.gen_range(1usize..4)).map(|_| rng.gen_range(0..cases.len())).collect();
                    let queries: Vec<WireQuery> =
                        picks.iter().map(|&k| cases[k].0.clone()).collect();
                    let resp = client.roundtrip(&query_frame("w", t * 1000 + i, &queries)).unwrap();
                    let v = parse(resp.trim_end()).unwrap();
                    assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
                    let answers = v.get("answers").and_then(Json::as_arr).unwrap();
                    assert_eq!(answers.len(), picks.len());
                    for (answer, &k) in answers.iter().zip(&picks) {
                        assert_eq!(answer, &cases[k].1, "client {t} iteration {i}");
                    }
                }
            });
        }
    });
    server.stop();
}
