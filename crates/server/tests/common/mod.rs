//! Shared helpers for the server integration tests: serializing wire
//! ops to frames, and a *shadow* — a direct in-process
//! [`car_core::Workspace`] that replays the same operations so tests
//! can assert the server's answers are bit-identical to first-party
//! reasoning.

use car_core::{ReasonerConfig, Workspace};
use car_server::json::{obj, s, to_string, Json};
use car_server::protocol::{answer_json, unknown_answer, WireDelta, WireQuery};
use car_server::service::{NetMode, ServerConfig};
use car_server::Server;

/// The net modes this platform can exercise: both on Linux, only the
/// portable thread-per-connection runtime elsewhere. Suites loop over
/// this so every protocol behavior is proven bit-identical across
/// modes.
#[allow(dead_code)] // not every suite is mode-parameterized
#[must_use]
pub fn net_modes() -> Vec<NetMode> {
    if cfg!(target_os = "linux") {
        vec![NetMode::Threads, NetMode::Reactor]
    } else {
        vec![NetMode::Threads]
    }
}

/// Spawns a server on an ephemeral port with `config` switched to the
/// given net mode.
#[allow(dead_code)]
#[must_use]
pub fn spawn_mode(mut config: ServerConfig, mode: NetMode) -> Server {
    config.net_mode = mode;
    Server::spawn("127.0.0.1:0", config).expect("server binds")
}

/// The fixture schema most tests open.
pub const SCHEMA: &str = "
    class Person endclass
    class Professor isa Person endclass
    class Student isa Person and not Professor endclass
    class Course
      participates_in Teaches[taught] : (1, 1)
    endclass
    relation Teaches(teacher, taught)
      constraints (teacher : Professor); (taught : Course)
    endrelation
";

/// Serializes a [`WireQuery`] to its frame object.
#[must_use]
pub fn query_json(q: &WireQuery) -> Json {
    match q {
        WireQuery::Satisfiable(c) => {
            obj(vec![("kind", s("satisfiable")), ("class", s(c))])
        }
        WireQuery::Coherent => obj(vec![("kind", s("coherent"))]),
        WireQuery::Subsumes { sup, sub } => {
            obj(vec![("kind", s("subsumes")), ("sup", s(sup)), ("sub", s(sub))])
        }
        WireQuery::Disjoint(a, b) => {
            obj(vec![("kind", s("disjoint")), ("a", s(a)), ("b", s(b))])
        }
        WireQuery::Equivalent(a, b) => {
            obj(vec![("kind", s("equivalent")), ("a", s(a)), ("b", s(b))])
        }
    }
}

/// Serializes a [`WireDelta`] to its frame object (the subset of delta
/// kinds the generators produce).
#[must_use]
pub fn delta_json(d: &WireDelta) -> Json {
    let formula = |f: &Vec<Vec<(String, bool)>>| {
        Json::Arr(
            f.iter()
                .map(|clause| {
                    Json::Arr(
                        clause
                            .iter()
                            .map(|(class, neg)| {
                                let mut fields = vec![("class", s(class))];
                                if *neg {
                                    fields.push(("neg", Json::Bool(true)));
                                }
                                obj(fields)
                            })
                            .collect(),
                    )
                })
                .collect(),
        )
    };
    match d {
        WireDelta::AddClass { name } => {
            obj(vec![("kind", s("add_class")), ("name", s(name))])
        }
        WireDelta::RemoveClass { name } => {
            obj(vec![("kind", s("remove_class")), ("name", s(name))])
        }
        WireDelta::SetIsa { class, isa } => {
            obj(vec![("kind", s("set_isa")), ("class", s(class)), ("isa", formula(isa))])
        }
        WireDelta::SetAttribute { class, attr, inverse, spec } => {
            let spec_json = match spec {
                None => Json::Null,
                Some((card, ty)) => obj(vec![
                    (
                        "card",
                        Json::Arr(vec![
                            Json::UInt(card.min),
                            card.max.map_or(Json::Null, Json::UInt),
                        ]),
                    ),
                    ("type", formula(ty)),
                ]),
            };
            obj(vec![
                ("kind", s("set_attribute")),
                ("class", s(class)),
                ("attr", s(attr)),
                ("inverse", Json::Bool(*inverse)),
                ("spec", spec_json),
            ])
        }
        WireDelta::SetParticipation { class, rel, role, card } => obj(vec![
            ("kind", s("set_participation")),
            ("class", s(class)),
            ("rel", s(rel)),
            ("role", s(role)),
            (
                "card",
                card.map_or(Json::Null, |c| {
                    Json::Arr(vec![Json::UInt(c.min), c.max.map_or(Json::Null, Json::UInt)])
                }),
            ),
        ]),
        WireDelta::SetRelation { name, roles, constraints } => obj(vec![
            ("kind", s("set_relation")),
            ("name", s(name)),
            ("roles", Json::Arr(roles.iter().map(|r| s(r.as_str())).collect())),
            (
                "constraints",
                Json::Arr(
                    constraints
                        .iter()
                        .map(|clause| {
                            Json::Arr(
                                clause
                                    .iter()
                                    .map(|(role, f)| {
                                        obj(vec![("role", s(role)), ("formula", formula(f))])
                                    })
                                    .collect(),
                            )
                        })
                        .collect(),
                ),
            ),
        ]),
        WireDelta::RemoveRelation { name } => {
            obj(vec![("kind", s("remove_relation")), ("name", s(name))])
        }
    }
}

/// Builds an `apply` frame.
#[allow(dead_code)] // not used by every suite
#[must_use]
pub fn apply_frame(workspace: &str, id: u64, deltas: &[WireDelta]) -> String {
    to_string(&obj(vec![
        ("id", Json::UInt(id)),
        ("op", s("apply")),
        ("workspace", s(workspace)),
        ("deltas", Json::Arr(deltas.iter().map(delta_json).collect())),
    ]))
}

/// Builds a `query` frame.
#[must_use]
pub fn query_frame(workspace: &str, id: u64, queries: &[WireQuery]) -> String {
    to_string(&obj(vec![
        ("id", Json::UInt(id)),
        ("op", s("query")),
        ("workspace", s(workspace)),
        ("queries", Json::Arr(queries.iter().map(query_json).collect())),
    ]))
}

/// Builds an `open` frame.
#[must_use]
pub fn open_frame(workspace: &str, id: u64, schema: &str) -> String {
    to_string(&obj(vec![
        ("id", Json::UInt(id)),
        ("op", s("open")),
        ("workspace", s(workspace)),
        ("schema", s(schema)),
    ]))
}

/// In-process replay of the exact operations a test sent to the server,
/// built on [`Workspace`] directly (not on the service layer), so the
/// comparison crosses the whole server stack.
pub struct Shadow {
    ws: Workspace,
}

impl Shadow {
    /// Opens the shadow workspace over schema text.
    #[must_use]
    pub fn new(schema_text: &str) -> Shadow {
        let schema = car_parser::parse_schema(schema_text).expect("shadow schema parses");
        Shadow { ws: Workspace::new(schema, ReasonerConfig::default()) }
    }

    /// Applies deltas exactly like the server's `apply` op: resolve
    /// against the evolving schema, stop at the first failure. Returns
    /// how many were applied.
    #[allow(dead_code)] // not used by every suite
    pub fn apply(&mut self, deltas: &[WireDelta]) -> u64 {
        let mut applied = 0;
        for delta in deltas {
            let Ok(resolved) = delta.resolve(self.ws.schema()) else { break };
            if self.ws.apply(&resolved).is_err() {
                break;
            }
            applied += 1;
        }
        applied
    }

    /// Mirrors the `undo` op.
    #[allow(dead_code)] // used by server_e2e and recovery, not by fleet
    pub fn undo(&mut self) -> bool {
        self.ws.undo()
    }

    /// Mirrors the `redo` op.
    #[allow(dead_code)] // used by server_e2e, not by protocol_fuzz
    pub fn redo(&mut self) -> bool {
        self.ws.redo()
    }

    /// Answers queries through the same batched path the server uses
    /// and renders them with the same serializer, so a correct server
    /// produces byte-identical answer objects.
    pub fn query(&mut self, queries: &[WireQuery]) -> Vec<Json> {
        let mut combined = Vec::new();
        let plan: Vec<Result<usize, String>> = queries
            .iter()
            .map(|q| {
                q.resolve(self.ws.schema()).map(|typed| {
                    let at = combined.len();
                    combined.push(typed);
                    at
                })
            })
            .collect();
        let results = self.ws.query_batch_results(&combined);
        plan.into_iter()
            .map(|entry| match entry {
                Ok(at) => answer_json(&results[at]),
                Err(name) => {
                    unknown_answer("unknown_class", &format!("unknown class '{name}'"))
                }
            })
            .collect()
    }
}
